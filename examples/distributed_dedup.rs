//! Distributed duplicate detection — the workload the paper's introduction
//! motivates, staged on a single-hop wireless cluster.
//!
//! `k` edge caches each hold a set of content IDs (out of a catalogue of
//! `n`). The operator wants to know whether any ID is cached on *every*
//! node (a "fully replicated" item that can be evicted everywhere but one).
//! That is exactly `¬DISJ_{n,k}` on the cached-ID sets, and the broadcast
//! channel (everyone hears every transmission) is exactly the blackboard
//! model.
//!
//! The example compares the airtime (total bits broadcast) of the naive
//! protocol against the paper's batched protocol across cluster sizes, on
//! both replicated and non-replicated catalogues.
//!
//! Run with: `cargo run --release --example distributed_dedup`

use broadcast_ic::core::table::{f, Table};
use broadcast_ic::protocols::disj::{batched, disj_function, naive};
use broadcast_ic::protocols::workload;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
    let n = 4096; // catalogue size

    println!("Distributed duplicate detection over a broadcast channel");
    println!("catalogue n = {n} content IDs; airtime in bits\n");

    let mut table = Table::new([
        "caches k",
        "catalogue",
        "fully-replicated item?",
        "naive airtime",
        "batched airtime",
        "saving",
    ]);

    for &k in &[4usize, 16, 64] {
        // Scenario A: no fully replicated item (hard case: the protocol must
        // certify every ID has a non-holder).
        let inputs = workload::planted_zero_cover(n, k, 0.0, &mut rng);
        assert!(disj_function(&inputs));
        let slow = naive::run(&inputs);
        let fast = batched::run(&inputs);
        assert!(slow.output && fast.output);
        table.row([
            k.to_string(),
            "adversarial".to_owned(),
            "no".to_owned(),
            slow.bits.to_string(),
            fast.bits.to_string(),
            f(100.0 * (1.0 - fast.bits as f64 / slow.bits as f64), 0) + "%",
        ]);

        // Scenario B: a handful of fully replicated items planted in an
        // otherwise ~60%-full catalogue (easy case: found quickly).
        let inputs = workload::planted_intersection(n, k, 4, 0.6, &mut rng);
        assert!(!disj_function(&inputs));
        let slow = naive::run(&inputs);
        let fast = batched::run(&inputs);
        assert!(!slow.output && !fast.output);
        table.row([
            k.to_string(),
            "typical (60% full)".to_owned(),
            "yes (4 planted)".to_owned(),
            slow.bits.to_string(),
            fast.bits.to_string(),
            f(100.0 * (1.0 - fast.bits as f64 / slow.bits as f64), 0) + "%",
        ]);
    }
    println!("{}", table.render());

    println!(
        "The batched protocol (paper, Theorem 2) packs zero-announcements into\n\
         subset codes: ~log2(e·k) bits per ID instead of ~log2(n). The saving\n\
         is largest when k ≪ n — exactly the regime of a small cache cluster\n\
         over a big catalogue."
    );
}
