//! Two replicas with small diff sets checking for conflicts — the
//! Håstad–Wigderson sparse-disjointness protocol in its natural habitat.
//!
//! Two datacenters each accumulated a small set of locally-modified keys
//! (out of a huge keyspace). Before reconciling, they want to know whether
//! any key was modified on *both* sides (a write conflict). That is
//! two-player set disjointness with `|X| = |Y| = s ≪ n`, and the paper's
//! introduction points out the surprising fact: it costs `O(s)` bits, not
//! `O(s log n)` — the log-factor intuition fails.
//!
//! Run with: `cargo run --release --example sparse_sync`

use broadcast_ic::core::table::{f, Table};
use broadcast_ic::encoding::bitset::BitSet;
use broadcast_ic::protocols::sparse;
use rand::{Rng, SeedableRng};

fn random_disjoint(n: usize, s: usize, rng: &mut impl Rng) -> (BitSet, BitSet) {
    let mut x = BitSet::new(n);
    let mut y = BitSet::new(n);
    while x.len() < s {
        x.insert(rng.random_range(0..n));
    }
    while y.len() < s {
        let e = rng.random_range(0..n);
        if !x.contains(e) {
            y.insert(e);
        }
    }
    (x, y)
}

fn main() {
    let n = 1 << 24; // 16M-key keyspace
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    println!("Write-conflict detection between two replicas");
    println!("keyspace n = {n} keys; modified-set size s varies\n");

    let mut t = Table::new([
        "s (diff size)",
        "naive bits (send the set)",
        "HW bits (mean of 25)",
        "saving",
        "verdict",
    ]);
    for &s in &[64usize, 256, 1024] {
        let trials = 25;
        let mut bits = 0.0;
        for _ in 0..trials {
            let (x, y) = random_disjoint(n, s, &mut rng);
            let out = sparse::run(&x, &y, &mut rng);
            assert!(out.output, "these diffs are conflict-free");
            bits += out.bits;
        }
        let hw = bits / trials as f64;
        let naive = sparse::naive_bits(n, s);
        t.row([
            s.to_string(),
            f(naive, 0),
            f(hw, 0),
            format!("{:.1}x", naive / hw),
            "no conflict".to_owned(),
        ]);
    }
    println!("{}", t.render());

    // And one conflicting pair: still always correct.
    let (mut x, y) = random_disjoint(n, 256, &mut rng);
    let shared = y.iter().next().expect("nonempty");
    x.insert(shared);
    let out = sparse::run(&x, &y, &mut rng);
    assert!(!out.output);
    println!(
        "planted one conflicting key → detected in {:.0} bits (fallback: {})",
        out.bits, out.fallback
    );
    println!(
        "\nPer modified key the protocol pays ≈ 2 bits + o(1), independent of\n\
         the {}-bit key width — the index-into-shared-randomness trick that\n\
         also powers the paper's Lemma 7 compression sampler.",
        (n as f64).log2() as u32
    );
}
