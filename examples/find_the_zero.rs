//! The lower-bound intuition, live: transcripts must *point* at a player
//! that received zero.
//!
//! Section 2 of the paper: under the hard distribution each player holds 0
//! with probability only 1/k, so before the protocol runs you cannot name a
//! zero-holder. Once a 0-output transcript is revealed, Bayes' rule
//! concentrates — some player's posterior probability of holding 0 becomes
//! constant. Naming that player is worth log2(k) bits, and that is the whole
//! Ω(log k) lower bound.
//!
//! This example runs the (noisy) sequential AND protocol on inputs with
//! exactly two zeros, prints the per-player posteriors before and after, and
//! tabulates the Lemma 5 quantities.
//!
//! Run with: `cargo run --release --example find_the_zero`

use broadcast_ic::core::table::{f, Table};
use broadcast_ic::lowerbound::good_transcripts::analyze;
use broadcast_ic::lowerbound::hard_dist::HardDist;
use broadcast_ic::lowerbound::qdecomp::{alpha, posterior_zero, Alpha};
use broadcast_ic::protocols::and_trees::noisy_sequential_and;
use rand::SeedableRng;

fn main() {
    let k = 12;
    let delta = 0.01;
    let tree = noisy_sequential_and(k, delta / k as f64);
    let mu = HardDist::new(k);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);

    println!("k = {k} players, noisy sequential AND (total error ≈ {delta})");
    println!(
        "prior: each player holds 0 with probability 1/k = {:.3}\n",
        mu.zero_prob()
    );

    // Draw an input with exactly two zeros (the case the proof conditions
    // on) and run the protocol.
    let x = mu.sample_with_zero_count(2, &mut rng);
    let zeros: Vec<usize> = x
        .iter()
        .enumerate()
        .filter(|(_, &b)| !b)
        .map(|(i, _)| i)
        .collect();
    println!(
        "secret input: players {:?} hold 0 (nobody else knows this)",
        zeros
    );

    let (leaf_idx, bits) = tree.simulate(&x, &mut rng);
    let leaf = &tree.leaves()[leaf_idx];
    println!(
        "transcript: \"{bits}\" ({} bits), output = {}\n",
        bits.len(),
        leaf.output
    );

    // Posterior table: who does the transcript point at?
    let mut t = Table::new(["player", "alpha_i", "posterior Pr[X_i=0]", "holds 0?"]);
    for (i, &holds_one) in x.iter().enumerate() {
        let a = match alpha(leaf, i) {
            Alpha::Finite(v) => f(v, 2),
            Alpha::Infinite => "inf".to_owned(),
            Alpha::Undefined => "n/a".to_owned(),
        };
        t.row([
            i.to_string(),
            a,
            f(posterior_zero(leaf, i, k), 3),
            if holds_one { "" } else { "  <-- yes" }.to_owned(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "A posterior near 1.0 against a prior of {:.3} is a surprise worth\n\
         about log2(k) = {:.2} bits — the information the protocol leaked.\n",
        mu.zero_prob(),
        (k as f64).log2()
    );

    // The aggregate Lemma 5 accounting for this protocol.
    let report = analyze(&tree, 20.0, 0.5);
    println!("Lemma 5 accounting over ALL transcripts (exact, conditioned on two zeros):");
    println!(
        "  pi2(L)  = {:.4}   (transcripts strongly preferring two-zero inputs)",
        report.pi2_l
    );
    println!("  pi2(L') = {:.4}", report.pi2_lprime);
    println!(
        "  pi2(B0) = {:.4}   (0-output, not in L: 'gave up')",
        report.pi2_b0
    );
    println!(
        "  pi2(B1) = {:.4}   (wrong output on two-zero inputs)",
        report.pi2_b1
    );
    println!(
        "  pointing mass (max alpha >= k/2) = {:.4}",
        report.pointing_mass
    );
}
