//! Figure 1, reproduced: the rejection-sampling compression step — plus the
//! full Theorem 3 amortized pipeline it powers.
//!
//! The paper's Figure 1 shows a universe with the true distribution η (thick
//! curve), the receivers' prior ν (thin curve) and the scaled prior 2^s·ν
//! (dashed): public points under η are what the sender may pick; points
//! under 2^s·ν are the candidate set P′ the receivers consider; the sender
//! names its point's index inside P′.
//!
//! This example renders that picture in ASCII for a concrete run, then
//! compresses 512 parallel copies of AND_16 and prints the per-copy
//! convergence to the information cost.
//!
//! Run with: `cargo run --release --example compress_protocol`

use broadcast_ic::compression::amortized::compress_nfold;
use broadcast_ic::compression::sampling::{exchange, SamplerConfig};
use broadcast_ic::info::dist::Dist;
use broadcast_ic::info::divergence::kl;
use broadcast_ic::protocols::and_trees::sequential_and;
use rand::SeedableRng;

fn bar(p: f64, scale: f64) -> String {
    "#".repeat((p * scale).round() as usize)
}

fn main() {
    // ---------------- Figure 1: one sampling step ----------------
    let eta = Dist::new(vec![0.02, 0.08, 0.45, 0.25, 0.05, 0.05, 0.05, 0.05]).expect("valid");
    let nu = Dist::new(vec![0.125; 8]).expect("valid");
    let d = kl(&eta, &nu);

    println!("Figure 1 — one round of the Lemma 7 sampling protocol");
    println!("universe |U| = 8, D(eta||nu) = {d:.3} bits\n");
    println!("  x   eta(x) (sender only)   nu(x) (everyone)");
    for x in 0..8 {
        println!(
            "  {x}   {:<22} {:<20}",
            format!("{:.2} {}", eta.prob(x), bar(eta.prob(x), 40.0)),
            format!("{:.2} {}", nu.prob(x), bar(nu.prob(x), 40.0)),
        );
    }

    let ex = exchange(&eta, &nu, &SamplerConfig::default(), 20250707);
    println!("\n  the sender rejection-samples over public points, then sends:");
    println!("    1. block index            (Elias-gamma)");
    println!("    2. log-ratio s = {}        (Elias-gamma)", ex.s);
    println!("    3. index inside P'        (fixed width)");
    println!(
        "  total {} bits vs naive log2|U| = 3; receivers decoded outcome {} = sender's {}\n",
        ex.bits, ex.receiver_sample, ex.sender_sample
    );
    assert!(ex.agreed());

    // ---------------- Theorem 3: amortize it ----------------
    let k = 16;
    let tree = sequential_and(k);
    let priors = vec![1.0 - 1.0 / k as f64; k];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    println!("Theorem 3 — compressing n parallel copies of sequential AND_{k}");
    println!("  (per-copy bits; IC is the information-theoretic floor)\n");
    println!(
        "  {:>6}  {:>10}  {:>12}  {:>8}",
        "n", "raw/copy", "compressed/copy", "IC"
    );
    for n in [1usize, 8, 64, 512] {
        let rep = compress_nfold(&tree, &priors, n, 10, &mut rng);
        println!(
            "  {:>6}  {:>10.2}  {:>12.2}  {:>8.2}",
            n,
            rep.per_copy_raw(),
            rep.per_copy_compressed(),
            rep.ic_per_copy
        );
    }
    println!("\nAs n grows the O(log(n·IC)) per-round overhead amortizes away and");
    println!("the per-copy cost approaches the information cost — Theorem 3.");
}
