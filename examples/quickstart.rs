//! Quickstart: the three things this library does.
//!
//! 1. Run broadcast protocols on concrete inputs and count bits.
//! 2. Compute *exact* information costs of protocols given as trees.
//! 3. Compress protocols towards their information cost.
//!
//! Run with: `cargo run --release --example quickstart`

use broadcast_ic::compression::amortized::compress_nfold;
use broadcast_ic::compression::sampling::{exchange, SamplerConfig};
use broadcast_ic::info::dist::Dist;
use broadcast_ic::info::divergence::kl;
use broadcast_ic::lowerbound::cic::cic_hard;
use broadcast_ic::lowerbound::hard_dist::HardDist;
use broadcast_ic::protocols::and_trees::sequential_and;
use broadcast_ic::protocols::disj::{batched, naive};
use broadcast_ic::protocols::workload;
use rand::SeedableRng;

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);

    // ------------------------------------------------------------------
    // 1. Set disjointness: k = 16 players, n = 2048 coordinates, disjoint
    //    inputs where every coordinate has exactly one zero holder.
    // ------------------------------------------------------------------
    let (n, k) = (2048, 16);
    let inputs = workload::planted_zero_cover(n, k, 0.0, &mut rng);
    let slow = naive::run(&inputs);
    let fast = batched::run(&inputs);
    println!("DISJ_{{n={n}, k={k}}} on a hard disjoint instance:");
    println!(
        "  naive protocol   : {:>7} bits  (≈ log2(n)+1 = {:.1} per coordinate)",
        slow.bits,
        (n as f64).log2() + 1.0
    );
    println!(
        "  batched (Thm 2)  : {:>7} bits  (bound log2(e·k) = {:.1} per coordinate)",
        fast.bits,
        batched::per_coordinate_bound(k)
    );
    println!("  both answered    : disjoint = {}", fast.output);
    assert_eq!(slow.output, fast.output);

    // The batched board is decodable by someone who never saw any input:
    let decoded = batched::decode(n, k, &fast.board);
    assert_eq!(decoded.output, fast.output);
    println!("  board replay (no inputs) recovers the output: ok\n");

    // ------------------------------------------------------------------
    // 2. Exact information cost: CIC_mu(AND_k) for the sequential witness.
    // ------------------------------------------------------------------
    println!("Exact conditional information cost of sequential AND_k:");
    for k in [8usize, 64, 512] {
        let cic = cic_hard(&sequential_and(k), &HardDist::new(k));
        println!(
            "  k = {k:>4}: CIC = {cic:.3} bits   (CIC / log2 k = {:.3}, CC = {k})",
            cic / (k as f64).log2()
        );
    }
    println!();

    // ------------------------------------------------------------------
    // 3. Compression: one-round sampling, then amortized n-fold.
    // ------------------------------------------------------------------
    let eta = Dist::new(vec![0.7, 0.1, 0.1, 0.05, 0.05]).expect("valid");
    let nu = Dist::new(vec![0.5, 0.2, 0.1, 0.1, 0.1]).expect("valid");
    let ex = exchange(&eta, &nu, &SamplerConfig::default(), 7);
    println!("Lemma 7 sampling: D(eta||nu) = {:.3} bits", kl(&eta, &nu));
    println!(
        "  sender sampled outcome {}, receivers decoded {}, cost {} bits",
        ex.sender_sample, ex.receiver_sample, ex.bits
    );

    let k = 16;
    let tree = sequential_and(k);
    let priors = vec![1.0 - 1.0 / k as f64; k];
    let rep = compress_nfold(&tree, &priors, 256, 8, &mut rng);
    println!("Theorem 3 amortized compression of 256 copies of AND_{k}:");
    println!(
        "  per-copy: raw {:.2} bits  →  compressed {:.2} bits  (IC = {:.2})",
        rep.per_copy_raw(),
        rep.per_copy_compressed(),
        rep.ic_per_copy
    );
}
