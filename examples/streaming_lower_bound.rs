//! From streaming algorithms to broadcast protocols — the reduction behind
//! the paper's streaming motivation ([1, 2, 17] in its references).
//!
//! A p-pass, S-bit-memory streaming algorithm for a function of a stream
//! yields a broadcast protocol: split the stream among k players; each pass,
//! the players run the algorithm on their chunk in order, broadcasting the
//! S-bit memory state to hand over. Total communication ≈ `p·k·S` bits.
//! Contrapositive: a communication lower bound of `C` on the induced
//! problem forces `S ≥ C/(p·k)` memory.
//!
//! Here the stream is the multiset of "missing pairs" `(player, coordinate)`
//! and the induced problem is exactly `DISJ_{n,k}`; the paper's
//! `Ω(n log k + k)` bound therefore gives `S = Ω((n log k)/(p·k))` for any
//! streaming algorithm solving it. The example *executes* the reduction
//! with a concrete bitmap-memory algorithm and compares the reduction's
//! airtime against the paper's optimal protocol.
//!
//! Run with: `cargo run --release --example streaming_lower_bound`

use broadcast_ic::core::table::Table;
use broadcast_ic::protocols::disj::{batched, disj_function};
use broadcast_ic::protocols::workload;
use rand::SeedableRng;

/// A 1-pass streaming algorithm deciding DISJ from the stream of zero
/// coordinates: memory = one bitmap of `n` bits (coordinates with a known
/// zero). This is the *trivial* algorithm; the point of the lower bound is
/// that one cannot do asymptotically better than `(n log k)/k` per handoff.
struct BitmapStreamAlgo {
    memory: Vec<bool>,
}

impl BitmapStreamAlgo {
    fn new(n: usize) -> Self {
        BitmapStreamAlgo {
            memory: vec![false; n],
        }
    }

    fn feed(&mut self, zero_coordinate: usize) {
        self.memory[zero_coordinate] = true;
    }

    fn memory_bits(&self) -> usize {
        self.memory.len()
    }

    fn output(&self) -> bool {
        self.memory.iter().all(|&b| b) // every coordinate has a zero
    }

    fn load(&mut self, state: &[bool]) {
        self.memory.copy_from_slice(state);
    }
}

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let n = 4096;

    println!("Streaming → broadcast reduction for DISJ_{{n={n},k}}");
    println!("(1-pass bitmap algorithm, S = n bits of memory)\n");

    let mut t = Table::new([
        "k",
        "reduction airtime (k-1)*S",
        "optimal protocol (Thm 2)",
        "lower bound n*log2(k)",
        "S lower bound per handoff",
    ]);
    for &k in &[4usize, 16, 64] {
        let inputs = workload::planted_zero_cover(n, k, 0.0, &mut rng);
        assert!(disj_function(&inputs));

        // Execute the reduction: player i streams its zero coordinates into
        // the algorithm, then broadcasts the S-bit memory to player i+1.
        let mut algo = BitmapStreamAlgo::new(n);
        let mut airtime = 0usize;
        for (i, x) in inputs.iter().enumerate() {
            if i > 0 {
                // Receive the previous state (already in `algo`).
            }
            for j in x.complement().iter() {
                algo.feed(j);
            }
            if i + 1 < k {
                // Broadcast the memory state: S bits.
                airtime += algo.memory_bits();
                let state: Vec<bool> = algo.memory.clone();
                let mut next = BitmapStreamAlgo::new(n);
                next.load(&state);
                algo = next;
            }
        }
        assert!(algo.output(), "the reduction decides DISJ correctly");

        let optimal = batched::run(&inputs).bits;
        let lb = (n as f64) * (k as f64).log2();
        t.row([
            k.to_string(),
            airtime.to_string(),
            optimal.to_string(),
            format!("{lb:.0}"),
            format!("{:.0}", lb / ((k - 1) as f64)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The reduction's airtime is (k−1)·S, so the paper's Ω(n log k) bound\n\
         forces S ≥ n·log₂(k)/(k−1) bits of streaming memory per pass — the\n\
         bitmap algorithm's S = n is within a log factor of optimal for\n\
         small k, and *no* streaming algorithm can beat the bound. This is\n\
         how communication lower bounds in the broadcast model translate\n\
         into streaming-memory lower bounds."
    );
}
