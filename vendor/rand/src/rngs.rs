//! Concrete generators: [`StdRng`] and the [`SplitMix64`] seed expander.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand `u64` seeds into full seed arrays and as the
/// engine behind deterministic seed derivation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's general-purpose seedable generator (xoshiro256++).
///
/// Like upstream `rand`'s `StdRng`, the exact output stream is an
/// implementation detail: it is deterministic per seed but not guaranteed to
/// match any other crate's `StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SplitMix64::new(1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_escaped() {
        let mut r = StdRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
