//! Vendored offline stand-in for the `rand` crate (0.9 API subset).
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the external dependencies are replaced by small,
//! self-contained path crates that implement exactly the API surface the
//! workspace uses. This crate provides:
//!
//! * [`RngCore`] / [`SeedableRng`] — the core generator traits;
//! * [`Rng`] — the user-facing extension trait ([`Rng::random`],
//!   [`Rng::random_bool`], [`Rng::random_range`]), blanket-implemented for
//!   every `RngCore` (including unsized `dyn RngCore`);
//! * [`rngs::StdRng`] — a seedable general-purpose generator
//!   (xoshiro256++; like upstream, the exact stream is unspecified).
//!
//! The streams produced are deterministic per seed but intentionally *not*
//! guaranteed to match upstream `rand`: the workspace only relies on
//! determinism within itself, never on upstream-compatible streams.

pub mod rngs;

/// A source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (deterministic, but not upstream-compatible).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = crate::rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] via
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 range: any value works.
                    return (rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)) as $t;
                }
                start.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, bound)` by widening multiplication (bound > 0).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        // 64-bit widening-multiply method; bias < 2^-64, irrelevant here.
        let x = rng.next_u64() as u128;
        (x * bound) >> 64
    } else {
        let x = rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64);
        // Modulo fallback for the (unused in practice) huge-range case.
        x % bound
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] — including trait objects.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // Integer-threshold comparison so p = 0 and p = 1 are exact.
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_extremes_are_exact() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn random_bool_frequency() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(0u64..=5);
            assert!(y <= 5);
            let z = r.random_range(-3i64..3);
            assert!((-3..3).contains(&z));
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut r = StdRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let _ = dyn_rng.random_bool(0.5);
        let v = dyn_rng.random_range(0usize..4);
        assert!(v < 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.random_range(5usize..5);
    }
}
