//! Vendored offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with simple wall-clock measurement and plain-text output
//! instead of statistical analysis and HTML reports. Good enough to keep
//! the benches compiling, running, and producing comparable numbers in a
//! hermetic environment.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the benches mostly use directly).
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to the closure under measurement; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration of the measured routine.
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, first warming up, then averaging over batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: grow the batch until it takes
        // at least ~1ms so Instant overhead is amortized.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break elapsed / batch as u32;
            }
            batch *= 2;
        };
        // Measurement: `samples` batches, keep the mean.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            if total > Duration::from_millis(200) {
                break;
            }
        }
        let mean = if iters > 0 {
            total / iters as u32
        } else {
            per_iter
        };
        self.result = Some(mean);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut bencher, input);
        self.criterion.report(&self.name, &id.name, bencher.result);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            result: None,
        };
        f(&mut bencher);
        self.criterion.report(&self.name, &id.name, bencher.result);
        self
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            result: None,
        };
        f(&mut bencher);
        self.report("", name, bencher.result);
        self
    }

    fn report(&mut self, group: &str, name: &str, result: Option<Duration>) {
        let label = if group.is_empty() {
            name.to_owned()
        } else {
            format!("{group}/{name}")
        };
        match result {
            Some(mean) => println!("{label:<60} {:>12.3?}/iter", mean),
            None => println!("{label:<60} (no measurement)"),
        }
    }
}

/// Declares a function running the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "n8").to_string(), "f/n8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
