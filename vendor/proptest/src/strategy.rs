//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! [`Just`], and `any::<T>()`.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of type `Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// simply draws a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value, then draws from
    /// it — the standard way to make dependent strategies.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix full-width values with small ones so boundary-heavy
                // code sees both regimes.
                match rng.random_range(0u32..4) {
                    0 => rng.random_range(0..=16) as $t,
                    _ => {
                        let full = rng.random::<u64>() as u128
                            | ((rng.random::<u64>() as u128) << 64);
                        full as $t
                    }
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, u128, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random::<f64>() * 2e6 - 1e6
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.random::<u64>() as usize)
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(42, 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u64..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
        let dep = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..50 {
            let (n, i) = dep.generate(&mut r);
            assert!(i < n);
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut r = rng();
        let (a, b, c) = (Just(7u8), 0u32..4, any::<bool>()).generate(&mut r);
        assert_eq!(a, 7);
        assert!(b < 4);
        let _ = c;
    }

    #[test]
    fn arbitrary_uints_hit_small_and_large() {
        let mut r = rng();
        let vals: Vec<u64> = (0..300).map(|_| u64::arbitrary(&mut r)).collect();
        assert!(vals.iter().any(|&v| v <= 16));
        assert!(vals.iter().any(|&v| v > u32::MAX as u64));
    }
}
