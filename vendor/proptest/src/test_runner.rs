//! The minimal runner machinery behind the [`proptest!`](crate::proptest)
//! macro: configuration, per-case RNGs, and the case-level error type.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw a fresh case instead.
    Reject(String),
    /// A `prop_assert*` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A falsified-property error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-case (failed assumption) error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG handed to strategies: a seedable [`StdRng`] derived from the test
/// name and case number.
pub type TestRng = StdRngCase;

/// Wrapper constructing per-case [`StdRng`] streams.
#[derive(Debug)]
pub struct StdRngCase {
    inner: StdRng,
}

impl StdRngCase {
    /// Derives the RNG for `(test seed, case index)`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        StdRngCase {
            inner: StdRng::seed_from_u64(
                seed ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ),
        }
    }
}

impl rand::RngCore for StdRngCase {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

/// FNV-1a over `bytes` — stable test-name hashing for seed derivation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"alpha"), fnv1a(b"beta"));
    }

    #[test]
    fn case_rngs_are_deterministic() {
        use rand::RngCore;
        let mut a = TestRng::for_case(1, 2);
        let mut b = TestRng::for_case(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(1, 3);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
