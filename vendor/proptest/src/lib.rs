//! Vendored offline stand-in for `proptest`.
//!
//! Implements the generation-side subset of the proptest API the workspace
//! uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`sample::Index`], [`Just`],
//! `any::<T>()`, the [`proptest!`] macro, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** — the panic
//! message reports the case number and the failed assertion instead of a
//! minimal counterexample. Each test function derives its RNG stream from a
//! hash of its own name, so runs are deterministic.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `prop` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// Runs a block of property tests. Supports the upstream grammar used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, (a, b) in (any::<bool>(), 0.0f64..1.0)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ( $( $strat, )+ );
                let seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
                let mut rejected = 0u32;
                let mut case = 0u32;
                let mut attempts = 0u32;
                while case < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(64).max(1024),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(seed, attempts);
                    let ( $($pat,)+ ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => case += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case} (attempt {attempts}): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
                let _ = rejected;
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Rejects the current case (it is re-drawn, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
