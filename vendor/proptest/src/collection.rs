//! Collection strategies: [`vec()`] and [`btree_set`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A size specification for collection strategies: an exact size, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` aiming for a size drawn from `size`.
///
/// Like upstream, the requested size is an upper target: if the element
/// strategy's support is too small to produce enough distinct values, the
/// set is returned with as many elements as were found.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts so tiny supports cannot loop forever.
        let mut budget = target * 8 + 16;
        while set.len() < target && budget > 0 {
            set.insert(self.element.generate(rng));
            budget -= 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(7, 0)
    }

    #[test]
    fn vec_sizes_in_range() {
        let mut r = rng();
        let s = vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut r = rng();
        let s = vec(0u32..10, 3);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut r).len(), 3);
        }
    }

    #[test]
    fn btree_set_distinct_and_bounded() {
        let mut r = rng();
        let s = btree_set(0u64..50, 0..=20);
        for _ in 0..100 {
            let set = s.generate(&mut r);
            assert!(set.len() <= 20);
            assert!(set.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn btree_set_small_support_terminates() {
        let mut r = rng();
        // Only 3 possible values but size up to 10: must terminate.
        let s = btree_set(0u64..3, 10..=10);
        let set = s.generate(&mut r);
        assert!(set.len() <= 3);
    }
}
