//! [`Index`] — an arbitrary index scaled into any collection's bounds.

/// An index usable with collections whose size is unknown at generation
/// time; obtain one with `any::<prop::sample::Index>()` and scale it with
/// [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Wraps a raw value.
    pub fn new(raw: usize) -> Self {
        Index { raw }
    }

    /// Scales the index into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        self.raw % len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_scales_into_bounds() {
        let i = Index::new(usize::MAX);
        for len in 1..100 {
            assert!(i.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn zero_len_panics() {
        Index::new(3).index(0);
    }
}
