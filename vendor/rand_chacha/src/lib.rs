//! Vendored offline stand-in for `rand_chacha`: real ChaCha block ciphers
//! driving the workspace's [`rand::RngCore`] / [`rand::SeedableRng`] traits.
//!
//! The core is the standard ChaCha quarter-round/double-round construction
//! (IETF variant constants, 64-bit block counter, zero nonce). The output
//! word order is deterministic per seed; cross-crate stream compatibility
//! with upstream `rand_chacha` is *not* a goal — the workspace only relies
//! on determinism within itself.

use rand::{RngCore, SeedableRng};

/// The ChaCha state: 32-byte key, 64-bit counter, R double-rounds.
#[derive(Debug, Clone)]
struct ChaChaCore<const DOUBLE_ROUNDS: usize> {
    /// Words 4..12 of the initial state (the key), plus constants/counter.
    key: [u32; 8],
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 = exhausted.
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaCore<DOUBLE_ROUNDS> {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn new(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
        }
        ChaChaCore {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }

    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut initial = [0u32; 16];
        initial[..4].copy_from_slice(&Self::CONSTANTS);
        initial[4..12].copy_from_slice(&self.key);
        initial[12] = self.counter as u32;
        initial[13] = (self.counter >> 32) as u32;
        // Words 14..15: zero nonce.
        let mut state = initial;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    /// Serializes the stream position: key, block counter, intra-block
    /// index. The buffered block itself is *not* stored — it is a pure
    /// function of `(key, counter)` and is regenerated on restore.
    fn state_bytes(&self) -> [u8; STATE_LEN] {
        let mut out = [0u8; STATE_LEN];
        for (i, w) in self.key.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&w.to_le_bytes());
        }
        out[32..40].copy_from_slice(&self.counter.to_le_bytes());
        out[40] = self.index as u8;
        out
    }

    fn from_state_bytes(bytes: &[u8; STATE_LEN]) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(bytes[i * 4..(i + 1) * 4].try_into().expect("4 bytes"));
        }
        let counter = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
        let index = (bytes[40] as usize).min(16);
        let mut core = ChaChaCore {
            key,
            counter,
            block: [0; 16],
            index: 16,
        };
        if index < 16 {
            // The live block was produced from `counter - 1` (refill
            // increments after generating). Rewind, regenerate, and restore
            // the read position within it.
            core.counter = counter.wrapping_sub(1);
            core.refill();
            core.index = index;
        }
        core
    }
}

/// Byte length of the serialized RNG state returned by
/// [`ChaCha8Rng::state_bytes`] (and the 12/20-round variants): 32-byte key,
/// 8-byte block counter, 1-byte intra-block index.
pub const STATE_LEN: usize = 41;

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$double_rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::new(seed),
                }
            }
        }

        impl $name {
            /// Serializes the full stream position into [`STATE_LEN`]
            /// bytes. Restoring with [`Self::from_state_bytes`] resumes the
            /// output stream exactly where this generator stands, including
            /// mid-block positions.
            pub fn state_bytes(&self) -> [u8; STATE_LEN] {
                self.core.state_bytes()
            }

            /// Rebuilds a generator from [`Self::state_bytes`] output. An
            /// out-of-range intra-block index is clamped to "block
            /// exhausted" rather than rejected, so arbitrary bytes cannot
            /// panic; only round-tripped states are meaningful.
            pub fn from_state_bytes(bytes: &[u8; STATE_LEN]) -> Self {
                $name {
                    core: ChaChaCore::from_state_bytes(bytes),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                lo | (hi << 32)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let bytes = self.core.next_word().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    4,
    "ChaCha with 8 rounds — the workspace's default experiment RNG."
);
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc8439_keystream_shape() {
        // With an all-zero key and nonce, the first block must be the
        // well-known ChaCha20 zero-key keystream. First word of the
        // RFC-style block with counter 0: 0xade0b876.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
        assert_eq!(rng.next_u32(), 0x903d_f1a0);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(2);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let expect = [b.next_u32().to_le_bytes(), b.next_u32().to_le_bytes()].concat();
        assert_eq!(buf.to_vec(), expect);
    }

    #[test]
    fn state_round_trip_resumes_the_stream_at_any_position() {
        // Cover fresh (index 16, counter 0), mid-block, and block-boundary
        // positions: the restored generator's stream must match the
        // original's from that point on.
        for advance in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 100] {
            let mut a = ChaCha8Rng::seed_from_u64(9);
            for _ in 0..advance {
                a.next_u32();
            }
            let mut b = ChaCha8Rng::from_state_bytes(&a.state_bytes());
            for step in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64(), "advance {advance} step {step}");
            }
        }
    }

    #[test]
    fn state_restore_clamps_garbage_index() {
        let mut bytes = ChaCha8Rng::seed_from_u64(4).state_bytes();
        bytes[40] = 0xFF;
        // Must not panic; behaves as an exhausted block.
        let mut r = ChaCha8Rng::from_state_bytes(&bytes);
        r.next_u64();
    }

    #[test]
    fn uniformity_smoke() {
        use rand::Rng;
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mean: f64 = (0..50_000).map(|_| r.random::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
