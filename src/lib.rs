//! # broadcast-ic
//!
//! Reproduction of *"On Information Complexity in the Broadcast Model"*
//! (Braverman & Oshman, PODC 2015) as a Rust library suite.
//!
//! This root crate re-exports the whole workspace behind one name and hosts
//! the runnable `examples/` and cross-crate integration `tests/`. See the
//! README for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! The sub-crates:
//!
//! * [`info`] — finite-support information theory (distributions, entropy,
//!   KL divergence, mutual information, estimators).
//! * [`encoding`] — bit I/O, universal codes, exact combinadic subset codec.
//! * [`blackboard`] — the k-party broadcast model: boards, transcripts,
//!   executable protocols and protocol trees with exact analysis.
//! * [`protocols`] — the paper's protocols: `AND_k` variants and the naive /
//!   optimal set-disjointness protocols.
//! * [`lowerbound`] — the lower-bound machinery made executable:
//!   q-decompositions, α-coefficients, posteriors, good transcripts, exact
//!   conditional information cost.
//! * [`compression`] — the Lemma-7 sampling protocol and Theorem-3 amortized
//!   compression.
//! * [`fabric`] — the concurrent execution fabric: transports, session
//!   scheduling with backpressure, fault injection, and a deterministic
//!   parallel Monte-Carlo driver.
//! * [`net`] — the fabric over real TCP sockets: coordinator daemon,
//!   length-prefixed frames, heartbeats, reconnect backoff, and
//!   wire-overhead measurement (see `docs/net.md`).
//! * [`telemetry`] — structured tracing and metrics: spans, counters,
//!   fixed-bucket histograms, and a dependency-free JSON writer; recording
//!   never perturbs results (see `docs/telemetry.md`).
//! * [`core`] — high-level facade and the experiment drivers behind every
//!   table in `EXPERIMENTS.md`.

pub use bci_blackboard as blackboard;
pub use bci_compression as compression;
pub use bci_core as core;
pub use bci_encoding as encoding;
pub use bci_fabric as fabric;
pub use bci_info as info;
pub use bci_lowerbound as lowerbound;
pub use bci_net as net;
pub use bci_protocols as protocols;
pub use bci_telemetry as telemetry;
