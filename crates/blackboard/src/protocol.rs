//! Executable broadcast protocols.
//!
//! A [`Protocol`] captures the paper's model faithfully:
//!
//! * [`Protocol::next_speaker`] depends **only on the board** — the model
//!   requires the board contents to determine whose turn it is;
//! * [`Protocol::message`] sees only the speaking player's *own* input (the
//!   signature enforces input privacy), the board, and a random source;
//! * [`Protocol::output`] depends only on the board, so every player (and an
//!   external observer) can compute it for free.

use bci_encoding::bitio::BitVec;
use bci_telemetry::{Json, Recorder, SpanKind};
use rand::RngCore;

use crate::board::Board;
use crate::engine::{Step, TurnEngine};
use crate::PlayerId;

/// A protocol in the broadcast model.
///
/// See the [crate-level example](crate) for a full implementation.
pub trait Protocol {
    /// One player's private input.
    type Input;
    /// The value the protocol computes.
    type Output;

    /// Number of players `k`.
    fn num_players(&self) -> usize;

    /// Whose turn it is given the board, or `None` if the protocol halts.
    ///
    /// Must be a function of the board alone.
    fn next_speaker(&self, board: &Board) -> Option<PlayerId>;

    /// The message `player` writes, given its own input and the board.
    fn message(
        &self,
        player: PlayerId,
        input: &Self::Input,
        board: &Board,
        rng: &mut dyn RngCore,
    ) -> BitVec;

    /// The output determined by a final board.
    fn output(&self, board: &Board) -> Self::Output;
}

/// The result of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct Execution<O> {
    /// The final board (= the transcript).
    pub board: Board,
    /// The computed output.
    pub output: O,
    /// Total bits written — the communication cost of this execution.
    pub bits_written: usize,
}

/// Runs `protocol` on `inputs` until it halts.
///
/// # Panics
///
/// Panics if `inputs.len() != protocol.num_players()`, if the protocol names
/// an out-of-range speaker, or if it exceeds [`MAX_STEPS`] turns (a runaway
/// protocol is a bug, not a result).
pub fn run<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    rng: &mut dyn RngCore,
) -> Execution<P::Output> {
    run_traced(protocol, inputs, rng, &Recorder::disabled())
}

/// Like [`run`], but reports per-round telemetry to `recorder`: a `round`
/// point event per message (speaker, message bits, bits on the board) and
/// the `runner.bits_per_round` histogram.
///
/// The recorder only *observes* — it never touches `rng` or influences
/// control flow — so for any protocol the execution is bit-identical to
/// [`run`]'s. With a disabled recorder the overhead is one branch per turn.
///
/// This is the *serial driver* of the sans-io [`TurnEngine`]: the caller
/// keeps the random source, so the engine runs in external-RNG mode and
/// each grant is performed inline on the calling thread.
pub fn run_traced<P: Protocol>(
    protocol: &P,
    inputs: &[P::Input],
    rng: &mut dyn RngCore,
    recorder: &Recorder,
) -> Execution<P::Output> {
    let mut engine = match TurnEngine::new(protocol, inputs.len()) {
        Ok(engine) => engine,
        Err(violation) => panic!("{violation}"),
    };
    loop {
        let step = match engine.poll() {
            Ok(step) => step,
            Err(violation) => panic!("{violation}"),
        };
        let grant = match step {
            Step::Grant(grant) => grant,
            Step::Halted => break,
        };
        let msg = protocol.message(grant.speaker, &inputs[grant.speaker], engine.board(), rng);
        let msg_bits = msg.len();
        if let Err(violation) = engine.apply(grant.speaker, msg, None) {
            panic!("{violation}");
        }
        if recorder.enabled() {
            recorder.hist_record(
                "runner.bits_per_round",
                msg_bits as u64,
                bci_telemetry::hist::BITS_BOUNDS,
            );
            if recorder.events_enabled() {
                recorder.point(
                    SpanKind::Round,
                    grant.turn as u64,
                    vec![
                        ("speaker", Json::UInt(grant.speaker as u64)),
                        ("msg_bits", Json::UInt(msg_bits as u64)),
                        ("board_bits", Json::UInt(engine.bits_written() as u64)),
                    ],
                );
            }
        }
    }
    let output = engine.output();
    let bits_written = engine.bits_written();
    Execution {
        board: engine.into_board(),
        output,
        bits_written,
    }
}

/// Hard cap on protocol turns; exceeded only by buggy non-terminating
/// protocols.
pub const MAX_STEPS: usize = 10_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Each player writes its 2-bit input in turn; output is the XOR of all.
    struct XorAll {
        k: usize,
    }

    impl Protocol for XorAll {
        type Input = u8;
        type Output = u8;

        fn num_players(&self) -> usize {
            self.k
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            (board.messages().len() < self.k).then_some(board.messages().len())
        }

        fn message(
            &self,
            _player: PlayerId,
            input: &u8,
            _board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            BitVec::from_bools(&[input & 1 == 1, input & 2 == 2])
        }

        fn output(&self, board: &Board) -> u8 {
            board.messages().iter().fold(0u8, |acc, m| {
                let v = u8::from(m.bits.get(0).unwrap_or(false))
                    | (u8::from(m.bits.get(1).unwrap_or(false)) << 1);
                acc ^ v
            })
        }
    }

    #[test]
    fn run_computes_and_counts() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let exec = run(&XorAll { k: 4 }, &[1, 2, 3, 1], &mut rng);
        assert_eq!(exec.output, 1);
        assert_eq!(exec.bits_written, 8);
        assert_eq!(exec.board.messages().len(), 4);
    }

    #[test]
    #[should_panic(expected = "expected 4 inputs")]
    fn wrong_input_count_panics() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        run(&XorAll { k: 4 }, &[1, 2], &mut rng);
    }

    struct NeverHalts;

    impl Protocol for NeverHalts {
        type Input = ();
        type Output = ();

        fn num_players(&self) -> usize {
            1
        }

        fn next_speaker(&self, _board: &Board) -> Option<PlayerId> {
            Some(0)
        }

        fn message(
            &self,
            _player: PlayerId,
            _input: &(),
            _board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            BitVec::from_bools(&[true])
        }

        fn output(&self, _board: &Board) {}
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_protocol_is_caught() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        run(&NeverHalts, &[()], &mut rng);
    }

    struct BadSpeaker;

    impl Protocol for BadSpeaker {
        type Input = ();
        type Output = ();

        fn num_players(&self) -> usize {
            2
        }

        fn next_speaker(&self, _board: &Board) -> Option<PlayerId> {
            Some(7)
        }

        fn message(
            &self,
            _player: PlayerId,
            _input: &(),
            _board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            BitVec::new()
        }

        fn output(&self, _board: &Board) {}
    }

    #[test]
    #[should_panic(expected = "named speaker 7")]
    fn out_of_range_speaker_is_caught() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        run(&BadSpeaker, &[(), ()], &mut rng);
    }
}
