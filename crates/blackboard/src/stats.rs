//! Streaming statistics over per-execution communication costs.

use std::fmt;

/// Accumulates count / mean / variance / min / max of a stream of
/// observations (Welford's algorithm), used for communication costs and
/// error indicators.
///
/// # Example
///
/// ```
/// use bci_blackboard::stats::CommStats;
///
/// let mut s = CommStats::new();
/// for bits in [10.0, 12.0, 14.0] {
///     s.record(bits);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 12.0);
/// assert_eq!(s.max(), 14.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl CommStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        CommStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 when empty).
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CommStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={} max={}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

impl Extend<f64> for CommStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for CommStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = CommStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = CommStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stderr(), 0.0);
    }

    #[test]
    fn known_moments() {
        let s: CommStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0); // classic example
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let data = [1.0, 3.0, 5.0, 7.0, 11.0, 13.0];
        let whole: CommStats = data.into_iter().collect();
        let mut a: CommStats = data[..2].iter().copied().collect();
        let b: CommStats = data[2..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: CommStats = [1.0, 2.0].into_iter().collect();
        let before = a.clone();
        a.merge(&CommStats::new());
        assert_eq!(a, before);

        let mut e = CommStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn single_observation() {
        let s: CommStats = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }
}
