//! Runs a [`ProtocolTree`] as an executable [`Protocol`].
//!
//! The adapter closes the loop between the two protocol representations:
//! the tree's edge labels become real board messages, the board alone
//! determines the walk position (hence the next speaker and the output),
//! and the speaker samples its edge from the tree's message distribution.
//! Conformance tests verify that executing the adapter induces exactly the
//! transcript distribution the tree's closed-form analysis predicts.

use bci_encoding::bitio::BitVec;
use bci_info::dist::Dist;
use rand::RngCore;

use crate::board::Board;
use crate::protocol::Protocol;
use crate::tree::{Node, NodeId, ProtocolTree};
use crate::PlayerId;

/// Adapter exposing a [`ProtocolTree`] through the [`Protocol`] trait.
///
/// # Example
///
/// ```
/// use bci_blackboard::protocol::run;
/// use bci_blackboard::tree::TreeBuilder;
/// use bci_blackboard::tree_protocol::TreeProtocol;
/// use bci_encoding::bitio::BitVec;
/// use rand::SeedableRng;
///
/// let mut b = TreeBuilder::new(1);
/// let l0 = b.leaf(0);
/// let l1 = b.leaf(1);
/// let root = b.internal(
///     0,
///     vec![
///         (BitVec::from_bools(&[false]), [1.0, 0.0], l0),
///         (BitVec::from_bools(&[true]), [0.0, 1.0], l1),
///     ],
/// );
/// let tree = b.finish(root);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let exec = run(&TreeProtocol::new(&tree), &[true], &mut rng);
/// assert_eq!(exec.output, 1);
/// assert_eq!(exec.bits_written, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TreeProtocol<'a> {
    tree: &'a ProtocolTree,
}

impl<'a> TreeProtocol<'a> {
    /// Wraps a tree.
    pub fn new(tree: &'a ProtocolTree) -> Self {
        TreeProtocol { tree }
    }

    /// Replays the board from the root, returning the current node.
    ///
    /// # Panics
    ///
    /// Panics if a board message does not match any edge label of the node
    /// it was written at (a board from a different protocol).
    fn walk(&self, board: &Board) -> NodeId {
        let mut id = self.tree.root();
        for msg in board.messages() {
            match self.tree.node(id) {
                Node::Leaf { .. } => panic!("board continues past a leaf"),
                Node::Internal { speaker, edges } => {
                    assert_eq!(*speaker, msg.speaker, "wrong speaker on board");
                    let edge = edges
                        .iter()
                        .find(|e| e.label == msg.bits)
                        .expect("message matches no edge label");
                    id = edge.child;
                }
            }
        }
        id
    }
}

impl Protocol for TreeProtocol<'_> {
    type Input = bool;
    type Output = usize;

    fn num_players(&self) -> usize {
        self.tree.num_players()
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        match self.tree.node(self.walk(board)) {
            Node::Leaf { .. } => None,
            Node::Internal { speaker, .. } => Some(*speaker),
        }
    }

    fn message(
        &self,
        player: PlayerId,
        input: &bool,
        board: &Board,
        rng: &mut dyn RngCore,
    ) -> BitVec {
        match self.tree.node(self.walk(board)) {
            Node::Leaf { .. } => panic!("asked to speak at a leaf"),
            Node::Internal { speaker, edges } => {
                assert_eq!(*speaker, player, "wrong player asked to speak");
                let weights: Vec<f64> = edges.iter().map(|e| e.prob[usize::from(*input)]).collect();
                let d = Dist::from_weights(weights).expect("edge probabilities");
                edges[d.sample(rng)].label.clone()
            }
        }
    }

    fn output(&self, board: &Board) -> usize {
        match self.tree.node(self.walk(board)) {
            Node::Leaf { output } => *output,
            Node::Internal { .. } => panic!("output requested before the protocol halted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::run;
    use crate::tree::TreeBuilder;
    use rand::{Rng, SeedableRng};

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    /// A randomized 2-player tree with multi-bit labels.
    fn noisy_tree() -> ProtocolTree {
        let mut b = TreeBuilder::new(2);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let l2 = b.leaf(0);
        let p1 = b.internal(
            1,
            vec![
                (BitVec::from_bools(&[false]), [0.8, 0.3], l0),
                (BitVec::from_bools(&[true]), [0.2, 0.7], l1),
            ],
        );
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false, false]), [0.6, 0.1], l2),
                (BitVec::from_bools(&[true]), [0.4, 0.9], p1),
            ],
        );
        b.finish(root)
    }

    #[test]
    fn executed_transcripts_match_exact_distribution() {
        let tree = noisy_tree();
        let p = TreeProtocol::new(&tree);
        let mut r = rng(1);
        for x in [[false, false], [true, false], [false, true], [true, true]] {
            let exact = tree.transcript_dist_given_input(&x);
            let trials = 40_000;
            let mut counts = vec![0usize; tree.leaves().len()];
            for _ in 0..trials {
                let exec = run(&p, &x, &mut r);
                // Identify the leaf by re-simulating the walk.
                let leaf_node = p.walk(&exec.board);
                let idx = tree
                    .leaves()
                    .iter()
                    .position(|l| l.node == leaf_node)
                    .expect("halted at a leaf");
                counts[idx] += 1;
                assert_eq!(exec.output, tree.leaves()[idx].output);
                assert_eq!(exec.bits_written, tree.leaves()[idx].path_bits);
            }
            for (i, &c) in counts.iter().enumerate() {
                let freq = c as f64 / trials as f64;
                assert!(
                    (freq - exact[i]).abs() < 0.012,
                    "input {x:?} leaf {i}: {freq} vs {}",
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn board_determines_speaker_schedule() {
        let tree = noisy_tree();
        let p = TreeProtocol::new(&tree);
        let mut r = rng(2);
        for _ in 0..100 {
            let x = [r.random_bool(0.5), r.random_bool(0.5)];
            let exec = run(&p, &x, &mut r);
            // Replay: at each prefix next_speaker matches what happened.
            let mut replay = Board::new();
            for m in exec.board.messages() {
                assert_eq!(p.next_speaker(&replay), Some(m.speaker));
                replay.write(m.speaker, m.bits.clone());
            }
            assert_eq!(p.next_speaker(&replay), None);
        }
    }

    #[test]
    #[should_panic(expected = "matches no edge label")]
    fn foreign_boards_are_rejected() {
        let tree = noisy_tree();
        let p = TreeProtocol::new(&tree);
        let mut bad = Board::new();
        bad.write(0, BitVec::from_bools(&[false, true])); // not a label
        p.next_speaker(&bad);
    }
}
