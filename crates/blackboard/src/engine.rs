//! The sans-io turn engine: one protocol state machine for every driver.
//!
//! The paper's broadcast model is a pure state machine — the board alone
//! determines the next speaker — yet historically each transport in this
//! repo re-implemented the turn-drive loop: the serial runner, the two
//! in-process fabric transports, the v1 TCP coordinator, and the mux
//! daemon's park/resume table. [`TurnEngine`] extracts that loop into one
//! place with **no I/O, no threads, and no clocks** inside:
//!
//! * [`TurnEngine::poll`] asks the protocol whose turn it is and returns a
//!   [`Step`]: either a [`Grant`] (speaker + turn number + the parked
//!   session-RNG state, when the engine holds one) or [`Step::Halted`].
//! * The *driver* performs the granted turn wherever it likes — on the
//!   calling thread, on a player thread, or on the far side of a TCP
//!   socket — and hands the written bits (plus the post-message RNG
//!   state) back via [`TurnEngine::apply`].
//!
//! The engine owns the board, the turn cursor, the serialized
//! [`STATE_LEN`]-byte ChaCha8 session-RNG state between turns, the
//! runaway step guard, and bits-written accounting. Everything a protocol
//! can do wrong — naming an out-of-range speaker, never halting, a reply
//! without an outstanding grant, the wrong speaker replying, a malformed
//! RNG state — is a structured [`ProtocolViolation`] whose `Display` is
//! the canonical abort-reason string shared by every transport, so the
//! fabric's `SessionOutcome` taxonomy is populated identically no matter
//! which driver detected the violation.
//!
//! # Determinism
//!
//! Because the engine serializes writes (one outstanding grant at a time)
//! and the RNG state makes the round trip through the speaking player,
//! every driver consumes the randomness stream in the same order and
//! produces **bit-identical transcripts** for the same seed. The
//! driver-equivalence gate (`crates/mux/tests/driver_equivalence.rs`)
//! asserts this across all five drivers.
//!
//! # Example: a serial driver
//!
//! ```
//! use bci_blackboard::engine::{Step, TurnEngine};
//! use bci_blackboard::protocol::Protocol;
//! use bci_blackboard::board::Board;
//! use bci_encoding::bitio::BitVec;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! struct Echo;
//! impl Protocol for Echo {
//!     type Input = bool;
//!     type Output = usize;
//!     fn num_players(&self) -> usize { 2 }
//!     fn next_speaker(&self, board: &Board) -> Option<usize> {
//!         (board.messages().len() < 2).then_some(board.messages().len())
//!     }
//!     fn message(&self, _p: usize, input: &bool, _b: &Board,
//!                _rng: &mut dyn rand::RngCore) -> BitVec {
//!         BitVec::from_bools(&[*input])
//!     }
//!     fn output(&self, board: &Board) -> usize { board.total_bits() }
//! }
//!
//! let protocol = Echo;
//! let inputs = [true, false];
//! let rng = ChaCha8Rng::seed_from_u64(7);
//! let mut engine = TurnEngine::with_rng(&protocol, inputs.len(), &rng).unwrap();
//! loop {
//!     match engine.poll().unwrap() {
//!         Step::Grant(grant) => {
//!             let mut rng = grant.resume_rng();
//!             let bits = protocol.message(grant.speaker, &inputs[grant.speaker],
//!                                         engine.board(), &mut rng);
//!             engine.apply(grant.speaker, bits, Some(&rng.state_bytes())).unwrap();
//!         }
//!         Step::Halted => break,
//!     }
//! }
//! assert_eq!(engine.output(), 2);
//! assert_eq!(engine.bits_written(), 2);
//! ```

use std::fmt;

use bci_encoding::bitio::BitVec;
use rand_chacha::{ChaCha8Rng, STATE_LEN};

use crate::board::Board;
use crate::protocol::{Protocol, MAX_STEPS};
use crate::PlayerId;

/// What the engine asks its driver to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// A turn is granted: the driver must have `speaker` compute its
    /// message and hand the bits back via [`TurnEngine::apply`].
    Grant(Grant),
    /// The protocol halted; the board is final and
    /// [`TurnEngine::output`] is defined.
    Halted,
}

/// One granted turn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The player whose turn it is.
    pub speaker: PlayerId,
    /// Zero-based turn number (== board writes so far).
    pub turn: usize,
    /// The serialized session-RNG state the speaker must resume from,
    /// when the engine holds the RNG (engines built with
    /// [`TurnEngine::with_rng`]). `None` for external-RNG engines
    /// ([`TurnEngine::new`]), where the driver owns the random source.
    pub rng_state: Option<[u8; STATE_LEN]>,
}

impl Grant {
    /// Resumes the session RNG from the grant's serialized state.
    ///
    /// # Panics
    ///
    /// Panics if the engine was built without an RNG
    /// ([`TurnEngine::new`]); external-RNG drivers bring their own.
    pub fn resume_rng(&self) -> ChaCha8Rng {
        let state = self
            .rng_state
            .as_ref()
            .expect("grant carries no RNG state (external-RNG engine)");
        ChaCha8Rng::from_state_bytes(state)
    }
}

/// A violation of the protocol/driver contract, detected by the engine.
///
/// The `Display` impl renders the canonical abort-reason string used
/// across every transport, so mapping a violation onto the fabric's
/// `SessionOutcome::Aborted` (or a panic, for the serial runner) yields
/// identical wording no matter which driver caught it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolViolation {
    /// The driver supplied a different number of inputs than the
    /// protocol has players.
    InputCount {
        /// `Protocol::num_players()`.
        expected: usize,
        /// Inputs the driver supplied.
        got: usize,
    },
    /// `next_speaker` named a player outside `0..num_players`.
    SpeakerOutOfRange {
        /// The out-of-range speaker.
        speaker: PlayerId,
        /// Roster size `k`.
        players: usize,
    },
    /// The protocol did not halt within the step budget.
    Runaway {
        /// The configured cap ([`TurnEngine::with_max_steps`]).
        max_steps: usize,
    },
    /// [`TurnEngine::apply`] was called with no grant outstanding.
    ReplyWithoutGrant {
        /// The player that replied.
        speaker: PlayerId,
    },
    /// A different player replied than the one holding the grant.
    WrongSpeaker {
        /// The player holding the outstanding grant.
        granted: PlayerId,
        /// The player that actually replied.
        speaker: PlayerId,
    },
    /// The reply's serialized RNG state was missing or malformed.
    BadRngState {
        /// The replying player.
        speaker: PlayerId,
        /// Length of the state supplied (`!= STATE_LEN`).
        len: usize,
    },
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolViolation::InputCount { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            ProtocolViolation::SpeakerOutOfRange { speaker, players } => {
                write!(f, "protocol named speaker {speaker} of {players}")
            }
            ProtocolViolation::Runaway { max_steps } => {
                write!(f, "protocol exceeded {max_steps} turns")
            }
            ProtocolViolation::ReplyWithoutGrant { speaker } => {
                write!(f, "player {speaker} replied without an outstanding grant")
            }
            ProtocolViolation::WrongSpeaker { granted, speaker } => {
                write!(f, "player {speaker} replied on player {granted}'s grant")
            }
            ProtocolViolation::BadRngState { speaker, .. } => {
                write!(f, "player {speaker} returned a bad RNG state")
            }
        }
    }
}

impl std::error::Error for ProtocolViolation {}

/// Where the session RNG lives right now.
#[derive(Debug, Clone)]
enum RngSlot {
    /// The driver owns the random source; the engine never sees it.
    External,
    /// Parked in the engine between turns.
    Parked([u8; STATE_LEN]),
    /// Out with the granted speaker. The copy lets [`TurnEngine::poll`]
    /// re-issue an identical grant (idempotence), e.g. for a
    /// reconnect-and-regrant driver.
    Lent([u8; STATE_LEN]),
}

/// The sans-io protocol state machine driving one session.
///
/// See the [module docs](self) for the contract and an example driver.
pub struct TurnEngine<'p, P: Protocol> {
    protocol: &'p P,
    board: Board,
    rng: RngSlot,
    steps: usize,
    max_steps: usize,
    granted: Option<PlayerId>,
    halted: bool,
}

// Manual impls: a derive would demand `P: Debug` / `P: Clone`, but the
// engine only holds `&P`.
impl<P: Protocol> fmt::Debug for TurnEngine<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TurnEngine")
            .field("board", &self.board)
            .field("rng", &self.rng)
            .field("steps", &self.steps)
            .field("max_steps", &self.max_steps)
            .field("granted", &self.granted)
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> Clone for TurnEngine<'_, P> {
    fn clone(&self) -> Self {
        TurnEngine {
            protocol: self.protocol,
            board: self.board.clone(),
            rng: self.rng.clone(),
            steps: self.steps,
            max_steps: self.max_steps,
            granted: self.granted,
            halted: self.halted,
        }
    }
}

impl<'p, P: Protocol> TurnEngine<'p, P> {
    /// An engine whose driver owns the random source (grants carry no
    /// RNG state). Used by the serial runner, whose public API accepts
    /// any `&mut dyn RngCore`.
    ///
    /// # Errors
    ///
    /// [`ProtocolViolation::InputCount`] if `input_count` differs from
    /// `protocol.num_players()`.
    pub fn new(protocol: &'p P, input_count: usize) -> Result<Self, ProtocolViolation> {
        Self::build(protocol, input_count, RngSlot::External)
    }

    /// An engine that parks the serialized ChaCha8 session-RNG state
    /// between turns and ships it inside every [`Grant`] — the discipline
    /// all transports share.
    ///
    /// # Errors
    ///
    /// [`ProtocolViolation::InputCount`] if `input_count` differs from
    /// `protocol.num_players()`.
    pub fn with_rng(
        protocol: &'p P,
        input_count: usize,
        rng: &ChaCha8Rng,
    ) -> Result<Self, ProtocolViolation> {
        Self::build(protocol, input_count, RngSlot::Parked(rng.state_bytes()))
    }

    fn build(protocol: &'p P, input_count: usize, rng: RngSlot) -> Result<Self, ProtocolViolation> {
        let expected = protocol.num_players();
        if input_count != expected {
            return Err(ProtocolViolation::InputCount {
                expected,
                got: input_count,
            });
        }
        Ok(TurnEngine {
            protocol,
            board: Board::new(),
            rng,
            steps: 0,
            max_steps: MAX_STEPS,
            granted: None,
            halted: false,
        })
    }

    /// Overrides the runaway guard (default
    /// [`MAX_STEPS`]). Networked coordinators thread their
    /// deployment's cap through here so a buggy non-terminating
    /// protocol aborts instead of spinning a session forever.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Advances the state machine: grants the next turn, re-issues the
    /// outstanding grant (polling is idempotent), or reports the halt.
    ///
    /// # Errors
    ///
    /// * [`ProtocolViolation::SpeakerOutOfRange`] — `next_speaker` named
    ///   a player `>= num_players`;
    /// * [`ProtocolViolation::Runaway`] — the step budget is exhausted
    ///   and the protocol still wants to speak.
    pub fn poll(&mut self) -> Result<Step, ProtocolViolation> {
        if self.halted {
            return Ok(Step::Halted);
        }
        if let Some(speaker) = self.granted {
            return Ok(Step::Grant(self.issue(speaker)));
        }
        match self.protocol.next_speaker(&self.board) {
            None => {
                self.halted = true;
                Ok(Step::Halted)
            }
            Some(speaker) if speaker >= self.protocol.num_players() => {
                Err(ProtocolViolation::SpeakerOutOfRange {
                    speaker,
                    players: self.protocol.num_players(),
                })
            }
            Some(_) if self.steps >= self.max_steps => Err(ProtocolViolation::Runaway {
                max_steps: self.max_steps,
            }),
            Some(speaker) => {
                self.granted = Some(speaker);
                if let RngSlot::Parked(state) = self.rng {
                    self.rng = RngSlot::Lent(state);
                }
                Ok(Step::Grant(self.issue(speaker)))
            }
        }
    }

    fn issue(&self, speaker: PlayerId) -> Grant {
        Grant {
            speaker,
            turn: self.steps,
            rng_state: match self.rng {
                RngSlot::External => None,
                RngSlot::Parked(state) | RngSlot::Lent(state) => Some(state),
            },
        }
    }

    /// Applies the granted speaker's reply: writes `bits` on the board,
    /// re-parks the returned RNG state, and advances the turn cursor.
    ///
    /// `rng_state` must be the speaker's post-message serialized state
    /// for engines built with [`with_rng`](Self::with_rng); external-RNG
    /// engines ignore it.
    ///
    /// # Errors
    ///
    /// * [`ProtocolViolation::ReplyWithoutGrant`] — no grant outstanding;
    /// * [`ProtocolViolation::WrongSpeaker`] — `speaker` is not the
    ///   granted player;
    /// * [`ProtocolViolation::BadRngState`] — the engine parks the RNG
    ///   but the reply's state is missing or not [`STATE_LEN`] bytes.
    pub fn apply(
        &mut self,
        speaker: PlayerId,
        bits: BitVec,
        rng_state: Option<&[u8]>,
    ) -> Result<(), ProtocolViolation> {
        let Some(granted) = self.granted else {
            return Err(ProtocolViolation::ReplyWithoutGrant { speaker });
        };
        if speaker != granted {
            return Err(ProtocolViolation::WrongSpeaker { granted, speaker });
        }
        if let RngSlot::Lent(_) = self.rng {
            let state: [u8; STATE_LEN] = match rng_state {
                Some(bytes) => match bytes.try_into() {
                    Ok(state) => state,
                    Err(_) => {
                        return Err(ProtocolViolation::BadRngState {
                            speaker,
                            len: bytes.len(),
                        })
                    }
                },
                None => return Err(ProtocolViolation::BadRngState { speaker, len: 0 }),
            };
            self.rng = RngSlot::Parked(state);
        }
        self.granted = None;
        self.board.write(speaker, bits);
        self.steps += 1;
        Ok(())
    }

    /// The protocol this engine drives.
    pub fn protocol(&self) -> &'p P {
        self.protocol
    }

    /// The board (= the transcript so far).
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// Turn cursor: board writes applied so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Total bits written — the communication cost so far.
    pub fn bits_written(&self) -> usize {
        self.board.total_bits()
    }

    /// The player holding an outstanding grant, if any.
    pub fn granted(&self) -> Option<PlayerId> {
        self.granted
    }

    /// `true` once [`poll`](Self::poll) has observed the halt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The parked session-RNG state, when the engine holds one and no
    /// grant is outstanding. Lets a driver snapshot a session mid-run.
    pub fn rng_state(&self) -> Option<&[u8; STATE_LEN]> {
        match &self.rng {
            RngSlot::Parked(state) => Some(state),
            _ => None,
        }
    }

    /// The protocol's output for the final board.
    ///
    /// Meaningful once the engine halted; on a partial board this is
    /// whatever the protocol makes of it. May panic if the *protocol's*
    /// `output` does — drivers that must contain that wrap this call in
    /// `catch_unwind`.
    pub fn output(&self) -> P::Output {
        self.protocol.output(&self.board)
    }

    /// Consumes the engine, returning the board (for drivers that seal a
    /// session result with the partial transcript).
    pub fn into_board(self) -> Board {
        self.board
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    /// Players 0..k speak one random bit each, in order.
    struct RoundRobin {
        k: usize,
    }

    impl Protocol for RoundRobin {
        type Input = ();
        type Output = usize;

        fn num_players(&self) -> usize {
            self.k
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            (board.messages().len() < self.k).then_some(board.messages().len())
        }

        fn message(
            &self,
            _player: PlayerId,
            _input: &(),
            _board: &Board,
            rng: &mut dyn RngCore,
        ) -> BitVec {
            BitVec::from_bools(&[rng.next_u32() & 1 == 1])
        }

        fn output(&self, board: &Board) -> usize {
            board.total_bits()
        }
    }

    fn drive(engine: &mut TurnEngine<'_, RoundRobin>, inputs: &[()]) {
        while let Step::Grant(grant) = engine.poll().expect("no violation") {
            let mut rng = grant.resume_rng();
            let bits = engine.protocol().message(
                grant.speaker,
                &inputs[grant.speaker],
                engine.board(),
                &mut rng,
            );
            engine
                .apply(grant.speaker, bits, Some(&rng.state_bytes()))
                .expect("apply");
        }
    }

    #[test]
    fn engine_matches_the_serial_runner() {
        let protocol = RoundRobin { k: 5 };
        let inputs = [(); 5];
        for seed in 0..20u64 {
            let serial = {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                crate::protocol::run(&protocol, &inputs, &mut rng)
            };
            let rng = ChaCha8Rng::seed_from_u64(seed);
            let mut engine = TurnEngine::with_rng(&protocol, 5, &rng).unwrap();
            drive(&mut engine, &inputs);
            assert_eq!(engine.board(), &serial.board, "seed {seed}");
            assert_eq!(engine.output(), serial.output);
            assert_eq!(engine.bits_written(), serial.bits_written);
            assert_eq!(engine.steps(), 5);
            assert!(engine.is_halted());
        }
    }

    #[test]
    fn rng_round_trips_through_grants() {
        // The final parked state equals a straight-line run's state: the
        // engine neither loses nor duplicates randomness.
        let protocol = RoundRobin { k: 4 };
        let mut straight = ChaCha8Rng::seed_from_u64(9);
        let board = {
            let mut b = Board::new();
            for p in 0..4 {
                b.write(p, protocol.message(p, &(), &Board::new(), &mut straight));
            }
            b
        };
        let rng = ChaCha8Rng::seed_from_u64(9);
        let mut engine = TurnEngine::with_rng(&protocol, 4, &rng).unwrap();
        drive(&mut engine, &[(); 4]);
        assert_eq!(
            engine.rng_state().expect("parked"),
            &straight.state_bytes(),
            "post-run RNG states diverged"
        );
        assert_eq!(engine.board().total_bits(), board.total_bits());
    }

    #[test]
    fn input_count_is_checked_at_construction() {
        let protocol = RoundRobin { k: 3 };
        let err = TurnEngine::new(&protocol, 2).unwrap_err();
        assert_eq!(
            err,
            ProtocolViolation::InputCount {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(err.to_string(), "expected 3 inputs, got 2");
    }

    #[test]
    fn poll_is_idempotent_while_a_grant_is_outstanding() {
        let protocol = RoundRobin { k: 2 };
        let rng = ChaCha8Rng::seed_from_u64(0);
        let mut engine = TurnEngine::with_rng(&protocol, 2, &rng).unwrap();
        let first = engine.poll().unwrap();
        let again = engine.poll().unwrap();
        assert_eq!(first, again, "re-poll re-issues the same grant");
        let Step::Grant(grant) = first else {
            panic!("expected a grant")
        };
        assert_eq!(grant.speaker, 0);
        assert_eq!(grant.turn, 0);
        assert!(grant.rng_state.is_some());
        assert_eq!(engine.granted(), Some(0));
    }

    #[test]
    fn halted_poll_is_idempotent() {
        struct Silent;
        impl Protocol for Silent {
            type Input = ();
            type Output = ();
            fn num_players(&self) -> usize {
                1
            }
            fn next_speaker(&self, _board: &Board) -> Option<PlayerId> {
                None
            }
            fn message(&self, _p: PlayerId, _i: &(), _b: &Board, _r: &mut dyn RngCore) -> BitVec {
                BitVec::new()
            }
            fn output(&self, _board: &Board) {}
        }
        let mut engine = TurnEngine::new(&Silent, 1).unwrap();
        assert_eq!(engine.poll().unwrap(), Step::Halted);
        assert_eq!(engine.poll().unwrap(), Step::Halted);
        assert!(engine.is_halted());
    }

    #[test]
    fn reply_contract_violations_are_structured() {
        let protocol = RoundRobin { k: 3 };
        let rng = ChaCha8Rng::seed_from_u64(1);
        let mut engine = TurnEngine::with_rng(&protocol, 3, &rng).unwrap();

        // Reply before any grant.
        let err = engine.apply(0, BitVec::new(), None).unwrap_err();
        assert_eq!(err, ProtocolViolation::ReplyWithoutGrant { speaker: 0 });
        assert!(err.to_string().contains("without an outstanding grant"));

        // Wrong speaker replies.
        let Step::Grant(grant) = engine.poll().unwrap() else {
            panic!("grant expected")
        };
        assert_eq!(grant.speaker, 0);
        let err = engine
            .apply(2, BitVec::new(), Some(&[0u8; STATE_LEN]))
            .unwrap_err();
        assert_eq!(
            err,
            ProtocolViolation::WrongSpeaker {
                granted: 0,
                speaker: 2
            }
        );
        assert_eq!(err.to_string(), "player 2 replied on player 0's grant");

        // Malformed RNG state.
        let err = engine
            .apply(0, BitVec::new(), Some(&[1, 2, 3]))
            .unwrap_err();
        assert_eq!(err, ProtocolViolation::BadRngState { speaker: 0, len: 3 });
        assert_eq!(err.to_string(), "player 0 returned a bad RNG state");
        let err = engine.apply(0, BitVec::new(), None).unwrap_err();
        assert_eq!(err, ProtocolViolation::BadRngState { speaker: 0, len: 0 });

        // A good reply still lands after the failed attempts.
        let mut rng = grant.resume_rng();
        let bits = protocol.message(0, &(), engine.board(), &mut rng);
        engine
            .apply(0, bits, Some(&rng.state_bytes()))
            .expect("valid reply");
        assert_eq!(engine.steps(), 1);
    }

    #[test]
    fn out_of_range_speaker_is_a_violation() {
        struct Bad;
        impl Protocol for Bad {
            type Input = ();
            type Output = ();
            fn num_players(&self) -> usize {
                2
            }
            fn next_speaker(&self, _board: &Board) -> Option<PlayerId> {
                Some(7)
            }
            fn message(&self, _p: PlayerId, _i: &(), _b: &Board, _r: &mut dyn RngCore) -> BitVec {
                BitVec::new()
            }
            fn output(&self, _board: &Board) {}
        }
        let mut engine = TurnEngine::new(&Bad, 2).unwrap();
        let err = engine.poll().unwrap_err();
        assert_eq!(
            err,
            ProtocolViolation::SpeakerOutOfRange {
                speaker: 7,
                players: 2
            }
        );
        assert_eq!(err.to_string(), "protocol named speaker 7 of 2");
        // The violation is stable: polling again reports it again.
        assert_eq!(engine.poll().unwrap_err(), err);
    }

    #[test]
    fn runaway_guard_trips_at_the_configured_budget() {
        struct NeverHalts;
        impl Protocol for NeverHalts {
            type Input = ();
            type Output = ();
            fn num_players(&self) -> usize {
                1
            }
            fn next_speaker(&self, _board: &Board) -> Option<PlayerId> {
                Some(0)
            }
            fn message(&self, _p: PlayerId, _i: &(), _b: &Board, _r: &mut dyn RngCore) -> BitVec {
                BitVec::from_bools(&[true])
            }
            fn output(&self, _board: &Board) {}
        }
        let mut engine = TurnEngine::new(&NeverHalts, 1).unwrap().with_max_steps(16);
        let mut applied = 0usize;
        let err = loop {
            match engine.poll() {
                Ok(Step::Grant(grant)) => {
                    engine
                        .apply(grant.speaker, BitVec::from_bools(&[true]), None)
                        .unwrap();
                    applied += 1;
                }
                Ok(Step::Halted) => panic!("NeverHalts halted"),
                Err(v) => break v,
            }
        };
        assert_eq!(applied, 16, "exactly max_steps writes land");
        assert_eq!(err, ProtocolViolation::Runaway { max_steps: 16 });
        assert_eq!(err.to_string(), "protocol exceeded 16 turns");
    }

    #[test]
    fn external_rng_grants_carry_no_state() {
        let protocol = RoundRobin { k: 2 };
        let mut engine = TurnEngine::new(&protocol, 2).unwrap();
        let Step::Grant(grant) = engine.poll().unwrap() else {
            panic!("grant expected")
        };
        assert_eq!(grant.rng_state, None);
        // apply ignores rng_state in external mode.
        engine
            .apply(grant.speaker, BitVec::from_bools(&[true]), None)
            .unwrap();
        assert_eq!(engine.steps(), 1);
        assert_eq!(engine.rng_state(), None);
    }
}
