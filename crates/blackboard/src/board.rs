//! The shared blackboard: an append-only sequence of attributed messages.

use bci_encoding::bitio::BitVec;
use std::fmt;

use crate::PlayerId;

/// One message written on the board: who wrote it and the bits written.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Message {
    /// The player who wrote this message.
    pub speaker: PlayerId,
    /// The message payload.
    pub bits: BitVec,
}

/// The blackboard all players can read for free.
///
/// Append-only: protocols can only [`write`](Board::write), never erase. The
/// board also serves as the protocol *transcript* — equality and hashing are
/// over the full attributed message sequence.
///
/// # Example
///
/// ```
/// use bci_blackboard::board::Board;
/// use bci_encoding::bitio::BitVec;
///
/// let mut board = Board::new();
/// board.write(2, BitVec::from_bools(&[true, false]));
/// board.write(0, BitVec::from_bools(&[true]));
/// assert_eq!(board.total_bits(), 3);
/// assert_eq!(board.messages().len(), 2);
/// assert_eq!(board.messages()[0].speaker, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Board {
    messages: Vec<Message>,
    total_bits: usize,
}

impl Board {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a message from `speaker`.
    pub fn write(&mut self, speaker: PlayerId, bits: BitVec) {
        self.total_bits += bits.len();
        self.messages.push(Message { speaker, bits });
    }

    /// All messages in writing order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Total number of bits written — the communication cost so far.
    pub fn total_bits(&self) -> usize {
        self.total_bits
    }

    /// Number of messages written by `player`.
    pub fn messages_by(&self, player: PlayerId) -> usize {
        self.messages.iter().filter(|m| m.speaker == player).count()
    }

    /// Total bits written by `player` — its share of the communication.
    pub fn bits_by(&self, player: PlayerId) -> usize {
        self.messages
            .iter()
            .filter(|m| m.speaker == player)
            .map(|m| m.bits.len())
            .sum()
    }

    /// The concatenated bits of all messages, without speaker attribution.
    pub fn flat_bits(&self) -> BitVec {
        let mut out = BitVec::with_capacity(self.total_bits);
        for m in &self.messages {
            out.extend_from(&m.bits);
        }
        out
    }

    /// Serializes the board to a self-describing byte format (for shipping
    /// transcripts between processes or persisting experiment artifacts).
    ///
    /// Layout: `u32` message count, then per message `u32` speaker, `u32`
    /// bit length, and the payload bits packed LSB-first into bytes. All
    /// integers little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.total_bits / 8 + 8 * self.messages.len());
        out.extend_from_slice(&(self.messages.len() as u32).to_le_bytes());
        for m in &self.messages {
            out.extend_from_slice(&(m.speaker as u32).to_le_bytes());
            out.extend_from_slice(&(m.bits.len() as u32).to_le_bytes());
            let mut byte = 0u8;
            for (i, bit) in m.bits.iter().enumerate() {
                if bit {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if m.bits.len() % 8 != 0 {
                out.push(byte);
            }
        }
        out
    }

    /// Parses a board serialized by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBoardError`] on truncated or malformed input
    /// (including trailing bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ParseBoardError> {
        fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseBoardError> {
            let end = pos.checked_add(4).ok_or(ParseBoardError)?;
            let slice = bytes.get(*pos..end).ok_or(ParseBoardError)?;
            *pos = end;
            Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
        }
        let mut pos = 0usize;
        let count = take_u32(bytes, &mut pos)? as usize;
        let mut board = Board::new();
        for _ in 0..count {
            let speaker = take_u32(bytes, &mut pos)? as usize;
            let bit_len = take_u32(bytes, &mut pos)? as usize;
            let byte_len = bit_len.div_ceil(8);
            let payload = bytes.get(pos..pos + byte_len).ok_or(ParseBoardError)?;
            pos += byte_len;
            let mut bits = BitVec::with_capacity(bit_len);
            for i in 0..bit_len {
                bits.push(payload[i / 8] >> (i % 8) & 1 == 1);
            }
            board.write(speaker, bits);
        }
        if pos != bytes.len() {
            return Err(ParseBoardError);
        }
        Ok(board)
    }

    /// A compact hashable key identifying this transcript.
    ///
    /// Two boards have equal keys iff they are equal as attributed message
    /// sequences. Useful with
    /// [`FreqTable`](bci_info::estimate::FreqTable).
    pub fn transcript_key(&self) -> String {
        let mut key = String::with_capacity(self.total_bits + 4 * self.messages.len());
        for m in &self.messages {
            key.push_str(&m.speaker.to_string());
            key.push(':');
            for b in m.bits.iter() {
                key.push(if b { '1' } else { '0' });
            }
            key.push(';');
        }
        key
    }
}

/// Error returned by [`Board::from_bytes`] on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBoardError;

impl fmt::Display for ParseBoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truncated or malformed board bytes")
    }
}

impl std::error::Error for ParseBoardError {}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.messages.is_empty() {
            return write!(f, "(empty board)");
        }
        for (i, m) in self.messages.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "P{}→{}", m.speaker, m.bits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board() {
        let b = Board::new();
        assert_eq!(b.total_bits(), 0);
        assert!(b.messages().is_empty());
        assert_eq!(b.to_string(), "(empty board)");
        assert_eq!(b.transcript_key(), "");
    }

    #[test]
    fn write_accumulates_bits() {
        let mut b = Board::new();
        b.write(0, BitVec::from_bools(&[true]));
        b.write(1, BitVec::from_bools(&[false, false, true]));
        b.write(0, BitVec::new()); // zero-bit message is legal
        assert_eq!(b.total_bits(), 4);
        assert_eq!(b.messages().len(), 3);
        assert_eq!(b.messages_by(0), 2);
        assert_eq!(b.messages_by(1), 1);
        assert_eq!(b.messages_by(9), 0);
        assert_eq!(b.bits_by(0), 1);
        assert_eq!(b.bits_by(1), 3);
        assert_eq!(b.bits_by(9), 0);
    }

    #[test]
    fn flat_bits_concatenates() {
        let mut b = Board::new();
        b.write(0, BitVec::from_bools(&[true, false]));
        b.write(1, BitVec::from_bools(&[true]));
        assert_eq!(
            b.flat_bits().iter().collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }

    #[test]
    fn transcript_key_distinguishes_attribution() {
        let mut a = Board::new();
        a.write(0, BitVec::from_bools(&[true]));
        let mut b = Board::new();
        b.write(1, BitVec::from_bools(&[true]));
        assert_ne!(a.transcript_key(), b.transcript_key());
        assert_ne!(a, b);
    }

    #[test]
    fn transcript_key_distinguishes_message_boundaries() {
        // "0:1;0:1;" vs "0:11;" — same flat bits, different transcripts.
        let mut a = Board::new();
        a.write(0, BitVec::from_bools(&[true]));
        a.write(0, BitVec::from_bools(&[true]));
        let mut b = Board::new();
        b.write(0, BitVec::from_bools(&[true, true]));
        assert_eq!(a.flat_bits(), b.flat_bits());
        assert_ne!(a.transcript_key(), b.transcript_key());
    }

    #[test]
    fn bytes_round_trip() {
        let mut b = Board::new();
        b.write(3, BitVec::from_bools(&[true, false, true]));
        b.write(0, BitVec::new());
        b.write(7, BitVec::from_bools(&[false; 17])); // crosses byte bounds
        let bytes = b.to_bytes();
        assert_eq!(Board::from_bytes(&bytes), Ok(b));
    }

    #[test]
    fn empty_board_round_trips() {
        let b = Board::new();
        assert_eq!(Board::from_bytes(&b.to_bytes()), Ok(b));
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert_eq!(Board::from_bytes(&[1, 2]), Err(ParseBoardError)); // short header
                                                                      // Claims one message but no body.
        assert_eq!(Board::from_bytes(&1u32.to_le_bytes()), Err(ParseBoardError));
        // Trailing garbage.
        let mut b = Board::new();
        b.write(0, BitVec::from_bools(&[true]));
        let mut bytes = b.to_bytes();
        bytes.push(0xFF);
        assert_eq!(Board::from_bytes(&bytes), Err(ParseBoardError));
        // Error type displays.
        assert!(ParseBoardError.to_string().contains("malformed"));
    }

    #[test]
    fn display_shows_speakers() {
        let mut b = Board::new();
        b.write(3, BitVec::from_bools(&[true, false]));
        assert_eq!(b.to_string(), "P3→10");
    }
}
