//! Protocol trees over arbitrary finite input alphabets.
//!
//! [`ProtocolTree`](crate::tree::ProtocolTree) fixes one-bit inputs — enough
//! for the paper's `AND_k` analysis. This generalization lets player `i`
//! hold a symbol from an alphabet of size `aᵢ`, so protocols whose inputs
//! are *sets* (e.g. `DISJ_{n,k}` with alphabet `2ⁿ` for small `n`) get the
//! same exact machinery: the Lemma 3 decomposition
//! `Pr[Π = ℓ | X] = ∏ᵢ q_{i,Xᵢ}^ℓ` with `q` now indexed by symbol, product
//! posteriors, and factorized exact information cost in
//! `O(#leaves · Σᵢ aᵢ)`.

use bci_encoding::bitio::BitVec;
use bci_info::dist::Dist;
use bci_info::num::{clamp_nonneg, xlog2_ratio};

use crate::PlayerId;

/// Index of a node inside a [`GeneralTree`].
pub type NodeId = usize;

/// An outgoing edge: a board message with per-symbol probabilities.
#[derive(Debug, Clone)]
pub struct GeneralEdge {
    /// The bits written for this branch.
    pub label: BitVec,
    /// `prob[s] = Pr[this message | speaker's symbol = s]`.
    pub prob: Vec<f64>,
    /// Destination node.
    pub child: NodeId,
}

/// A node of the generalized tree.
#[derive(Debug, Clone)]
pub enum GeneralNode {
    /// Halt with an output.
    Leaf {
        /// The output value.
        output: usize,
    },
    /// A speaking turn.
    Internal {
        /// The speaking player.
        speaker: PlayerId,
        /// The message alternatives.
        edges: Vec<GeneralEdge>,
    },
}

/// Precomputed leaf data: output, path length, and per-player per-symbol
/// `q` factors.
#[derive(Debug, Clone)]
pub struct GeneralLeaf {
    /// The tree node of this leaf.
    pub node: NodeId,
    /// Output at this leaf.
    pub output: usize,
    /// Label bits on the root-to-leaf path.
    pub path_bits: usize,
    /// `q[i][s]`: product of player `i`'s branch probabilities on the path
    /// when holding symbol `s`.
    q: Vec<Vec<f64>>,
}

impl GeneralLeaf {
    /// The Lemma 3 factor `q_{i,s}`.
    pub fn q(&self, player: PlayerId, symbol: usize) -> f64 {
        self.q[player][symbol]
    }

    /// `Pr[Π(x) = ℓ]` for a concrete symbol vector.
    pub fn prob_given_input(&self, x: &[usize]) -> f64 {
        debug_assert_eq!(x.len(), self.q.len());
        x.iter().zip(&self.q).map(|(&s, q)| q[s]).product()
    }

    /// `Pr[Π = ℓ]` under independent per-player symbol distributions.
    pub fn prob_under_product(&self, priors: &[Dist]) -> f64 {
        debug_assert_eq!(priors.len(), self.q.len());
        priors
            .iter()
            .zip(&self.q)
            .map(|(d, q)| d.probs().iter().zip(q).map(|(&p, &qq)| p * qq).sum::<f64>())
            .product()
    }
}

/// Builder for [`GeneralTree`]; mirrors
/// [`TreeBuilder`](crate::tree::TreeBuilder).
#[derive(Debug)]
pub struct GeneralTreeBuilder {
    alphabets: Vec<usize>,
    nodes: Vec<GeneralNode>,
}

impl GeneralTreeBuilder {
    /// Starts a tree where player `i`'s input ranges over
    /// `{0, …, alphabets[i]−1}`.
    ///
    /// # Panics
    ///
    /// Panics if there are no players or an alphabet is empty.
    pub fn new(alphabets: Vec<usize>) -> Self {
        assert!(!alphabets.is_empty(), "need at least one player");
        assert!(
            alphabets.iter().all(|&a| a >= 1),
            "alphabets must be nonempty"
        );
        GeneralTreeBuilder {
            alphabets,
            nodes: Vec::new(),
        }
    }

    /// Adds a leaf.
    pub fn leaf(&mut self, output: usize) -> NodeId {
        self.nodes.push(GeneralNode::Leaf { output });
        self.nodes.len() - 1
    }

    /// Adds an internal node; `edges` are `(label, per-symbol probs, child)`.
    ///
    /// # Panics
    ///
    /// Panics on invalid speaker, wrong probability-vector lengths,
    /// unnormalized columns, unknown children, or non-prefix-free labels.
    pub fn internal(
        &mut self,
        speaker: PlayerId,
        edges: Vec<(BitVec, Vec<f64>, NodeId)>,
    ) -> NodeId {
        assert!(
            speaker < self.alphabets.len(),
            "speaker {speaker} out of range"
        );
        assert!(!edges.is_empty(), "internal node needs an edge");
        let a = self.alphabets[speaker];
        for (label, prob, child) in &edges {
            assert_eq!(prob.len(), a, "probabilities must cover the alphabet");
            assert!(
                prob.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)),
                "probability outside [0,1]"
            );
            assert!(*child < self.nodes.len(), "unknown child {child}");
            assert!(
                !(label.is_empty() && edges.len() > 1),
                "empty label on a branching node"
            );
        }
        for s in 0..a {
            let total: f64 = edges.iter().map(|(_, p, _)| p[s]).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "symbol {s}: edge probabilities sum to {total}"
            );
        }
        for (i, (x, _, _)) in edges.iter().enumerate() {
            for (y, _, _) in edges.iter().skip(i + 1) {
                let min = x.len().min(y.len());
                assert!(
                    !(0..min).all(|j| x.get(j) == y.get(j)),
                    "labels {x} and {y} are not prefix-free"
                );
            }
        }
        self.nodes.push(GeneralNode::Internal {
            speaker,
            edges: edges
                .into_iter()
                .map(|(label, prob, child)| GeneralEdge { label, prob, child })
                .collect(),
        });
        self.nodes.len() - 1
    }

    /// Finalizes the tree rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is unknown or the structure is not a tree.
    pub fn finish(self, root: NodeId) -> GeneralTree {
        assert!(root < self.nodes.len(), "unknown root");
        let mut visited = vec![false; self.nodes.len()];
        let mut leaves = Vec::new();
        let init_q: Vec<Vec<f64>> = self.alphabets.iter().map(|&a| vec![1.0; a]).collect();
        let mut stack = vec![(root, 0usize, init_q)];
        while let Some((id, path_bits, q)) = stack.pop() {
            assert!(!visited[id], "node {id} reachable twice");
            visited[id] = true;
            match &self.nodes[id] {
                GeneralNode::Leaf { output } => leaves.push(GeneralLeaf {
                    node: id,
                    output: *output,
                    path_bits,
                    q,
                }),
                GeneralNode::Internal { speaker, edges } => {
                    for e in edges {
                        let mut q2 = q.clone();
                        for (qs, &ps) in q2[*speaker].iter_mut().zip(&e.prob) {
                            *qs *= ps;
                        }
                        stack.push((e.child, path_bits + e.label.len(), q2));
                    }
                }
            }
        }
        GeneralTree {
            alphabets: self.alphabets,
            nodes: self.nodes,
            root,
            leaves,
        }
    }
}

/// A finalized generalized protocol tree.
#[derive(Debug, Clone)]
pub struct GeneralTree {
    alphabets: Vec<usize>,
    nodes: Vec<GeneralNode>,
    root: NodeId,
    leaves: Vec<GeneralLeaf>,
}

impl GeneralTree {
    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.alphabets.len()
    }

    /// Per-player alphabet sizes.
    pub fn alphabets(&self) -> &[usize] {
        &self.alphabets
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &GeneralNode {
        &self.nodes[id]
    }

    /// The leaves with precomputed `q` factors.
    pub fn leaves(&self) -> &[GeneralLeaf] {
        &self.leaves
    }

    /// Worst-case communication in bits.
    pub fn worst_case_bits(&self) -> usize {
        self.leaves.iter().map(|l| l.path_bits).max().unwrap_or(0)
    }

    /// The exact transcript distribution on a symbol vector.
    pub fn transcript_dist_given_input(&self, x: &[usize]) -> Vec<f64> {
        assert_eq!(x.len(), self.num_players(), "input length mismatch");
        for (i, (&s, &a)) in x.iter().zip(&self.alphabets).enumerate() {
            assert!(s < a, "symbol {s} outside player {i}'s alphabet");
        }
        self.leaves.iter().map(|l| l.prob_given_input(x)).collect()
    }

    /// Exact `I(Π; X)` under independent per-player symbol distributions —
    /// the general-alphabet form of the factorized computation.
    ///
    /// # Panics
    ///
    /// Panics if a prior's support does not match its player's alphabet.
    pub fn information_cost_product(&self, priors: &[Dist]) -> f64 {
        assert_eq!(priors.len(), self.num_players(), "prior count mismatch");
        for (d, &a) in priors.iter().zip(&self.alphabets) {
            assert_eq!(d.len(), a, "prior support does not match alphabet");
        }
        let mut total = 0.0;
        for leaf in &self.leaves {
            let pl = leaf.prob_under_product(priors);
            if pl <= 0.0 {
                continue;
            }
            let mut div = 0.0;
            for (i, prior) in priors.iter().enumerate() {
                // Posterior over player i's symbol given this leaf.
                let mass: f64 = prior
                    .probs()
                    .iter()
                    .zip(&leaf.q[i])
                    .map(|(&p, &q)| p * q)
                    .sum();
                debug_assert!(mass > 0.0);
                for (s, &p) in prior.probs().iter().enumerate() {
                    let post = p * leaf.q[i][s] / mass;
                    div += xlog2_ratio(post, p);
                }
            }
            total += pl * div;
        }
        clamp_nonneg(total, 1e-9)
    }

    /// Samples one execution on symbol vector `x`: returns the leaf index
    /// and the transcript bits.
    pub fn simulate<R: rand::Rng + ?Sized>(&self, x: &[usize], rng: &mut R) -> (usize, BitVec) {
        assert_eq!(x.len(), self.num_players(), "input length mismatch");
        let mut bits = BitVec::new();
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                GeneralNode::Leaf { .. } => {
                    let idx = self
                        .leaves
                        .iter()
                        .position(|l| l.node == id)
                        .expect("leaf registered");
                    return (idx, bits);
                }
                GeneralNode::Internal { speaker, edges } => {
                    let s = x[*speaker];
                    let d = Dist::from_weights(edges.iter().map(|e| e.prob[s]).collect())
                        .expect("edge probabilities");
                    let choice = d.sample(rng);
                    bits.extend_from(&edges[choice].label);
                    id = edges[choice].child;
                }
            }
        }
    }

    /// Exact `I(Π; X)` by enumerating the full joint input space; for
    /// cross-validation only.
    ///
    /// # Panics
    ///
    /// Panics if `∏ alphabets > 4096`.
    pub fn information_cost_bruteforce(&self, priors: &[Dist]) -> f64 {
        let space: usize = self.alphabets.iter().product();
        assert!(space <= 4096, "joint input space {space} too large");
        let mut rows = Vec::with_capacity(space);
        for idx in 0..space {
            let mut rest = idx;
            let x: Vec<usize> = self
                .alphabets
                .iter()
                .map(|&a| {
                    let s = rest % a;
                    rest /= a;
                    s
                })
                .collect();
            let px: f64 = x.iter().zip(priors).map(|(&s, d)| d.prob(s)).product();
            rows.push(
                self.transcript_dist_given_input(&x)
                    .into_iter()
                    .map(|p| px * p)
                    .collect(),
            );
        }
        bci_info::joint::Joint2::new(rows)
            .expect("joint distribution")
            .mutual_information()
    }
}

/// Converts a binary [`ProtocolTree`](crate::tree::ProtocolTree) into the
/// generalized form (alphabet 2 for every player) — used to cross-validate
/// the two implementations.
pub fn from_binary(tree: &crate::tree::ProtocolTree) -> GeneralTree {
    use crate::tree::Node;
    let k = tree.num_players();
    let mut b = GeneralTreeBuilder::new(vec![2; k]);
    // Rebuild bottom-up with a node-id map via DFS post-order.
    fn convert(tree: &crate::tree::ProtocolTree, id: usize, b: &mut GeneralTreeBuilder) -> NodeId {
        match tree.node(id) {
            Node::Leaf { output } => b.leaf(*output),
            Node::Internal { speaker, edges } => {
                let converted: Vec<(BitVec, Vec<f64>, NodeId)> = edges
                    .iter()
                    .map(|e| {
                        let child = convert(tree, e.child, b);
                        (e.label.clone(), vec![e.prob[0], e.prob[1]], child)
                    })
                    .collect();
                b.internal(*speaker, converted)
            }
        }
    }
    let root = convert(tree, tree.root(), &mut b);
    b.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeBuilder;

    fn bit(v: bool) -> BitVec {
        BitVec::from_bools(&[v])
    }

    /// A 1-player protocol announcing a trit in ⌈log₂3⌉ = 2 bits.
    fn trit_announce() -> GeneralTree {
        let mut b = GeneralTreeBuilder::new(vec![3]);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let l2 = b.leaf(2);
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false, false]), vec![1.0, 0.0, 0.0], l0),
                (BitVec::from_bools(&[false, true]), vec![0.0, 1.0, 0.0], l1),
                (bit(true), vec![0.0, 0.0, 1.0], l2),
            ],
        );
        b.finish(root)
    }

    #[test]
    fn deterministic_announcement_reveals_the_entropy() {
        let t = trit_announce();
        let prior = Dist::new(vec![0.5, 0.25, 0.25]).unwrap();
        let ic = t.information_cost_product(std::slice::from_ref(&prior));
        assert!((ic - prior.entropy()).abs() < 1e-12);
        let bf = t.information_cost_bruteforce(&[prior]);
        assert!((ic - bf).abs() < 1e-12);
    }

    #[test]
    fn factorized_matches_bruteforce_on_randomized_general_trees() {
        // 2 players, alphabets (3, 2), randomized messages.
        let mut b = GeneralTreeBuilder::new(vec![3, 2]);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let p1 = b.internal(
            1,
            vec![
                (bit(false), vec![0.7, 0.4], l0),
                (bit(true), vec![0.3, 0.6], l1),
            ],
        );
        let l2 = b.leaf(0);
        let root = b.internal(
            0,
            vec![
                (bit(false), vec![0.9, 0.5, 0.2], l2),
                (bit(true), vec![0.1, 0.5, 0.8], p1),
            ],
        );
        let t = b.finish(root);
        let priors = [
            Dist::new(vec![0.2, 0.5, 0.3]).unwrap(),
            Dist::new(vec![0.6, 0.4]).unwrap(),
        ];
        let fast = t.information_cost_product(&priors);
        let slow = t.information_cost_bruteforce(&priors);
        assert!((fast - slow).abs() < 1e-10, "{fast} vs {slow}");
        assert!(fast > 0.0);
    }

    #[test]
    fn binary_conversion_preserves_information_cost() {
        // Build a binary tree, convert, compare costs.
        let mut b = TreeBuilder::new(2);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let p1 = b.internal(
            1,
            vec![(bit(false), [0.8, 0.25], l0), (bit(true), [0.2, 0.75], l1)],
        );
        let l2 = b.leaf(0);
        let root = b.internal(
            0,
            vec![(bit(false), [0.6, 0.1], l2), (bit(true), [0.4, 0.9], p1)],
        );
        let binary = b.finish(root);
        let general = from_binary(&binary);
        for (p0, p1) in [(0.5, 0.5), (0.8, 0.3)] {
            let a = binary.information_cost_product(&[p0, p1]);
            let g = general.information_cost_product(&[
                Dist::bernoulli(p0).unwrap(),
                Dist::bernoulli(p1).unwrap(),
            ]);
            assert!((a - g).abs() < 1e-12, "({p0},{p1}): {a} vs {g}");
        }
        assert_eq!(binary.worst_case_bits(), general.worst_case_bits());
    }

    #[test]
    fn transcript_distributions_normalize() {
        let t = trit_announce();
        for s in 0..3 {
            let d = t.transcript_dist_given_input(&[s]);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn simulate_matches_exact_distribution() {
        use rand::SeedableRng;
        let t = trit_announce();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        for s in 0..3usize {
            let exact = t.transcript_dist_given_input(&[s]);
            let mut counts = vec![0usize; t.leaves().len()];
            for _ in 0..2000 {
                let (leaf, bits) = t.simulate(&[s], &mut rng);
                counts[leaf] += 1;
                assert_eq!(bits.len(), t.leaves()[leaf].path_bits);
            }
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64 / 2000.0 - exact[i]).abs() < 0.03,
                    "symbol {s} leaf {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside player")]
    fn rejects_out_of_alphabet_symbols() {
        trit_announce().transcript_dist_given_input(&[3]);
    }

    #[test]
    #[should_panic(expected = "cover the alphabet")]
    fn builder_checks_probability_vector_length() {
        let mut b = GeneralTreeBuilder::new(vec![3]);
        let l = b.leaf(0);
        b.internal(0, vec![(bit(true), vec![1.0, 1.0], l)]);
    }
}
