#![warn(missing_docs)]

//! The k-party broadcast (shared blackboard) communication model.
//!
//! The model, following Section 3 of the paper: `k` players each hold a
//! private input and communicate by writing messages on a shared blackboard
//! that everyone reads for free. At every point, *the current contents of the
//! board determine whose turn it is to speak*; the speaker produces a message
//! from its own input, its private randomness, and the board; the protocol
//! halts when the board determines an output.
//!
//! Two complementary representations of a protocol live here:
//!
//! * [`protocol::Protocol`] — an *executable* protocol: arbitrary input
//!   types, real bit-level messages, run on concrete inputs by
//!   [`runner`]. Used by the upper-bound experiments, where inputs are sets
//!   over `[n]` and communication is counted on real encodings.
//! * [`tree::ProtocolTree`] — a protocol *tree* over one-bit inputs, with an
//!   explicit message distribution at every node. Supports exact computation
//!   of the transcript distribution, the Lemma-3 product decomposition
//!   `Pr[Π = ℓ | X] = ∏ᵢ q_{i,Xᵢ}^ℓ`, and exact (conditional) information
//!   cost. Used by all lower-bound and compression experiments.
//!
//! # Example: running a protocol
//!
//! ```
//! use bci_blackboard::board::Board;
//! use bci_blackboard::protocol::{Protocol, run};
//! use bci_encoding::bitio::BitVec;
//! use rand::SeedableRng;
//!
//! /// Players announce their bit in turn; stop at the first zero.
//! struct SequentialAnd {
//!     k: usize,
//! }
//!
//! impl Protocol for SequentialAnd {
//!     type Input = bool;
//!     type Output = bool;
//!
//!     fn num_players(&self) -> usize {
//!         self.k
//!     }
//!
//!     fn next_speaker(&self, board: &Board) -> Option<usize> {
//!         match board.messages().last() {
//!             Some(m) if m.bits.get(0) == Some(false) => None, // someone said 0
//!             _ if board.messages().len() >= self.k => None,   // everyone spoke
//!             _ => Some(board.messages().len()),
//!         }
//!     }
//!
//!     fn message(
//!         &self,
//!         _player: usize,
//!         input: &bool,
//!         _board: &Board,
//!         _rng: &mut dyn rand::RngCore,
//!     ) -> BitVec {
//!         BitVec::from_bools(&[*input])
//!     }
//!
//!     fn output(&self, board: &Board) -> bool {
//!         board.messages().iter().all(|m| m.bits.get(0) == Some(true))
//!             && board.messages().len() == self.k
//!     }
//! }
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let exec = run(&SequentialAnd { k: 5 }, &[true, true, false, true, true], &mut rng);
//! assert!(!exec.output);
//! assert_eq!(exec.bits_written, 3); // players 0, 1, 2 spoke
//! ```

pub mod board;
pub mod engine;
pub mod general_tree;
pub mod protocol;
pub mod runner;
pub mod stats;
pub mod tree;
pub mod tree_protocol;

pub use board::{Board, Message};
pub use engine::{Grant, ProtocolViolation, Step, TurnEngine};
pub use protocol::{run, run_traced, Execution, Protocol};
pub use stats::CommStats;
pub use tree::ProtocolTree;

/// Index of a player, `0 ≤ id < k`.
pub type PlayerId = usize;
