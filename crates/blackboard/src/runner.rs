//! Monte-Carlo harness for executable protocols: communication statistics,
//! error rates, and transcript frequency tables.

use bci_info::estimate::FreqTable;
use rand::RngCore;

use crate::protocol::{run, Protocol};
use crate::stats::CommStats;

/// Aggregate result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-execution communication cost in bits.
    pub comm: CommStats,
    /// Number of trials whose output disagreed with the reference function.
    pub errors: u64,
    /// Total trials.
    pub trials: u64,
}

impl RunReport {
    /// Empirical error rate.
    pub fn error_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.errors as f64 / self.trials as f64
        }
    }
}

/// Runs `protocol` on `trials` sampled inputs, comparing each output against
/// `reference`.
///
/// `sample_inputs` draws one joint input (a `Vec` with one entry per player)
/// per trial.
pub fn monte_carlo<P, S, F>(
    protocol: &P,
    mut sample_inputs: S,
    reference: F,
    trials: u64,
    rng: &mut dyn RngCore,
) -> RunReport
where
    P: Protocol,
    P::Output: PartialEq,
    S: FnMut(&mut dyn RngCore) -> Vec<P::Input>,
    F: Fn(&[P::Input]) -> P::Output,
{
    let mut comm = CommStats::new();
    let mut errors = 0u64;
    for _ in 0..trials {
        let inputs = sample_inputs(rng);
        let expected = reference(&inputs);
        let exec = run(protocol, &inputs, rng);
        comm.record(exec.bits_written as f64);
        if exec.output != expected {
            errors += 1;
        }
    }
    RunReport {
        comm,
        errors,
        trials,
    }
}

/// Collects a frequency table of transcripts over `trials` sampled inputs,
/// keyed by [`Board::transcript_key`](crate::board::Board::transcript_key).
///
/// Feed the result to
/// [`FreqTable::entropy_miller_madow`](bci_info::estimate::FreqTable) to
/// estimate `H(Π)` — for deterministic protocols this equals `I(Π; X)`.
pub fn transcript_table<P, S>(
    protocol: &P,
    mut sample_inputs: S,
    trials: u64,
    rng: &mut dyn RngCore,
) -> FreqTable<String>
where
    P: Protocol,
    S: FnMut(&mut dyn RngCore) -> Vec<P::Input>,
{
    let mut table = FreqTable::new();
    for _ in 0..trials {
        let inputs = sample_inputs(rng);
        let exec = run(protocol, &inputs, rng);
        table.record(exec.board.transcript_key());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use crate::PlayerId;
    use bci_encoding::bitio::BitVec;
    use rand::{Rng, SeedableRng};

    /// k players announce their bit in order; output = AND.
    struct AllSpeakAnd {
        k: usize,
    }

    impl Protocol for AllSpeakAnd {
        type Input = bool;
        type Output = bool;

        fn num_players(&self) -> usize {
            self.k
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            (board.messages().len() < self.k).then_some(board.messages().len())
        }

        fn message(
            &self,
            _player: PlayerId,
            input: &bool,
            _board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            BitVec::from_bools(&[*input])
        }

        fn output(&self, board: &Board) -> bool {
            board.messages().iter().all(|m| m.bits.get(0) == Some(true))
        }
    }

    #[test]
    fn correct_protocol_has_zero_errors() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let report = monte_carlo(
            &AllSpeakAnd { k: 5 },
            |rng| (0..5).map(|_| rng.random_bool(0.5)).collect(),
            |inputs| inputs.iter().all(|&b| b),
            500,
            &mut rng,
        );
        assert_eq!(report.errors, 0);
        assert_eq!(report.error_rate(), 0.0);
        assert_eq!(report.trials, 500);
        assert_eq!(report.comm.mean(), 5.0, "everyone speaks exactly once");
    }

    #[test]
    fn wrong_reference_shows_errors() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let report = monte_carlo(
            &AllSpeakAnd { k: 3 },
            |rng| (0..3).map(|_| rng.random_bool(0.5)).collect(),
            |inputs| inputs.iter().any(|&b| b), // OR, not AND
            2000,
            &mut rng,
        );
        // AND != OR whenever the input is mixed: prob = 1 − 2/8 = 3/4.
        assert!((report.error_rate() - 0.75).abs() < 0.05);
    }

    #[test]
    fn transcript_entropy_of_uniform_inputs() {
        // 2 players, uniform bits: transcript = input, H = 2 bits.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let table = transcript_table(
            &AllSpeakAnd { k: 2 },
            |rng| (0..2).map(|_| rng.random_bool(0.5)).collect(),
            20_000,
            &mut rng,
        );
        assert_eq!(table.distinct(), 4);
        assert!((table.entropy_plugin() - 2.0).abs() < 0.01);
    }
}
