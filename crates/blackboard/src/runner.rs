//! Monte-Carlo harness for executable protocols: communication statistics,
//! error rates, and transcript frequency tables.

use bci_info::estimate::FreqTable;
use bci_telemetry::{Json, Recorder, SpanKind};
use rand::{RngCore, SeedableRng};

use crate::protocol::{run, run_traced, Protocol};
use crate::stats::CommStats;

/// Aggregate result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-execution communication cost in bits.
    pub comm: CommStats,
    /// Number of trials whose output disagreed with the reference function.
    pub errors: u64,
    /// Total trials.
    pub trials: u64,
}

impl RunReport {
    /// Empirical error rate.
    pub fn error_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.errors as f64 / self.trials as f64
        }
    }
}

/// Runs `protocol` on `trials` sampled inputs, comparing each output against
/// `reference`.
///
/// `sample_inputs` draws one joint input (a `Vec` with one entry per player)
/// per trial.
pub fn monte_carlo<P, S, F>(
    protocol: &P,
    mut sample_inputs: S,
    reference: F,
    trials: u64,
    rng: &mut dyn RngCore,
) -> RunReport
where
    P: Protocol,
    P::Output: PartialEq,
    S: FnMut(&mut dyn RngCore) -> Vec<P::Input>,
    F: Fn(&[P::Input]) -> P::Output,
{
    let mut comm = CommStats::new();
    let mut errors = 0u64;
    for _ in 0..trials {
        let inputs = sample_inputs(rng);
        let expected = reference(&inputs);
        let exec = run(protocol, &inputs, rng);
        comm.record(exec.bits_written as f64);
        if exec.output != expected {
            errors += 1;
        }
    }
    RunReport {
        comm,
        errors,
        trials,
    }
}

/// Derives the RNG seed for one trial from a master seed.
///
/// Two rounds of SplitMix64 finalization over `(master_seed, trial)` — the
/// derived seeds are decorrelated even for adjacent trial ids, and the
/// mapping is a pure function, so trial `i` can be replayed (or executed on
/// a different worker) without running trials `0..i` first. This is the
/// contract that lets a parallel executor reproduce the serial
/// [`monte_carlo_seeded`] run bit for bit.
pub fn derive_trial_seed(master_seed: u64, trial: u64) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(splitmix(master_seed) ^ trial.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// The RNG for one trial: `R` seeded with [`derive_trial_seed`].
pub fn derive_trial_rng<R: SeedableRng>(master_seed: u64, trial: u64) -> R {
    R::seed_from_u64(derive_trial_seed(master_seed, trial))
}

/// Like [`monte_carlo`], but each trial runs on its own RNG derived from
/// `master_seed` via [`derive_trial_rng`], instead of all trials sharing one
/// stream.
///
/// Trial `i` samples its inputs and executes the protocol on a fresh
/// `R::seed_from_u64(derive_trial_seed(master_seed, i))`, so trials are
/// independent of execution order: running them serially (this function),
/// in parallel, or individually produces identical per-trial transcripts.
/// Statistics are accumulated in trial order, making the whole
/// [`RunReport`] — floating-point rounding included — reproducible from
/// `master_seed` alone.
pub fn monte_carlo_seeded<P, S, F, R>(
    protocol: &P,
    sample_inputs: S,
    reference: F,
    trials: u64,
    master_seed: u64,
) -> RunReport
where
    P: Protocol,
    P::Output: PartialEq,
    S: FnMut(&mut dyn RngCore) -> Vec<P::Input>,
    F: Fn(&[P::Input]) -> P::Output,
    R: RngCore + SeedableRng,
{
    monte_carlo_seeded_traced::<P, S, F, R>(
        protocol,
        sample_inputs,
        reference,
        trials,
        master_seed,
        &Recorder::disabled(),
    )
}

/// Like [`monte_carlo_seeded`], but reports telemetry to `recorder`: a
/// `trial` span per trial (bits written, error flag), `runner.trials` /
/// `runner.errors` counters, and a `runner.bits_per_trial` histogram.
///
/// The recorder never touches the trial RNGs, so the returned [`RunReport`]
/// is bit-identical to [`monte_carlo_seeded`]'s for every `(protocol,
/// master_seed)` — recording is free to enable on a verification run.
pub fn monte_carlo_seeded_traced<P, S, F, R>(
    protocol: &P,
    mut sample_inputs: S,
    reference: F,
    trials: u64,
    master_seed: u64,
    recorder: &Recorder,
) -> RunReport
where
    P: Protocol,
    P::Output: PartialEq,
    S: FnMut(&mut dyn RngCore) -> Vec<P::Input>,
    F: Fn(&[P::Input]) -> P::Output,
    R: RngCore + SeedableRng,
{
    let mut comm = CommStats::new();
    let mut errors = 0u64;
    for trial in 0..trials {
        let token = recorder.span_start(SpanKind::Trial, trial, vec![]);
        let mut rng: R = derive_trial_rng(master_seed, trial);
        let inputs = sample_inputs(&mut rng);
        let expected = reference(&inputs);
        let exec = run_traced(protocol, &inputs, &mut rng, recorder);
        comm.record(exec.bits_written as f64);
        let wrong = exec.output != expected;
        if wrong {
            errors += 1;
        }
        if recorder.enabled() {
            recorder.counter_add("runner.trials", 1);
            if wrong {
                recorder.counter_add("runner.errors", 1);
            }
            recorder.hist_record(
                "runner.bits_per_trial",
                exec.bits_written as u64,
                bci_telemetry::hist::BITS_BOUNDS,
            );
            recorder.span_end(
                SpanKind::Trial,
                trial,
                token,
                vec![
                    ("bits", Json::UInt(exec.bits_written as u64)),
                    ("error", Json::Bool(wrong)),
                ],
            );
        }
    }
    RunReport {
        comm,
        errors,
        trials,
    }
}

/// Collects a frequency table of transcripts over `trials` sampled inputs,
/// keyed by [`Board::transcript_key`](crate::board::Board::transcript_key).
///
/// Feed the result to
/// [`FreqTable::entropy_miller_madow`](bci_info::estimate::FreqTable) to
/// estimate `H(Π)` — for deterministic protocols this equals `I(Π; X)`.
pub fn transcript_table<P, S>(
    protocol: &P,
    mut sample_inputs: S,
    trials: u64,
    rng: &mut dyn RngCore,
) -> FreqTable<String>
where
    P: Protocol,
    S: FnMut(&mut dyn RngCore) -> Vec<P::Input>,
{
    let mut table = FreqTable::new();
    for _ in 0..trials {
        let inputs = sample_inputs(rng);
        let exec = run(protocol, &inputs, rng);
        table.record(exec.board.transcript_key());
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use crate::PlayerId;
    use bci_encoding::bitio::BitVec;
    use rand::{Rng, SeedableRng};

    /// k players announce their bit in order; output = AND.
    struct AllSpeakAnd {
        k: usize,
    }

    impl Protocol for AllSpeakAnd {
        type Input = bool;
        type Output = bool;

        fn num_players(&self) -> usize {
            self.k
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            (board.messages().len() < self.k).then_some(board.messages().len())
        }

        fn message(
            &self,
            _player: PlayerId,
            input: &bool,
            _board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            BitVec::from_bools(&[*input])
        }

        fn output(&self, board: &Board) -> bool {
            board.messages().iter().all(|m| m.bits.get(0) == Some(true))
        }
    }

    #[test]
    fn correct_protocol_has_zero_errors() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let report = monte_carlo(
            &AllSpeakAnd { k: 5 },
            |rng| (0..5).map(|_| rng.random_bool(0.5)).collect(),
            |inputs| inputs.iter().all(|&b| b),
            500,
            &mut rng,
        );
        assert_eq!(report.errors, 0);
        assert_eq!(report.error_rate(), 0.0);
        assert_eq!(report.trials, 500);
        assert_eq!(report.comm.mean(), 5.0, "everyone speaks exactly once");
    }

    #[test]
    fn wrong_reference_shows_errors() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let report = monte_carlo(
            &AllSpeakAnd { k: 3 },
            |rng| (0..3).map(|_| rng.random_bool(0.5)).collect(),
            |inputs| inputs.iter().any(|&b| b), // OR, not AND
            2000,
            &mut rng,
        );
        // AND != OR whenever the input is mixed: prob = 1 − 2/8 = 3/4.
        assert!((report.error_rate() - 0.75).abs() < 0.05);
    }

    #[test]
    fn derived_seeds_are_order_free_and_distinct() {
        let a = derive_trial_seed(7, 0);
        let b = derive_trial_seed(7, 1);
        let c = derive_trial_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Pure function of (master, trial): replayable in any order.
        assert_eq!(derive_trial_seed(7, 1), b);
        // 1000 trials of one master seed never collide.
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|t| derive_trial_seed(42, t)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn seeded_runner_is_reproducible_and_correct() {
        let run = || {
            monte_carlo_seeded::<_, _, _, rand_chacha::ChaCha8Rng>(
                &AllSpeakAnd { k: 5 },
                |rng| (0..5).map(|_| rng.random_bool(0.5)).collect(),
                |inputs| inputs.iter().all(|&b| b),
                400,
                99,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.errors, 0);
        assert_eq!(a.trials, 400);
        assert_eq!(a.comm.mean(), 5.0);
        // Bit-identical statistics across invocations.
        assert_eq!(a.comm.mean().to_bits(), b.comm.mean().to_bits());
        assert_eq!(a.comm.variance().to_bits(), b.comm.variance().to_bits());
    }

    #[test]
    fn seeded_trials_match_standalone_replay() {
        // Trial 17 replayed on its own produces the same inputs and
        // transcript as within the full sweep — the order-independence
        // contract a parallel executor relies on.
        let sample =
            |rng: &mut dyn RngCore| -> Vec<bool> { (0..4).map(|_| rng.random_bool(0.5)).collect() };
        let mut rng: rand_chacha::ChaCha8Rng = derive_trial_rng(5, 17);
        let inputs = sample(&mut rng);
        let solo = run(&AllSpeakAnd { k: 4 }, &inputs, &mut rng);

        let mut rng2: rand_chacha::ChaCha8Rng = derive_trial_rng(5, 17);
        let inputs2 = sample(&mut rng2);
        assert_eq!(inputs, inputs2);
        let again = run(&AllSpeakAnd { k: 4 }, &inputs2, &mut rng2);
        assert_eq!(solo.board, again.board);
        assert_eq!(solo.output, again.output);
    }

    #[test]
    fn transcript_entropy_of_uniform_inputs() {
        // 2 players, uniform bits: transcript = input, H = 2 bits.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let table = transcript_table(
            &AllSpeakAnd { k: 2 },
            |rng| (0..2).map(|_| rng.random_bool(0.5)).collect(),
            20_000,
            &mut rng,
        );
        assert_eq!(table.distinct(), 4);
        assert!((table.entropy_plugin() - 2.0).abs() < 0.01);
    }
}
