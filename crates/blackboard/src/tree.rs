//! Protocol trees over one-bit inputs, with exact transcript-distribution
//! analysis.
//!
//! A [`ProtocolTree`] represents a randomized broadcast protocol on `k`
//! players whose private inputs are single bits. Each internal node names a
//! speaker and, for each value of the speaker's input bit, a probability
//! distribution over outgoing edges; each edge carries a prefix-free bit
//! label (the message written on the board); each leaf carries the protocol's
//! output.
//!
//! This is exactly the object the paper's Lemma 3 applies to: for every leaf
//! (= transcript) `ℓ`, the probability of reaching `ℓ` on input
//! `X = (X₁, …, X_k)` factors as `Pr[Π(X) = ℓ] = ∏ᵢ q_{i,Xᵢ}^ℓ`, where
//! `q_{i,b}^ℓ` multiplies the branch probabilities of player `i`'s moves
//! along the path. The tree computes all `q` values on first use (lazily:
//! finalizing a tree is linear in its node count, and consumers that only
//! walk the tree — sampling, sparse transcript supports, leaf counting —
//! never pay the `O(#leaves · k)` decomposition), which makes the following
//! *exact* (no sampling):
//!
//! * the transcript distribution under any product input distribution,
//! * per-player posteriors given a transcript (the paper's Lemma 4),
//! * information cost `I(Π; X)` under product priors — using the fact that
//!   the posterior on `X` given a transcript is itself a product
//!   distribution, so the KL divergence splits into per-player terms,
//! * worst-case and expected communication, and worst-case error.
//!
//! # Example
//!
//! ```
//! use bci_blackboard::tree::TreeBuilder;
//! use bci_encoding::bitio::BitVec;
//!
//! // One player announces its bit (deterministically).
//! let mut b = TreeBuilder::new(1);
//! let leaf0 = b.leaf(0);
//! let leaf1 = b.leaf(1);
//! let root = b.internal(
//!     0,
//!     vec![
//!         (BitVec::from_bools(&[false]), [1.0, 0.0], leaf0),
//!         (BitVec::from_bools(&[true]), [0.0, 1.0], leaf1),
//!     ],
//! );
//! let tree = b.finish(root);
//! // A uniform input bit is fully revealed: I(Π; X) = 1.
//! assert!((tree.information_cost_product(&[0.5]) - 1.0).abs() < 1e-12);
//! ```

use std::collections::HashMap;
use std::sync::OnceLock;

use bci_encoding::bitio::BitVec;
use bci_info::dist::Dist;
use bci_info::num::{clamp_nonneg, xlog2_ratio};
use rand::Rng;

use crate::PlayerId;

/// Index of a node inside a [`ProtocolTree`].
pub type NodeId = usize;

/// Index into [`ProtocolTree::leaves`].
pub type LeafId = usize;

/// An outgoing edge of an internal node.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The bits the speaker writes on the board for this branch.
    pub label: BitVec,
    /// Probability of taking this branch given the speaker's input bit:
    /// `prob[b] = Pr[message = label | input = b]`.
    pub prob: [f64; 2],
    /// The node this branch leads to.
    pub child: NodeId,
}

/// A node of the tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A halting state with the protocol's output.
    Leaf {
        /// The output value announced at this leaf.
        output: usize,
    },
    /// A speaking turn.
    Internal {
        /// Which player speaks at this node.
        speaker: PlayerId,
        /// The possible messages.
        edges: Vec<Edge>,
    },
}

/// Precomputed per-leaf data: output, path length, and the Lemma-3
/// `q`-decomposition.
#[derive(Debug, Clone)]
pub struct Leaf {
    /// The tree node of this leaf.
    pub node: NodeId,
    /// Output value at this leaf.
    pub output: usize,
    /// Total label bits along the root-to-leaf path (communication cost of
    /// this transcript).
    pub path_bits: usize,
    /// `q[i][b]` = product of player `i`'s branch probabilities along the
    /// path when its input is `b`. Players who never speak on the path have
    /// `q[i][b] = 1`.
    q: Vec<[f64; 2]>,
}

impl Leaf {
    /// The Lemma-3 factor `q_{i,b}` for this leaf.
    pub fn q(&self, player: PlayerId, bit: bool) -> f64 {
        self.q[player][usize::from(bit)]
    }

    /// `Pr[Π(x) = ℓ] = ∏ᵢ q_{i,xᵢ}` for a concrete input.
    pub fn prob_given_input(&self, x: &[bool]) -> f64 {
        debug_assert_eq!(x.len(), self.q.len());
        x.iter()
            .zip(&self.q)
            .map(|(&b, q)| q[usize::from(b)])
            .product()
    }

    /// `Pr[Π = ℓ]` under independent priors, where `priors[i] = Pr[Xᵢ = 1]`.
    ///
    /// This is the factorized form `∏ᵢ ((1−pᵢ)·q_{i,0} + pᵢ·q_{i,1})` that
    /// lets information cost be computed in `O(#leaves · k)`.
    pub fn prob_under_product(&self, priors: &[f64]) -> f64 {
        debug_assert_eq!(priors.len(), self.q.len());
        priors
            .iter()
            .zip(&self.q)
            .map(|(&p, q)| (1.0 - p) * q[0] + p * q[1])
            .product()
    }

    /// Posterior `Pr[Xᵢ = 1 | Π = ℓ]` under prior `Pr[Xᵢ = 1] = prior_one`
    /// (Bayes' rule, the paper's Lemma 4). Returns `None` when the leaf is
    /// unreachable under this prior for player `i`.
    pub fn posterior_one(&self, player: PlayerId, prior_one: f64) -> Option<f64> {
        let q = &self.q[player];
        let mass = (1.0 - prior_one) * q[0] + prior_one * q[1];
        if mass <= 0.0 {
            return None;
        }
        Some(prior_one * q[1] / mass)
    }
}

/// Incrementally builds a [`ProtocolTree`]. Create leaves and internal nodes
/// bottom-up, then call [`finish`](TreeBuilder::finish) with the root.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    k: usize,
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Starts building a tree for `k` players.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "a protocol needs at least one player");
        TreeBuilder {
            k,
            nodes: Vec::new(),
        }
    }

    /// Adds a leaf with the given output; returns its id.
    pub fn leaf(&mut self, output: usize) -> NodeId {
        self.nodes.push(Node::Leaf { output });
        self.nodes.len() - 1
    }

    /// Adds an internal node; returns its id.
    ///
    /// `edges` lists `(label, [Pr | input=0, Pr | input=1], child)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `speaker ≥ k`, `edges` is empty, a probability is outside
    /// `[0,1]`, the probabilities for either input bit do not sum to 1
    /// (within `1e-9`), a child id is unknown, or the labels are not
    /// prefix-free (which would make the board ambiguous).
    pub fn internal(
        &mut self,
        speaker: PlayerId,
        edges: Vec<(BitVec, [f64; 2], NodeId)>,
    ) -> NodeId {
        assert!(speaker < self.k, "speaker {speaker} out of range");
        assert!(!edges.is_empty(), "internal node needs at least one edge");
        for b in 0..2 {
            let sum: f64 = edges.iter().map(|(_, p, _)| p[b]).sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "edge probabilities for input bit {b} sum to {sum}"
            );
        }
        for (label, prob, child) in &edges {
            assert!(
                prob.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)),
                "edge probability outside [0,1]: {prob:?}"
            );
            assert!(*child < self.nodes.len(), "unknown child node {child}");
            assert!(
                !(label.is_empty() && edges.len() > 1),
                "empty label on a branching node"
            );
        }
        // Prefix-freeness: no label may be a prefix of another.
        for (i, (a, _, _)) in edges.iter().enumerate() {
            for (b, _, _) in edges.iter().skip(i + 1) {
                let min = a.len().min(b.len());
                let is_prefix = (0..min).all(|j| a.get(j) == b.get(j));
                assert!(!is_prefix, "labels {a} and {b} are not prefix-free");
            }
        }
        self.nodes.push(Node::Internal {
            speaker,
            edges: edges
                .into_iter()
                .map(|(label, prob, child)| Edge { label, prob, child })
                .collect(),
        });
        self.nodes.len() - 1
    }

    /// Finalizes the tree rooted at `root`, precomputing all leaf data.
    ///
    /// # Panics
    ///
    /// Panics if `root` is unknown or if the structure rooted there is not a
    /// tree (a node reachable twice).
    pub fn finish(self, root: NodeId) -> ProtocolTree {
        assert!(root < self.nodes.len(), "unknown root {root}");
        let mut visited = vec![false; self.nodes.len()];
        let mut metas = Vec::new();
        // Iterative DFS carrying (node, path_bits) — cheap identity data
        // only. The Lemma-3 `q`-decomposition clones a k-sized vector per
        // edge, which is `O(#leaves · k)` work that pure tree-walkers
        // (sampling, sparse supports, Huffman over leaf counts) never
        // need, so it is deferred to the first [`ProtocolTree::leaves`]
        // call. The iterative form avoids recursion limits on deep trees
        // (e.g. sequential AND with k in the thousands).
        let mut stack = vec![(root, 0usize)];
        while let Some((id, path_bits)) = stack.pop() {
            assert!(!visited[id], "node {id} reachable twice: not a tree");
            visited[id] = true;
            match &self.nodes[id] {
                Node::Leaf { .. } => metas.push(LeafMeta {
                    node: id,
                    path_bits,
                }),
                Node::Internal { edges, .. } => {
                    for e in edges {
                        stack.push((e.child, path_bits + e.label.len()));
                    }
                }
            }
        }
        let mut leaf_of_node = vec![None; self.nodes.len()];
        for (idx, meta) in metas.iter().enumerate() {
            leaf_of_node[meta.node] = Some(idx);
        }
        ProtocolTree {
            k: self.k,
            nodes: self.nodes,
            root,
            metas,
            leaf_of_node,
            leaves: OnceLock::new(),
        }
    }
}

/// Per-leaf identity data computed eagerly at [`TreeBuilder::finish`];
/// the output and `q`-decomposition live in [`Leaf`], materialized
/// lazily.
#[derive(Debug, Clone)]
struct LeafMeta {
    node: NodeId,
    path_bits: usize,
}

/// A finalized protocol tree; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct ProtocolTree {
    k: usize,
    nodes: Vec<Node>,
    root: NodeId,
    /// Eager per-leaf identity in DFS order.
    metas: Vec<LeafMeta>,
    /// Maps a leaf's `NodeId` to its index in DFS leaf order.
    leaf_of_node: Vec<Option<LeafId>>,
    /// The leaves with their Lemma-3 `q`-decompositions, materialized on
    /// first use (see [`ProtocolTree::leaves`]).
    leaves: OnceLock<Vec<Leaf>>,
}

impl ProtocolTree {
    /// Number of players `k`.
    pub fn num_players(&self) -> usize {
        self.k
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes (leaves included); node ids are `0..num_nodes()`.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of leaves. Unlike `leaves().len()`, never materializes the
    /// `q`-decompositions.
    pub fn num_leaves(&self) -> usize {
        self.metas.len()
    }

    /// The leaves with their `q`-decompositions, materialized on first
    /// call.
    ///
    /// The materialization runs the same DFS in the same order, with the
    /// same multiplication order, as an eager build at `finish` time
    /// would — the `q` products are bit-identical whenever they are
    /// computed.
    pub fn leaves(&self) -> &[Leaf] {
        self.leaves.get_or_init(|| {
            let mut leaves = Vec::with_capacity(self.metas.len());
            let mut stack = vec![(self.root, 0usize, vec![[1.0f64; 2]; self.k])];
            while let Some((id, path_bits, q)) = stack.pop() {
                match &self.nodes[id] {
                    Node::Leaf { output } => leaves.push(Leaf {
                        node: id,
                        output: *output,
                        path_bits,
                        q,
                    }),
                    Node::Internal { speaker, edges } => {
                        for e in edges {
                            let mut q2 = q.clone();
                            q2[*speaker][0] *= e.prob[0];
                            q2[*speaker][1] *= e.prob[1];
                            stack.push((e.child, path_bits + e.label.len(), q2));
                        }
                    }
                }
            }
            debug_assert!(leaves
                .iter()
                .zip(&self.metas)
                .all(|(l, m)| l.node == m.node && l.path_bits == m.path_bits));
            leaves
        })
    }

    /// Worst-case communication: the longest root-to-leaf label path, in
    /// bits. This is `CC(Π)`.
    pub fn worst_case_bits(&self) -> usize {
        self.metas.iter().map(|m| m.path_bits).max().unwrap_or(0)
    }

    /// Expected communication under independent priors
    /// (`priors[i] = Pr[Xᵢ = 1]`).
    pub fn expected_bits_product(&self, priors: &[f64]) -> f64 {
        self.check_priors(priors);
        self.leaves()
            .iter()
            .map(|l| l.prob_under_product(priors) * l.path_bits as f64)
            .sum()
    }

    /// The exact transcript distribution (over leaf indices) on input `x`.
    ///
    /// This is the dense generic path: every leaf is evaluated through its
    /// Lemma-3 `q`-product, at cost `O(#leaves · k)`. When only the
    /// *reachable* leaves are needed — in particular on deterministic trees,
    /// where each input reaches exactly one leaf — use the sparse
    /// [`transcript_support_given_input`](Self::transcript_support_given_input)
    /// fast lane instead; the two agree exactly (cross-checked in tests).
    pub fn transcript_dist_given_input(&self, x: &[bool]) -> Vec<f64> {
        assert_eq!(x.len(), self.k, "input length mismatch");
        self.leaves()
            .iter()
            .map(|l| l.prob_given_input(x))
            .collect()
    }

    /// The support of the transcript distribution on input `x`: the leaves
    /// reachable with positive probability, as `(leaf, Pr[Π(x) = leaf])`
    /// pairs in DFS order.
    ///
    /// Walks the tree from the root and prunes every zero-probability
    /// branch, so the cost is `O(reachable subtree)` rather than
    /// `O(#leaves · k)`. On a *deterministic* tree (see
    /// [`is_deterministic`](Self::is_deterministic)) exactly one branch
    /// survives at every node, so this is a single `O(depth)` root-to-leaf
    /// walk — the fast lane that makes E13's exact transcript analysis of
    /// `sequential_and(k)` quadratic-in-`k` overall instead of cubic.
    ///
    /// The probabilities are products of the same edge probabilities the
    /// dense path multiplies (grouped per player there, along the path
    /// here); on deterministic trees both are exactly `1.0`, and tests
    /// cross-check the two representations on randomized trees.
    pub fn transcript_support_given_input(&self, x: &[bool]) -> Vec<(LeafId, f64)> {
        assert_eq!(x.len(), self.k, "input length mismatch");
        let mut out = Vec::new();
        let mut stack = vec![(self.root, 1.0f64)];
        while let Some((id, p)) = stack.pop() {
            match &self.nodes[id] {
                Node::Leaf { .. } => {
                    let leaf = self.leaf_of_node[id].expect("leaf node is registered");
                    out.push((leaf, p));
                }
                Node::Internal { speaker, edges } => {
                    let b = usize::from(x[*speaker]);
                    for e in edges {
                        if e.prob[b] > 0.0 {
                            stack.push((e.child, p * e.prob[b]));
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether every move is determined by the speaker's input bit (all edge
    /// probabilities are 0 or 1). For such trees each input reaches exactly
    /// one leaf, so
    /// [`transcript_support_given_input`](Self::transcript_support_given_input)
    /// returns a single `(leaf, 1.0)` pair in `O(depth)`.
    pub fn is_deterministic(&self) -> bool {
        self.nodes.iter().all(|n| match n {
            Node::Leaf { .. } => true,
            Node::Internal { edges, .. } => edges
                .iter()
                .all(|e| e.prob.iter().all(|&p| p == 0.0 || p == 1.0)),
        })
    }

    /// Exact external information cost `I(Π; X)` in bits, for independent
    /// player inputs with `priors[i] = Pr[Xᵢ = 1]`.
    ///
    /// Uses the Lemma-3 factorization: given a leaf, the posterior on `X` is
    /// a product distribution, so
    /// `I(Π; X) = Σ_ℓ Pr[ℓ] Σᵢ D(post_i ‖ prior_i)` with *equality* —
    /// computable in `O(#leaves · k)` instead of `O(2ᵏ)`. Validated against
    /// [`information_cost_bruteforce`](Self::information_cost_bruteforce) in
    /// the tests and the ablation bench.
    pub fn information_cost_product(&self, priors: &[f64]) -> f64 {
        self.check_priors(priors);
        let mut total = 0.0;
        for leaf in self.leaves() {
            let pl = leaf.prob_under_product(priors);
            if pl <= 0.0 {
                continue;
            }
            let mut div = 0.0;
            for (i, &p1) in priors.iter().enumerate() {
                let post1 = leaf
                    .posterior_one(i, p1)
                    .expect("leaf has positive probability");
                div += xlog2_ratio(post1, p1) + xlog2_ratio(1.0 - post1, 1.0 - p1);
            }
            total += pl * div;
        }
        clamp_nonneg(total, 1e-9)
    }

    /// Batched [`information_cost_product`](Self::information_cost_product):
    /// evaluates many prior slices against this tree in one pass, returning
    /// one cost per slice. **Bit-for-bit identical** to calling the dense
    /// method per slice (asserted by randomized cross-validation tests) but
    /// asymptotically cheaper: the dense path spends two `log2` calls per
    /// (slice, leaf, player) — `O(k³)` transcendentals for
    /// `sequential_and(k)` under the `cic_hard` slice family — while this
    /// path spends two per (slice, distinct prior, distinct `q`-pair).
    ///
    /// How the work is hoisted, and why every skipped operation is exact:
    ///
    /// 1. **Per-leaf structure → flat SoA, once per call.** Only *writers* —
    ///    players whose Lemma-3 pair `q_{i,·}` differs from the neutral
    ///    `(1,1)` — can contribute to a leaf's probability or divergence.
    ///    Writer `(player, q-pair)` entries are laid out contiguously per
    ///    leaf in player order, with distinct `(q₀,q₁)` pairs interned by bit
    ///    pattern.
    /// 2. **Per-slice tables.** Distinct prior values are deduplicated by
    ///    bit pattern and a `(mass, g)` table is filled per
    ///    (prior, q-pair) cell using the *exact dense-path expressions*
    ///    (`mass = (1−p)·q₀ + p·q₁`, `post₁ = p·q₁/mass`,
    ///    `g = xlog2_ratio(post₁,p) + xlog2_ratio(1−post₁,1−p)`), so each
    ///    cached f64 equals what the dense loop would recompute.
    /// 3. **Fused inner loop.** Per leaf, the probability product and the
    ///    divergence sum run over writer entries only, in player order —
    ///    the same multiply/add sequence as the dense loop minus the
    ///    non-writer steps. Skipping a non-writer's probability factor is
    ///    exact because `x × 1.0 = x` in IEEE 754, *provided* its mass
    ///    `(1−p)·1 + p·1` is exactly `1.0`; skipping its divergence term is
    ///    exact because that term is then exactly `+0.0` (see
    ///    [`xlog2_ratio`]'s guarantees), and a `+0.0` addend can only affect
    ///    the sign of a zero accumulator — a difference that cannot
    ///    propagate (`±0.0 + g = g` for `g ≠ 0`, and `x + ±0.0 = x` in the
    ///    final `total` fold, whose accumulator is never `-0.0`). Both
    ///    conditions are **checked at runtime per distinct prior**; a slice
    ///    containing a prior that fails them falls back to the dense kernel
    ///    for that slice. Early-exiting the product at an exact `0.0` is
    ///    also exact: masses are finite and non-negative, so `0.0` absorbs.
    ///
    /// The check in fact holds for *every* f64 prior in `[0,1]` — `1−p`
    /// errs by at most a half-ulp (`2⁻⁵⁴`), so `(1−p)+p` ties back to
    /// exactly `1.0` under round-to-even (pinned by a sweep test) — making
    /// the dense fallback a guard against future refactors of the posterior
    /// formulas rather than a path real data can take.
    pub fn information_cost_product_many(&self, slices: &[Vec<f64>]) -> Vec<f64> {
        // --- SoA layout, computed once per call -------------------------
        let mut qpairs: Vec<[f64; 2]> = Vec::new();
        let mut qpair_id: HashMap<(u64, u64), u32> = HashMap::new();
        // (player, q-pair id) per writer, leaves concatenated (CSR layout).
        let leaves = self.leaves();
        let mut writers: Vec<(u32, u32)> = Vec::new();
        let mut leaf_start: Vec<u32> = Vec::with_capacity(leaves.len() + 1);
        leaf_start.push(0);
        for leaf in leaves {
            for (i, q) in leaf.q.iter().enumerate() {
                if q[0] == 1.0 && q[1] == 1.0 {
                    continue;
                }
                let key = (q[0].to_bits(), q[1].to_bits());
                let id = *qpair_id.entry(key).or_insert_with(|| {
                    qpairs.push(*q);
                    (qpairs.len() - 1) as u32
                });
                writers.push((i as u32, id));
            }
            leaf_start.push(writers.len() as u32);
        }
        let nq = qpairs.len();

        let mut out = Vec::with_capacity(slices.len());
        let mut prior_of = vec![0u32; self.k]; // player → distinct-prior id
        for priors in slices {
            self.check_priors(priors);
            // Distinct prior values, deduplicated by bit pattern.
            let mut pvals: Vec<f64> = Vec::new();
            for (i, &p) in priors.iter().enumerate() {
                let id = match pvals.iter().position(|v| v.to_bits() == p.to_bits()) {
                    Some(id) => id,
                    None => {
                        pvals.push(p);
                        pvals.len() - 1
                    }
                };
                prior_of[i] = id as u32;
            }
            // Runtime skip-safety check (point 3 above): every distinct
            // prior must make the neutral q-pair's mass exactly 1.0 and its
            // divergence term exactly +0.0.
            let skips_are_exact = pvals.iter().all(|&p| {
                let mass = (1.0 - p) * 1.0 + p * 1.0;
                if mass != 1.0 {
                    return false;
                }
                let post1 = p * 1.0 / mass;
                let g = xlog2_ratio(post1, p) + xlog2_ratio(1.0 - post1, 1.0 - p);
                g.to_bits() == 0 // exactly +0.0
            });
            if !skips_are_exact {
                out.push(self.information_cost_product(priors));
                continue;
            }
            // (mass, g) per (distinct prior, distinct q-pair) cell — the
            // only transcendentals in this slice.
            let mut tab: Vec<[f64; 2]> = vec![[0.0; 2]; pvals.len() * nq];
            for (a, &p) in pvals.iter().enumerate() {
                for (b, q) in qpairs.iter().enumerate() {
                    let mass = (1.0 - p) * q[0] + p * q[1];
                    let g = if mass > 0.0 {
                        let post1 = p * q[1] / mass;
                        xlog2_ratio(post1, p) + xlog2_ratio(1.0 - post1, 1.0 - p)
                    } else {
                        // Never read: a zero mass zeroes the leaf
                        // probability, which skips the whole leaf.
                        0.0
                    };
                    tab[a * nq + b] = [mass, g];
                }
            }
            let mut total = 0.0;
            for l in 0..leaves.len() {
                let lo = leaf_start[l] as usize;
                let hi = leaf_start[l + 1] as usize;
                let mut pl = 1.0;
                let mut div = 0.0;
                let mut alive = true;
                for &(player, qp) in &writers[lo..hi] {
                    let cell = &tab[prior_of[player as usize] as usize * nq + qp as usize];
                    pl *= cell[0];
                    if pl == 0.0 {
                        alive = false;
                        break;
                    }
                    div += cell[1];
                }
                if alive {
                    total += pl * div;
                }
            }
            out.push(clamp_nonneg(total, 1e-9));
        }
        out
    }

    /// Exact `I(Π; X)` by brute-force enumeration of all `2ᵏ` inputs.
    ///
    /// Exists to cross-validate
    /// [`information_cost_product`](Self::information_cost_product); the
    /// ablation bench compares their running times.
    ///
    /// # Panics
    ///
    /// Panics if `k > 20` (the enumeration would be enormous).
    pub fn information_cost_bruteforce(&self, priors: &[f64]) -> f64 {
        self.check_priors(priors);
        assert!(
            self.k <= 20,
            "brute force limited to k ≤ 20, got {}",
            self.k
        );
        let n_inputs = 1usize << self.k;
        let mut rows = Vec::with_capacity(n_inputs);
        for xi in 0..n_inputs {
            let x: Vec<bool> = (0..self.k).map(|i| (xi >> i) & 1 == 1).collect();
            let px: f64 = x
                .iter()
                .zip(priors)
                .map(|(&b, &p)| if b { p } else { 1.0 - p })
                .product();
            let row: Vec<f64> = self
                .leaves()
                .iter()
                .map(|l| px * l.prob_given_input(&x))
                .collect();
            rows.push(row);
        }
        bci_info::joint::Joint2::new(rows)
            .expect("transcript probabilities form a joint distribution")
            .mutual_information()
    }

    /// The chain-rule decomposition of the information cost (the displayed
    /// equation of the paper's Section 6):
    ///
    /// `IC(Π) = I(Π; X) = Σⱼ I(Mⱼ; X | M₍<ⱼ₎)`
    ///
    /// — and since message `Mⱼ` depends only on its speaker's input given
    /// the history, each term is `I(Mⱼ; X_{iⱼ} | M₍<ⱼ₎)`. This method
    /// returns, for every internal node `u`, the pair
    /// `(u, Pr[reach u] · I(M_u; X_speaker | reach u))` under independent
    /// priors. Summing the contributions recovers
    /// [`information_cost_product`](Self::information_cost_product) exactly
    /// (asserted by tests) — the identity Theorem 3's compression charges
    /// round by round.
    pub fn information_by_node(&self, priors: &[f64]) -> Vec<(NodeId, f64)> {
        self.check_priors(priors);
        let mut out = Vec::new();
        // DFS carrying (node, reach probability, per-player q products).
        let mut stack = vec![(self.root, 1.0f64, vec![[1.0f64; 2]; self.k])];
        while let Some((id, p_reach, q)) = stack.pop() {
            if p_reach <= 0.0 {
                continue;
            }
            let Node::Internal { speaker, edges } = &self.nodes[id] else {
                continue;
            };
            // Posterior of the speaker's input bit given the history.
            let w0 = (1.0 - priors[*speaker]) * q[*speaker][0];
            let w1 = priors[*speaker] * q[*speaker][1];
            let mass = w0 + w1;
            debug_assert!(mass > 0.0, "reachable node has positive mass");
            let post = [w0 / mass, w1 / mass];
            // Joint of (speaker bit, message).
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|b| edges.iter().map(|e| post[b] * e.prob[b]).collect())
                .collect();
            let mi = bci_info::joint::Joint2::new(rows)
                .expect("node message joint is a distribution")
                .mutual_information();
            out.push((id, p_reach * mi));
            for e in edges {
                let nu_e = post[0] * e.prob[0] + post[1] * e.prob[1];
                let mut q2 = q.clone();
                q2[*speaker][0] *= e.prob[0];
                q2[*speaker][1] *= e.prob[1];
                stack.push((e.child, p_reach * nu_e, q2));
            }
        }
        out
    }

    /// Aggregates [`information_by_node`](Self::information_by_node) by
    /// tree depth (root = depth 0): `profile[d]` is the information revealed
    /// by round `d`'s messages. Sums to the information cost.
    pub fn information_by_depth(&self, priors: &[f64]) -> Vec<f64> {
        // Compute each node's depth by a cheap DFS.
        let mut depth = vec![0usize; self.nodes.len()];
        let mut stack = vec![(self.root, 0usize)];
        let mut max_depth = 0;
        while let Some((id, d)) = stack.pop() {
            depth[id] = d;
            max_depth = max_depth.max(d);
            if let Node::Internal { edges, .. } = &self.nodes[id] {
                for e in edges {
                    stack.push((e.child, d + 1));
                }
            }
        }
        let mut profile = vec![0.0; max_depth + 1];
        for (node, c) in self.information_by_node(priors) {
            profile[depth[node]] += c;
        }
        while profile.last() == Some(&0.0) && profile.len() > 1 {
            profile.pop();
        }
        profile
    }

    /// Exact `I(Π; X)` for an input distribution given as an explicit
    /// support: `support[j] = (Pr[X = xⱼ], xⱼ)`.
    ///
    /// Unlike [`information_cost_product`](Self::information_cost_product)
    /// this handles *correlated* player inputs (e.g. the two-point Lemma 6
    /// distribution `μ′`, where exactly one player holds 0), at cost
    /// `O(|support| · reachable leaves)` — for deterministic trees each
    /// support input contributes a single `O(depth)` walk (see
    /// [`transcript_support_given_input`](Self::transcript_support_given_input)),
    /// not a dense `O(#leaves · k)` evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not sum to 1 (within `1e-9`) or an input has
    /// the wrong length.
    pub fn information_cost_support(&self, support: &[(f64, Vec<bool>)]) -> f64 {
        let total: f64 = support.iter().map(|(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "support weights sum to {total}");
        assert!(
            support.iter().all(|(_, x)| x.len() == self.k),
            "input length mismatch"
        );
        // Marginal transcript distribution, accumulated sparsely. Sorting
        // each conditional by leaf id keeps every f64 accumulation in the
        // order the dense path used (zero terms contribute exactly 0.0
        // there), so this is bit-identical to the dense evaluation.
        let mut marginal = vec![0.0f64; self.num_leaves()];
        let conditionals: Vec<Vec<(LeafId, f64)>> = support
            .iter()
            .map(|(w, x)| {
                let mut d = self.transcript_support_given_input(x);
                d.sort_unstable_by_key(|&(leaf, _)| leaf);
                for &(leaf, p) in &d {
                    marginal[leaf] += w * p;
                }
                d
            })
            .collect();
        let mut mi = 0.0;
        for ((w, _), cond) in support.iter().zip(&conditionals) {
            if *w == 0.0 {
                continue;
            }
            for &(leaf, p) in cond {
                mi += w * xlog2_ratio(p, marginal[leaf]);
            }
        }
        clamp_nonneg(mi, 1e-9)
    }

    /// Worst-case error of the protocol against the target function `f`
    /// (given as `f(x) -> output`), maximized over all `2ᵏ` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k > 20`.
    pub fn worst_case_error(&self, f: impl Fn(&[bool]) -> usize) -> f64 {
        assert!(self.k <= 20, "error enumeration limited to k ≤ 20");
        let mut worst: f64 = 0.0;
        for xi in 0..(1usize << self.k) {
            let x: Vec<bool> = (0..self.k).map(|i| (xi >> i) & 1 == 1).collect();
            worst = worst.max(self.error_on_input(&x, f(&x)));
        }
        worst
    }

    /// Probability that the protocol's output differs from `expected` on
    /// input `x`.
    pub fn error_on_input(&self, x: &[bool], expected: usize) -> f64 {
        self.leaves()
            .iter()
            .filter(|l| l.output != expected)
            .map(|l| l.prob_given_input(x))
            .sum()
    }

    /// Samples one execution on input `x`: returns the leaf index and the
    /// transcript bits written.
    pub fn simulate<R: Rng + ?Sized>(&self, x: &[bool], rng: &mut R) -> (LeafId, BitVec) {
        assert_eq!(x.len(), self.k, "input length mismatch");
        let mut bits = BitVec::new();
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => {
                    let leaf_idx = self.leaf_of_node[id].expect("leaf node is registered");
                    return (leaf_idx, bits);
                }
                Node::Internal { speaker, edges } => {
                    let b = usize::from(x[*speaker]);
                    // Inline cumulative sampling, float-for-float identical
                    // to `Dist::from_weights(..).sample(rng)` — same
                    // summation order, same per-weight normalization, same
                    // round-off fallback — without allocating a weight
                    // vector and a `Dist` at every node of every walk.
                    let sum: f64 = edges.iter().map(|e| e.prob[b]).sum();
                    assert!(sum > 0.0, "edge probabilities sum to one");
                    let u: f64 = rng.random();
                    let mut acc = 0.0;
                    let mut choice = None;
                    for (i, e) in edges.iter().enumerate() {
                        acc += e.prob[b] / sum;
                        if u < acc {
                            choice = Some(i);
                            break;
                        }
                    }
                    let choice = choice.unwrap_or_else(|| {
                        edges
                            .iter()
                            .rposition(|e| e.prob[b] > 0.0)
                            .expect("distribution has positive mass")
                    });
                    bits.extend_from(&edges[choice].label);
                    id = edges[choice].child;
                }
            }
        }
    }

    /// The message distribution at an internal node given the speaker's
    /// input bit: a distribution over the node's edges.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a leaf.
    pub fn message_dist(&self, id: NodeId, input_bit: bool) -> Dist {
        match &self.nodes[id] {
            Node::Leaf { .. } => panic!("node {id} is a leaf"),
            Node::Internal { edges, .. } => Dist::from_weights(
                edges
                    .iter()
                    .map(|e| e.prob[usize::from(input_bit)])
                    .collect(),
            )
            .expect("edge probabilities sum to one"),
        }
    }

    fn check_priors(&self, priors: &[f64]) {
        assert_eq!(
            priors.len(),
            self.k,
            "expected {} priors, got {}",
            self.k,
            priors.len()
        );
        assert!(
            priors.iter().all(|p| (0.0..=1.0).contains(p)),
            "priors must lie in [0,1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Deterministic 2-player sequential AND: player 0 announces its bit; if
    /// 1, player 1 announces its bit.
    fn and2() -> ProtocolTree {
        let mut b = TreeBuilder::new(2);
        let out0a = b.leaf(0);
        let out0b = b.leaf(0);
        let out1 = b.leaf(1);
        let p1 = b.internal(
            1,
            vec![
                (BitVec::from_bools(&[false]), [1.0, 0.0], out0b),
                (BitVec::from_bools(&[true]), [0.0, 1.0], out1),
            ],
        );
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [1.0, 0.0], out0a),
                (BitVec::from_bools(&[true]), [0.0, 1.0], p1),
            ],
        );
        b.finish(root)
    }

    #[test]
    fn structure_and_costs() {
        let t = and2();
        assert_eq!(t.num_players(), 2);
        assert_eq!(t.leaves().len(), 3);
        assert_eq!(t.worst_case_bits(), 2);
        // Uniform inputs: E[bits] = 1·Pr[X₀=0] + 2·Pr[X₀=1] = 1.5.
        assert!((t.expected_bits_product(&[0.5, 0.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn q_decomposition_on_deterministic_tree() {
        let t = and2();
        // The (1,1) leaf: q_{0,1} = q_{1,1} = 1, q_{·,0} = 0.
        let leaf11 = t
            .leaves()
            .iter()
            .find(|l| l.output == 1)
            .expect("AND leaf exists");
        assert_eq!(leaf11.q(0, true), 1.0);
        assert_eq!(leaf11.q(0, false), 0.0);
        assert_eq!(leaf11.prob_given_input(&[true, true]), 1.0);
        assert_eq!(leaf11.prob_given_input(&[true, false]), 0.0);
    }

    #[test]
    fn transcript_dist_sums_to_one() {
        let t = and2();
        for x in [[false, false], [false, true], [true, false], [true, true]] {
            let d = t.transcript_dist_given_input(&x);
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "input {x:?}");
        }
    }

    #[test]
    fn sparse_support_matches_dense_distribution() {
        // Deterministic tree: one leaf, probability exactly 1.
        let t = and2();
        assert!(t.is_deterministic());
        for x in [[false, false], [false, true], [true, false], [true, true]] {
            let dense = t.transcript_dist_given_input(&x);
            let sparse = t.transcript_support_given_input(&x);
            assert_eq!(sparse.len(), 1, "input {x:?}");
            let (leaf, p) = sparse[0];
            assert_eq!(p, 1.0);
            let mut scattered = vec![0.0; dense.len()];
            scattered[leaf] = p;
            assert_eq!(scattered, dense, "input {x:?}");
        }
        // Randomized tree: the sparse walk must scatter back to the dense
        // distribution exactly (the products multiply the same factors).
        let mut b = TreeBuilder::new(2);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let l2 = b.leaf(0);
        let inner = b.internal(
            1,
            vec![
                (BitVec::from_bools(&[false]), [0.7, 0.2], l0),
                (BitVec::from_bools(&[true]), [0.3, 0.8], l1),
            ],
        );
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [0.6, 0.25], l2),
                (BitVec::from_bools(&[true]), [0.4, 0.75], inner),
            ],
        );
        let t = b.finish(root);
        assert!(!t.is_deterministic());
        for x in [[false, false], [false, true], [true, false], [true, true]] {
            let dense = t.transcript_dist_given_input(&x);
            let mut scattered = vec![0.0; dense.len()];
            for (leaf, p) in t.transcript_support_given_input(&x) {
                assert!(p > 0.0);
                scattered[leaf] += p;
            }
            for (s, d) in scattered.iter().zip(&dense) {
                assert!((s - d).abs() < 1e-15, "input {x:?}: {s} vs {d}");
            }
        }
    }

    #[test]
    fn sparse_support_prunes_zero_probability_branches() {
        // A degenerate randomized node (probability-0 edge) must not appear
        // in the support even though the leaf exists.
        let mut b = TreeBuilder::new(1);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [1.0, 0.3], l0),
                (BitVec::from_bools(&[true]), [0.0, 0.7], l1),
            ],
        );
        let t = b.finish(root);
        let support = t.transcript_support_given_input(&[false]);
        assert_eq!(support.len(), 1);
        assert_eq!(support[0].1, 1.0);
        assert_eq!(t.transcript_support_given_input(&[true]).len(), 2);
    }

    #[test]
    fn information_cost_of_deterministic_tree_is_transcript_entropy() {
        // For a deterministic protocol, I(Π; X) = H(Π).
        let t = and2();
        let priors = [0.5, 0.5];
        let probs: Vec<f64> = t
            .leaves()
            .iter()
            .map(|l| l.prob_under_product(&priors))
            .collect();
        let h = bci_info::entropy::entropy(&probs);
        let ic = t.information_cost_product(&priors);
        assert!((ic - h).abs() < 1e-12, "ic={ic} h={h}");
    }

    #[test]
    fn factorized_ic_matches_bruteforce() {
        let t = and2();
        for priors in [[0.5, 0.5], [0.9, 0.1], [1.0 / 3.0, 0.25]] {
            let fast = t.information_cost_product(&priors);
            let slow = t.information_cost_bruteforce(&priors);
            assert!(
                (fast - slow).abs() < 1e-10,
                "priors {priors:?}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn randomized_node_leaks_less() {
        // Player 0 sends its bit through a BSC(0.4): IC should be the BSC
        // capacity-like value, well below 1, and match brute force.
        let mut b = TreeBuilder::new(1);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [0.6, 0.4], l0),
                (BitVec::from_bools(&[true]), [0.4, 0.6], l1),
            ],
        );
        let t = b.finish(root);
        let ic = t.information_cost_product(&[0.5]);
        let bf = t.information_cost_bruteforce(&[0.5]);
        assert!((ic - bf).abs() < 1e-12);
        let h04 = -(0.4f64 * 0.4f64.log2() + 0.6 * 0.6f64.log2());
        assert!((ic - (1.0 - h04)).abs() < 1e-12, "BSC(0.4) information");
    }

    #[test]
    fn zero_and_one_priors_are_degenerate() {
        let t = and2();
        assert_eq!(t.information_cost_product(&[0.0, 0.0]), 0.0);
        assert_eq!(t.information_cost_product(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn posterior_matches_bayes() {
        let t = and2();
        // After the (1,1) transcript, X₀ is certainly 1 whatever the prior.
        let leaf11 = t.leaves().iter().find(|l| l.output == 1).unwrap();
        assert_eq!(leaf11.posterior_one(0, 0.3), Some(1.0));
        // After player 0 says 0 (1-bit transcript), X₁ keeps its prior.
        let leaf0 = t
            .leaves()
            .iter()
            .find(|l| l.path_bits == 1)
            .expect("the short transcript");
        assert_eq!(leaf0.posterior_one(1, 0.3), Some(0.3));
        // Unreachable leaf for a 0/1-prior: posterior is None.
        assert_eq!(leaf11.posterior_one(0, 0.0), None);
    }

    /// A random tree over `k` players: random speakers, 2–3 edges per
    /// internal node, and a mix of deterministic (0/1) and smooth edge
    /// probabilities — exercising neutral `(1,1)` q-pairs, exact-zero leaf
    /// probabilities, and dense randomized paths alike.
    fn random_tree(k: usize, depth: usize, rng: &mut rand_chacha::ChaCha8Rng) -> ProtocolTree {
        fn grow(
            b: &mut TreeBuilder,
            k: usize,
            depth: usize,
            rng: &mut rand_chacha::ChaCha8Rng,
        ) -> NodeId {
            if depth == 0 || rng.random_bool(0.25) {
                return b.leaf(rng.random_range(0..2));
            }
            let speaker = rng.random_range(0..k);
            let n_edges = 2 + usize::from(rng.random_bool(0.4));
            let mut probs = [[0.0f64; 3]; 2];
            for row in &mut probs {
                if rng.random_bool(0.3) {
                    // Deterministic row: all mass on one edge.
                    row[rng.random_range(0..n_edges)] = 1.0;
                } else {
                    let raw: Vec<f64> = (0..n_edges).map(|_| rng.random::<f64>() + 0.05).collect();
                    let sum: f64 = raw.iter().sum();
                    for (slot, r) in row.iter_mut().zip(&raw) {
                        *slot = r / sum;
                    }
                }
            }
            let labels = [
                BitVec::from_bools(&[false]),
                BitVec::from_bools(&[true, false]),
                BitVec::from_bools(&[true, true]),
            ];
            let edges: Vec<(BitVec, [f64; 2], NodeId)> = (0..n_edges)
                .map(|e| {
                    let child = grow(b, k, depth - 1, rng);
                    (labels[e].clone(), [probs[0][e], probs[1][e]], child)
                })
                .collect();
            b.internal(speaker, edges)
        }
        let mut b = TreeBuilder::new(k);
        // Force at least one internal node so the tree is never a bare leaf.
        let speaker = rng.random_range(0..k);
        let left = grow(&mut b, k, depth, rng);
        let right = grow(&mut b, k, depth, rng);
        let root = b.internal(
            speaker,
            vec![
                (BitVec::from_bools(&[false]), [1.0, 0.0], left),
                (BitVec::from_bools(&[true]), [0.0, 1.0], right),
            ],
        );
        b.finish(root)
    }

    #[test]
    fn batched_ic_matches_dense_bit_for_bit_on_randomized_trees() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xBA7C);
        for trial in 0..20 {
            let k = 1 + (trial % 5);
            let t = random_tree(k, 4, &mut rng);
            // Slice families: cic_hard-shaped (one 0.0 prior, rest 1−1/k),
            // degenerate all-0/all-1, uniform, and random mixtures that
            // include exact 0.0/1.0 entries.
            let mut slices: Vec<Vec<f64>> = Vec::new();
            for z in 0..k {
                let mut priors = vec![1.0 - 1.0 / k as f64; k];
                priors[z] = 0.0;
                slices.push(priors);
            }
            slices.push(vec![0.0; k]);
            slices.push(vec![1.0; k]);
            slices.push(vec![0.5; k]);
            for _ in 0..6 {
                slices.push(
                    (0..k)
                        .map(|_| match rng.random_range(0..4) {
                            0 => 0.0,
                            1 => 1.0,
                            2 => 0.25,
                            _ => rng.random::<f64>(),
                        })
                        .collect(),
                );
            }
            let batched = t.information_cost_product_many(&slices);
            assert_eq!(batched.len(), slices.len());
            for (slice, b) in slices.iter().zip(&batched) {
                let dense = t.information_cost_product(slice);
                assert_eq!(
                    b.to_bits(),
                    dense.to_bits(),
                    "trial {trial}, k {k}, slice {slice:?}: batched {b} vs dense {dense}"
                );
            }
        }
    }

    #[test]
    fn skip_check_holds_across_the_prior_range() {
        // Documents the analysis behind the runtime skip check: for every
        // f64 p ∈ [0,1], fl(1−p) errs by at most a half-ulp (2⁻⁵⁴, since
        // 1−p ∈ [0.5, 1] where the ulp is 2⁻⁵³), so fl(fl(1−p)+p) lands
        // within a half-ulp of 1.0 and ties round to even — exactly 1.0.
        // The fallback branch is therefore unreachable for valid priors;
        // it guards future refactors of the posterior formulas, not data.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut priors = vec![
            0.0,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            0.5 - f64::EPSILON / 4.0,
            0.5,
            0.5 + f64::EPSILON / 2.0,
            1.0 - f64::EPSILON / 2.0,
            1.0,
        ];
        priors.extend((0..10_000).map(|_| rng.random::<f64>()));
        for p in priors {
            let mass = (1.0 - p) * 1.0 + p * 1.0;
            assert_eq!(mass, 1.0, "p = {p:e}");
            let post1 = p * 1.0 / mass;
            let g = xlog2_ratio(post1, p) + xlog2_ratio(1.0 - post1, 1.0 - p);
            assert_eq!(g.to_bits(), 0, "p = {p:e}");
        }
    }

    #[test]
    fn posterior_one_pins_zero_one_prior_limits() {
        let t = and2();
        let leaf11 = t.leaves().iter().find(|l| l.output == 1).unwrap();
        let leaf0 = t.leaves().iter().find(|l| l.path_bits == 1).unwrap();
        // p = 0: either the leaf is unreachable (None) or the posterior is
        // exactly 0 — a zero prior can never be updated upward.
        assert_eq!(leaf11.posterior_one(0, 0.0), None);
        assert_eq!(leaf0.posterior_one(1, 0.0), Some(0.0));
        // p = 1: symmetric — the posterior is exactly 1 where defined.
        assert_eq!(leaf11.posterior_one(0, 1.0), Some(1.0));
        assert_eq!(leaf0.posterior_one(1, 1.0), Some(1.0));
        // A player with no writes on the path keeps its prior bitwise.
        assert_eq!(leaf0.posterior_one(1, 0.3), Some(0.3));
    }

    #[test]
    fn error_against_and() {
        let t = and2();
        let and = |x: &[bool]| usize::from(x.iter().all(|&b| b));
        assert_eq!(t.worst_case_error(and), 0.0);
        // Against OR it errs on e.g. (1,0).
        let or = |x: &[bool]| usize::from(x.iter().any(|&b| b));
        assert!(t.worst_case_error(or) > 0.99);
    }

    #[test]
    fn simulate_matches_exact_distribution() {
        // Randomized tree: check simulated leaf frequencies against the exact
        // transcript distribution.
        let mut b = TreeBuilder::new(1);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [0.7, 0.2], l0),
                (BitVec::from_bools(&[true]), [0.3, 0.8], l1),
            ],
        );
        let t = b.finish(root);
        let x = [true];
        let exact = t.transcript_dist_given_input(&x);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mut counts = vec![0usize; t.leaves().len()];
        for _ in 0..n {
            let (leaf, _) = t.simulate(&x, &mut rng);
            counts[leaf] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 / n as f64 - exact[i]).abs() < 0.01, "leaf {i}");
        }
    }

    #[test]
    fn simulate_transcript_bits_follow_labels() {
        let t = and2();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let (_, bits) = t.simulate(&[true, true], &mut rng);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![true, true]);
        let (_, bits) = t.simulate(&[false, true], &mut rng);
        assert_eq!(bits.iter().collect::<Vec<_>>(), vec![false]);
    }

    #[test]
    fn message_dist_reflects_input() {
        let t = and2();
        let d0 = t.message_dist(t.root(), false);
        assert_eq!(d0.prob(0), 1.0);
        let d1 = t.message_dist(t.root(), true);
        assert_eq!(d1.prob(1), 1.0);
    }

    #[test]
    fn chain_rule_sums_to_information_cost() {
        // Section 6's identity on the deterministic AND tree...
        let t = and2();
        for priors in [[0.5, 0.5], [0.9, 0.2], [0.3, 0.7]] {
            let total: f64 = t.information_by_node(&priors).iter().map(|(_, c)| c).sum();
            let ic = t.information_cost_product(&priors);
            assert!(
                (total - ic).abs() < 1e-12,
                "priors {priors:?}: {total} vs {ic}"
            );
        }
        // ...and on a randomized tree.
        let mut b = TreeBuilder::new(2);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let l2 = b.leaf(0);
        let inner = b.internal(
            1,
            vec![
                (BitVec::from_bools(&[false]), [0.7, 0.2], l0),
                (BitVec::from_bools(&[true]), [0.3, 0.8], l1),
            ],
        );
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [0.6, 0.25], l2),
                (BitVec::from_bools(&[true]), [0.4, 0.75], inner),
            ],
        );
        let t = b.finish(root);
        let priors = [0.45, 0.8];
        let total: f64 = t.information_by_node(&priors).iter().map(|(_, c)| c).sum();
        let ic = t.information_cost_product(&priors);
        assert!((total - ic).abs() < 1e-12, "{total} vs {ic}");
    }

    #[test]
    fn chain_rule_contributions_are_nonnegative_and_localized() {
        let t = and2();
        let contributions = t.information_by_node(&[0.5, 0.5]);
        assert_eq!(contributions.len(), 2, "two internal nodes");
        for (node, c) in &contributions {
            assert!(*c >= 0.0, "node {node}: negative information {c}");
        }
        // The root (player 0's announcement, uniform bit) reveals exactly
        // 1 bit; player 1 speaks with probability ½ and reveals 1 bit then.
        let root_c = contributions
            .iter()
            .find(|(n, _)| *n == t.root())
            .expect("root present")
            .1;
        assert!((root_c - 1.0).abs() < 1e-12);
        let other_c: f64 = contributions
            .iter()
            .filter(|(n, _)| *n != t.root())
            .map(|(_, c)| c)
            .sum();
        assert!((other_c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depth_profile_sums_to_ic_and_decays_for_sequential_protocols() {
        let t = and2();
        let priors = [0.8, 0.8];
        let profile = t.information_by_depth(&priors);
        let ic = t.information_cost_product(&priors);
        let total: f64 = profile.iter().sum();
        assert!((total - ic).abs() < 1e-12);
        assert_eq!(profile.len(), 2);
        // Later rounds only run conditionally, so they reveal less in
        // expectation (for this protocol and prior).
        assert!(profile[1] < profile[0]);
    }

    #[test]
    fn support_ic_matches_product_ic_on_product_support() {
        let t = and2();
        let priors = [0.7, 0.4];
        let mut support = Vec::new();
        for xi in 0..4u32 {
            let x: Vec<bool> = (0..2).map(|i| (xi >> i) & 1 == 1).collect();
            let w: f64 = x
                .iter()
                .zip(&priors)
                .map(|(&b, &p)| if b { p } else { 1.0 - p })
                .product();
            support.push((w, x));
        }
        let via_support = t.information_cost_support(&support);
        let via_product = t.information_cost_product(&priors);
        assert!((via_support - via_product).abs() < 1e-12);
    }

    #[test]
    fn support_ic_handles_correlated_inputs() {
        // X₀ = X₁ uniformly: the first message already reveals everything
        // about both bits, and the deterministic transcript has entropy 1.
        let t = and2();
        let support = vec![(0.5, vec![false, false]), (0.5, vec![true, true])];
        let ic = t.information_cost_support(&support);
        assert!((ic - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn builder_rejects_unnormalized_edges() {
        let mut b = TreeBuilder::new(1);
        let l = b.leaf(0);
        b.internal(0, vec![(BitVec::from_bools(&[true]), [0.5, 1.0], l)]);
    }

    #[test]
    #[should_panic(expected = "prefix-free")]
    fn builder_rejects_prefix_labels() {
        let mut b = TreeBuilder::new(1);
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        b.internal(
            0,
            vec![
                (BitVec::from_bools(&[true]), [0.5, 0.5], l0),
                (BitVec::from_bools(&[true, false]), [0.5, 0.5], l1),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "reachable twice")]
    fn finish_rejects_dags() {
        let mut b = TreeBuilder::new(1);
        let l = b.leaf(0);
        let root = b.internal(
            0,
            vec![
                (BitVec::from_bools(&[false]), [0.5, 0.5], l),
                (BitVec::from_bools(&[true]), [0.5, 0.5], l),
            ],
        );
        b.finish(root);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_speaker() {
        let mut b = TreeBuilder::new(2);
        let l = b.leaf(0);
        b.internal(2, vec![(BitVec::from_bools(&[true]), [1.0, 1.0], l)]);
    }
}
