//! The `bci load` harness: N synthetic players × M sessions against a
//! coordinator, with deadlines, percentiles, and a `bci.bench.v1` row.
//!
//! Two coordinator shapes are driven with the *same* workload and the
//! same per-session seeding discipline, so their transcript digests are
//! directly comparable (to each other and to the in-process transport):
//!
//! * [`CoordinatorKind::Mux`] — the `crates/mux` reactor daemon,
//!   multiplexing up to `max_inflight` concurrent sessions over one
//!   pooled connection per player;
//! * [`CoordinatorKind::ThreadPerConn`] — the PR-5 `bci-net`
//!   coordinator, which owns one session at a time and runs the M
//!   sessions back to back over persistent v1 connections. This is the
//!   baseline the mux daemon is measured against.
//!
//! By default each run is **verified**: player 0's replicas are digested
//! at outcome time, folded in session-id order, and compared against an
//! [`InProcessTransport`] replay of the identical seeds — an end-to-end
//! bit-identity check that crosses the wire, not a daemon self-report.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bci_blackboard::runner::derive_trial_seed;
use bci_fabric::session::SessionOutcome;
use bci_fabric::transport::{InProcessTransport, SessionContext, Transport};
use bci_net::admin::{AdminClient, AdminServer};
use bci_net::client::{connect_player, run_player, PlayerBehavior};
use bci_net::coordinator::{accept_roster, run_coordinator_session, SessionInfo};
use bci_net::frame::NetError;
use bci_net::overhead::{fold_digest_u64, transcript_digest, SWEEP_DENSITY};
use bci_net::transport::WireStats;
use bci_net::NetConfig;
use bci_protocols::disj::broadcast::BroadcastDisj;
use bci_protocols::workload;
use bci_telemetry::hist::TURN_LATENCY_US_BOUNDS;
use bci_telemetry::{obj, Histogram, Json, Recorder, Snapshot};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::daemon::{accept_mux_roster, run_mux_daemon_with_admin, MuxOptions, MuxRunReport};
use crate::player::{connect_mux_player, run_mux_player};

/// Which coordinator a load run drove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordinatorKind {
    /// The multiplexed reactor daemon (`crates/mux`).
    Mux,
    /// The mux daemon with a live admin scraper attached
    /// (`LoadSpec::scrape_interval`) — same workload, same digests;
    /// comparing its row against [`CoordinatorKind::Mux`] measures the
    /// observation overhead.
    MuxScraped,
    /// The single-session, thread-per-connection coordinator
    /// (`bci_net::coordinator`), running sessions sequentially.
    ThreadPerConn,
    /// The thread-per-connection coordinator scraped through its
    /// dedicated [`AdminServer`] listener.
    ThreadPerConnScraped,
}

impl CoordinatorKind {
    /// Stable label used in reports and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            CoordinatorKind::Mux => "mux",
            CoordinatorKind::MuxScraped => "mux+scrape",
            CoordinatorKind::ThreadPerConn => "thread-per-conn",
            CoordinatorKind::ThreadPerConnScraped => "thread-per-conn+scrape",
        }
    }
}

/// Everything one load run needs.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Sessions to run (`M`).
    pub sessions: u64,
    /// Synthetic players (`N`, the roster size `k`).
    pub players: usize,
    /// DISJ universe size.
    pub n: usize,
    /// Workload density (probability each element is in a player's set).
    pub density: f64,
    /// Master seed; session `s` derives `derive_trial_seed(seed, s)`.
    pub seed: u64,
    /// Per-session wall-clock budget, enforced by the coordinator.
    pub deadline: Option<Duration>,
    /// Mux-only: cap on concurrently in-flight sessions.
    pub max_inflight: usize,
    /// Socket configuration shared by both sides.
    pub config: NetConfig,
    /// Verify transcripts against the in-process transport.
    pub verify: bool,
    /// Drive a remote coordinator instead of an in-process one. The
    /// remote daemon owns session admission; this side only plays.
    pub addr: Option<SocketAddr>,
    /// Attach a live admin scraper polling the coordinator's stats
    /// channel at this interval while the run is in flight. The report
    /// kind flips to the `*Scraped` variant and records how many
    /// snapshots landed — the digest discipline is unchanged, which is
    /// exactly the point: observation must not perturb transcripts.
    pub scrape_interval: Option<Duration>,
}

impl LoadSpec {
    /// A spec with the harness defaults: DISJ over `n = 64` at the sweep
    /// density, 30s per-session deadline, verification on.
    pub fn new(sessions: u64, players: usize) -> Self {
        LoadSpec {
            sessions,
            players,
            n: 64,
            density: SWEEP_DENSITY,
            seed: 1,
            deadline: Some(Duration::from_secs(30)),
            max_inflight: crate::daemon::DEFAULT_MAX_INFLIGHT,
            config: NetConfig::default(),
            verify: true,
            addr: None,
            scrape_interval: None,
        }
    }
}

/// What one load run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Which coordinator was driven.
    pub kind: CoordinatorKind,
    /// Sessions the run was asked for.
    pub sessions: u64,
    /// Sessions that ended `Completed`.
    pub completed: u64,
    /// Sessions that timed out, aborted, or never finished.
    pub failed: u64,
    /// Roster-complete → last outcome.
    pub elapsed: Duration,
    /// Turn service latencies. For the mux daemon this is the
    /// authoritative grant→reply histogram (`mux.turn_latency_us`); for
    /// the thread baseline it is `net.hop_rtt_us`; for a remote daemon
    /// it is the client-observed inter-broadcast gap.
    pub turn_latency: Histogram,
    /// Wire accounting (coordinator view when available, else the
    /// client view summed over players).
    pub wire: WireStats,
    /// Connect retries summed over players.
    pub reconnects: u64,
    /// End-to-end transcript digest fold (player 0's replicas for mux,
    /// the coordinator's boards for the thread baseline), in session-id
    /// order.
    pub digest: u64,
    /// The in-process replay's digest fold, when verification ran.
    pub digest_inprocess: Option<u64>,
    /// Stats snapshots the live scraper landed while the run was in
    /// flight (0 when no scraper was attached).
    pub scrapes: u64,
    /// The last snapshot the scraper saw, for post-run inspection.
    pub scrape_snapshot: Option<Snapshot>,
}

impl LoadReport {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Wire bits spent per transcript bit (0.0 when no transcript).
    pub fn wire_bits_per_transcript_bit(&self) -> f64 {
        self.wire.overhead_ratio()
    }

    /// Whether the end-to-end digest matched the in-process replay.
    /// `None` when verification was skipped.
    pub fn verified(&self) -> Option<bool> {
        self.digest_inprocess.map(|d| d == self.digest)
    }
}

/// Replays every session on [`InProcessTransport`] with the identical
/// seeding discipline and folds the transcript digests in session order.
pub fn inprocess_digest_fold(spec: &LoadSpec) -> u64 {
    let protocol = BroadcastDisj::new(spec.n, spec.players);
    let mut fold = 0u64;
    for session in 0..spec.sessions {
        let seed = derive_trial_seed(spec.seed, session);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs = workload::random_sets(spec.n, spec.players, spec.density, &mut rng);
        let ctx = SessionContext {
            session_id: session,
            deadline: None,
            faults: &[],
            recorder: &bci_fabric::transport::DISABLED_RECORDER,
        };
        let result = InProcessTransport.run_session(&protocol, &inputs, rng, &ctx);
        fold = fold_digest_u64(fold, transcript_digest(&result.board));
    }
    fold
}

fn fold_sorted_digests(digests: &[(u64, u64)]) -> u64 {
    digests
        .iter()
        .fold(0u64, |acc, &(_, d)| fold_digest_u64(acc, d))
}

/// What the live scraper observed.
struct ScrapeRun {
    scrapes: u64,
    last: Option<Snapshot>,
}

/// Polls the coordinator's admin channel every `interval` until `stop`.
/// Waits on `ready` first so the dial never races roster assembly, and
/// swallows every error — a scraper must never be able to fail the run
/// it is watching (a failed fetch just drops the connection and redials
/// on the next tick).
fn run_scraper(
    addr: SocketAddr,
    interval: Duration,
    config: &NetConfig,
    ready: &AtomicBool,
    stop: &AtomicBool,
) -> ScrapeRun {
    let mut out = ScrapeRun {
        scrapes: 0,
        last: None,
    };
    while !ready.load(Ordering::Acquire) {
        if stop.load(Ordering::Acquire) {
            return out;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let addr = addr.to_string();
    // A scraper must never outlive the run it observes: the load
    // listener stays bound after the daemon exits, so a full-fat
    // connect (5 attempts x 10s handshake timeout) against a dead
    // coordinator would stall the harness for ~50s. One attempt with a
    // short timeout keeps the tail bounded; the loop redials anyway.
    let mut config = config.clone();
    config.connect_attempts = 1;
    config.io_timeout = config.io_timeout.min(Duration::from_millis(500));
    let mut client = None;
    while !stop.load(Ordering::Acquire) {
        if client.is_none() {
            client = AdminClient::connect(&addr, &config).ok();
        }
        if let Some(c) = client.as_mut() {
            match c.fetch_snapshot() {
                Ok(snap) => {
                    out.scrapes += 1;
                    out.last = Some(snap);
                }
                Err(_) => client = None, // daemon gone or mid-shutdown
            }
        }
        std::thread::sleep(interval);
    }
    out
}

/// Drives the multiplexed coordinator. With `spec.addr` unset, an
/// in-process daemon is spun up on an ephemeral loopback listener; the
/// calling thread hosts the reactor and `spec.players` client threads
/// dial in through the full connect path. With `spec.addr` set, only
/// the players run, against the remote daemon.
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, NetError> {
    let protocol = BroadcastDisj::new(spec.n, spec.players);
    let protocol_id = "disj";
    let recorder = Recorder::metrics_only();

    type MuxRun = (Option<MuxRunReport>, Vec<PlayerRun>, Option<ScrapeRun>);
    let (daemon_report, player_reports, scrape): MuxRun = match spec.addr {
        Some(addr) => {
            // Remote daemon: the admin channel (if any) lives at the same
            // address, multiplexed over the roster listener.
            let ready = AtomicBool::new(true);
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| -> Result<MuxRun, NetError> {
                let (ready, stop) = (&ready, &stop);
                let scraper = spec.scrape_interval.map(|interval| {
                    scope.spawn(move || run_scraper(addr, interval, &spec.config, ready, stop))
                });
                let reports = run_players(&protocol, protocol_id, addr, spec);
                stop.store(true, Ordering::Release);
                let scrape = scraper.map(|h| h.join().expect("scraper thread panicked"));
                Ok((None, reports?, scrape))
            })?
        }
        None => {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::Io)?;
            let addr = listener.local_addr().map_err(NetError::Io)?;
            let info = SessionInfo {
                protocol_id: protocol_id.to_string(),
                players: spec.players as u32,
                seed: spec.seed,
                params: vec![spec.n as u64, spec.sessions],
            };
            let opts = MuxOptions {
                deadline: spec.deadline,
                max_inflight: spec.max_inflight,
                config: spec.config.clone(),
                dump_flight_on_failure: false,
            };
            let ready = AtomicBool::new(false);
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| -> Result<MuxRun, NetError> {
                let players = scope.spawn(|| run_players(&protocol, protocol_id, addr, spec));
                let (ready, stop) = (&ready, &stop);
                let scraper = spec.scrape_interval.map(|interval| {
                    scope.spawn(move || run_scraper(addr, interval, &spec.config, ready, stop))
                });
                // Everything the daemon side does is wrapped so the stop
                // flag is set on *every* exit path — a roster failure must
                // not leave the scraper thread spinning.
                let run = (|| -> Result<MuxRunReport, NetError> {
                    let roster_deadline = Instant::now() + spec.config.io_timeout;
                    let conns = accept_mux_roster(
                        &listener,
                        &info,
                        &spec.config,
                        roster_deadline,
                        &recorder,
                    )?;
                    ready.store(true, Ordering::Release);
                    let n = spec.n;
                    let density = spec.density;
                    let k = spec.players;
                    Ok(run_mux_daemon_with_admin(
                        &protocol,
                        conns,
                        spec.scrape_interval.is_some().then_some(&listener),
                        spec.sessions,
                        spec.seed,
                        |_, rng| workload::random_sets(n, k, density, rng),
                        &opts,
                        &recorder,
                    ))
                })();
                stop.store(true, Ordering::Release);
                let scrape = scraper.map(|h| h.join().expect("scraper thread panicked"));
                let report = run?;
                let player_reports = players.join().expect("player host thread panicked")?;
                Ok((Some(report), player_reports, scrape))
            })?
        }
    };

    // Player 0 collects replica digests; its fold is the end-to-end
    // transcript identity for the whole run.
    let digest = fold_sorted_digests(&player_reports[0].digests);
    let mut reconnects = 0u64;
    let mut client_wire = WireStats::default();
    for pr in &player_reports {
        reconnects += pr.reconnects as u64;
        client_wire.merge(&pr.wire);
    }

    let (completed, failed, elapsed, wire, turn_latency) = match &daemon_report {
        Some(report) => {
            debug_assert_eq!(
                report.digest_fold(),
                digest,
                "daemon and player-0 transcript folds diverged"
            );
            let hist = recorder
                .snapshot()
                .hist("mux.turn_latency_us")
                .cloned()
                .unwrap_or_else(|| Histogram::new(TURN_LATENCY_US_BOUNDS));
            let mut wire = report.wire;
            wire.reconnects = reconnects;
            (
                report.completed() as u64,
                spec.sessions - report.completed() as u64,
                report.elapsed,
                wire,
                hist,
            )
        }
        None => {
            // Remote daemon: client-side view only.
            let completed = player_reports[0].completed;
            let mut hist = Histogram::new(TURN_LATENCY_US_BOUNDS);
            hist.merge(&player_reports[0].turn_gaps);
            let elapsed = player_reports[0].elapsed;
            client_wire.reconnects = reconnects;
            client_wire.transcript_bits = player_reports[0].transcript_bits;
            (
                completed,
                spec.sessions.saturating_sub(completed),
                elapsed,
                client_wire,
                hist,
            )
        }
    };

    let digest_inprocess = spec.verify.then(|| inprocess_digest_fold(spec));
    let (scrapes, scrape_snapshot) = match scrape {
        Some(s) => (s.scrapes, s.last),
        None => (0, None),
    };
    Ok(LoadReport {
        kind: if spec.scrape_interval.is_some() {
            CoordinatorKind::MuxScraped
        } else {
            CoordinatorKind::Mux
        },
        sessions: spec.sessions,
        completed,
        failed,
        elapsed,
        turn_latency,
        wire,
        reconnects,
        digest,
        digest_inprocess,
        scrapes,
        scrape_snapshot,
    })
}

/// A player report plus harness-side timing.
struct PlayerRun {
    digests: Vec<(u64, u64)>,
    turn_gaps: Histogram,
    wire: WireStats,
    reconnects: u32,
    completed: u64,
    elapsed: Duration,
    transcript_bits: u64,
}

/// Spawns one thread per synthetic player and joins them.
fn run_players(
    protocol: &BroadcastDisj,
    protocol_id: &str,
    addr: SocketAddr,
    spec: &LoadSpec,
) -> Result<Vec<PlayerRun>, NetError> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.players)
            .map(|player| {
                scope.spawn(move || -> Result<PlayerRun, NetError> {
                    let (conn, _ack, retries) =
                        connect_mux_player(addr, player, protocol_id, &spec.config, spec.seed)?;
                    let started = Instant::now();
                    let mut report =
                        run_mux_player(protocol, conn, player, &spec.config, player == 0)?;
                    report.reconnects = retries;
                    Ok(PlayerRun {
                        digests: std::mem::take(&mut report.digests),
                        turn_gaps: report.turn_gaps,
                        wire: report.wire,
                        reconnects: retries,
                        completed: report.completed,
                        elapsed: started.elapsed(),
                        transcript_bits: report.transcript_bits,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("player thread panicked"))
            .collect()
    })
}

/// Drives the PR-5 thread-per-connection coordinator over the same
/// workload: the roster connects once, then the `M` sessions run
/// sequentially (that coordinator owns one sequencer at a time — the
/// very bottleneck the mux daemon removes). Always in-process.
pub fn run_load_thread_baseline(spec: &LoadSpec) -> Result<LoadReport, NetError> {
    let protocol = BroadcastDisj::new(spec.n, spec.players);
    let protocol_id = "disj";
    let recorder = Recorder::metrics_only();
    let listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::Io)?;
    let addr = listener.local_addr().map_err(NetError::Io)?;
    let info = SessionInfo {
        protocol_id: protocol_id.to_string(),
        players: spec.players as u32,
        seed: spec.seed,
        params: vec![spec.n as u64, spec.sessions],
    };

    // The v1 coordinator has no mux envelope to ride, so its stats
    // channel is a dedicated listener served by `AdminServer` threads.
    let admin = match spec.scrape_interval {
        Some(_) => {
            let admin_listener = TcpListener::bind("127.0.0.1:0").map_err(NetError::Io)?;
            Some(AdminServer::spawn(
                admin_listener,
                recorder.clone(),
                spec.config.clone(),
            )?)
        }
        None => None,
    };
    let scrape_ready = AtomicBool::new(true);
    let scrape_stop = AtomicBool::new(false);

    let (digest, completed, elapsed, wire, reconnects, scrape) =
        std::thread::scope(|scope| -> Result<_, NetError> {
            let handles: Vec<_> = (0..spec.players)
                .map(|player| {
                    scope.spawn(move || -> Result<u32, NetError> {
                        let (conn, _ack, retries) =
                            connect_player(addr, player, protocol_id, &spec.config, spec.seed)?;
                        run_player(
                            &BroadcastDisj::new(spec.n, spec.players),
                            conn,
                            player,
                            PlayerBehavior::default(),
                            &spec.config,
                        )?;
                        Ok(retries)
                    })
                })
                .collect();
            let (ready, stop) = (&scrape_ready, &scrape_stop);
            let scraper = admin
                .as_ref()
                .zip(spec.scrape_interval)
                .map(|(server, interval)| {
                    let admin_addr = server.local_addr();
                    scope
                        .spawn(move || run_scraper(admin_addr, interval, &spec.config, ready, stop))
                });

            let run = (|| -> Result<_, NetError> {
                let roster_deadline = Instant::now() + spec.config.io_timeout;
                let mut conns = accept_roster(&listener, &info, &spec.config, roster_deadline)?;
                let start = Instant::now();
                let mut digest = 0u64;
                let mut completed = 0u64;
                let mut transcript_bits = 0u64;
                for session in 0..spec.sessions {
                    let seed = derive_trial_seed(spec.seed, session);
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    let inputs =
                        workload::random_sets(spec.n, spec.players, spec.density, &mut rng);
                    let ctx = SessionContext {
                        session_id: session,
                        deadline: spec.deadline,
                        faults: &[],
                        recorder: &recorder,
                    };
                    let remaining = (spec.sessions - 1 - session) as u32;
                    let result = run_coordinator_session(
                        &protocol,
                        &inputs,
                        rng,
                        &ctx,
                        &mut conns,
                        &spec.config,
                        session as u32,
                        remaining,
                    );
                    digest = fold_digest_u64(digest, transcript_digest(&result.board));
                    transcript_bits += result.board.total_bits() as u64;
                    if result.outcome == SessionOutcome::Completed {
                        completed += 1;
                    }
                }
                let elapsed = start.elapsed();
                let mut wire = WireStats {
                    transcript_bits,
                    ..WireStats::default()
                };
                for pc in &conns {
                    wire.bytes_tx += pc.conn.bytes_written;
                    wire.bytes_rx += pc.conn.bytes_read();
                    wire.frames_tx += pc.conn.frames_written;
                    wire.frames_rx += pc.conn.frames_read();
                    wire.payload_bytes_tx += pc.conn.payload_bytes_written;
                    wire.payload_bytes_rx += pc.conn.payload_bytes_read();
                }
                drop(conns); // hang up so any stuck player thread exits
                let mut reconnects = 0u64;
                for h in handles {
                    if let Ok(retries) = h.join().expect("player thread panicked") {
                        reconnects += retries as u64;
                    }
                }
                Ok((digest, completed, elapsed, wire, reconnects))
            })();
            stop.store(true, Ordering::Release);
            let scrape = scraper.map(|h| h.join().expect("scraper thread panicked"));
            let (digest, completed, elapsed, wire, reconnects) = run?;
            Ok((digest, completed, elapsed, wire, reconnects, scrape))
        })?;
    if let Some(server) = admin {
        server.stop();
    }

    let turn_latency = recorder
        .snapshot()
        .hist("net.hop_rtt_us")
        .cloned()
        .unwrap_or_else(Histogram::latency_us);
    let mut wire = wire;
    wire.reconnects = reconnects;
    let digest_inprocess = spec.verify.then(|| inprocess_digest_fold(spec));
    let (scrapes, scrape_snapshot) = match scrape {
        Some(s) => (s.scrapes, s.last),
        None => (0, None),
    };
    Ok(LoadReport {
        kind: if spec.scrape_interval.is_some() {
            CoordinatorKind::ThreadPerConnScraped
        } else {
            CoordinatorKind::ThreadPerConn
        },
        sessions: spec.sessions,
        completed,
        failed: spec.sessions - completed,
        elapsed,
        turn_latency,
        wire,
        reconnects,
        digest,
        digest_inprocess,
        scrapes,
        scrape_snapshot,
    })
}

/// The bench document's `meta` object. When the report set contains both
/// a scraped and an unscraped mux run of the same workload, the pair is
/// distilled into a scrape-overhead measurement: sessions/sec with and
/// without a live admin scraper attached.
fn bench_meta(spec: &LoadSpec, reports: &[LoadReport]) -> Json {
    let mut meta = vec![
        ("seed".to_owned(), Json::UInt(spec.seed)),
        ("sessions".to_owned(), Json::UInt(spec.sessions)),
        ("players".to_owned(), Json::UInt(spec.players as u64)),
        ("n".to_owned(), Json::UInt(spec.n as u64)),
        (
            "max_inflight".to_owned(),
            Json::UInt(spec.max_inflight as u64),
        ),
    ];
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    let unscraped = reports.iter().find(|r| r.kind == CoordinatorKind::Mux);
    let scraped = reports
        .iter()
        .find(|r| r.kind == CoordinatorKind::MuxScraped);
    if let (Some(base), Some(with)) = (unscraped, scraped) {
        let base_rate = base.sessions_per_sec();
        let with_rate = with.sessions_per_sec();
        meta.push((
            "sessions_per_sec_unscraped".to_owned(),
            Json::Num(round2(base_rate)),
        ));
        meta.push((
            "sessions_per_sec_scraped".to_owned(),
            Json::Num(round2(with_rate)),
        ));
        if let Some(interval) = spec.scrape_interval {
            meta.push((
                "scrape_interval_ms".to_owned(),
                Json::UInt(interval.as_millis() as u64),
            ));
        }
        let overhead_pct = if base_rate > 0.0 {
            (base_rate - with_rate) / base_rate * 100.0
        } else {
            0.0
        };
        meta.push((
            "scrape_overhead_pct".to_owned(),
            Json::Num(round2(overhead_pct)),
        ));
    }
    Json::Obj(meta)
}

/// Renders load reports as one `bci.bench.v1` document — the schema
/// every `table_*` bench and `bci netrun --json` already emit, so the
/// CI validators and `table_all` aggregation apply unchanged.
pub fn bench_document(spec: &LoadSpec, reports: &[LoadReport]) -> Json {
    let columns = [
        "coordinator",
        "sessions",
        "players",
        "completed",
        "failed",
        "elapsed ms",
        "sessions/sec",
        "turn p50 us",
        "turn p95 us",
        "turn p99 us",
        "wire bytes",
        "transcript bits",
        "wire bits/bit",
        "reconnects",
        "scrapes",
        "digest",
    ];
    let rows: Vec<Json> = reports
        .iter()
        .map(|r| {
            Json::Arr(vec![
                Json::str(r.kind.label()),
                Json::UInt(r.sessions),
                Json::UInt(spec.players as u64),
                Json::UInt(r.completed),
                Json::UInt(r.failed),
                Json::UInt(r.elapsed.as_millis() as u64),
                Json::Num((r.sessions_per_sec() * 100.0).round() / 100.0),
                Json::UInt(r.turn_latency.percentile(50.0)),
                Json::UInt(r.turn_latency.percentile(95.0)),
                Json::UInt(r.turn_latency.percentile(99.0)),
                Json::UInt(r.wire.bytes_total()),
                Json::UInt(r.wire.transcript_bits),
                Json::Num((r.wire_bits_per_transcript_bit() * 100.0).round() / 100.0),
                Json::UInt(r.reconnects),
                Json::UInt(r.scrapes),
                Json::str(match r.verified() {
                    Some(true) => "match",
                    Some(false) => "MISMATCH",
                    None => "unverified",
                }),
            ])
        })
        .collect();
    obj([
        ("schema", Json::str("bci.bench.v1")),
        ("experiment", Json::str("load")),
        (
            "title",
            Json::str("load — concurrent-session throughput by coordinator"),
        ),
        (
            "notes",
            Json::Arr(vec![Json::str(
                "(digest column compares player-observed transcripts against an \
                 in-process replay of the same seeds, folded in session order)",
            )]),
        ),
        ("meta", bench_meta(spec, reports)),
        (
            "tables",
            Json::Arr(vec![obj([
                ("label", Json::str("")),
                (
                    "columns",
                    Json::Arr(columns.iter().map(|c| Json::str(*c)).collect()),
                ),
                ("rows", Json::Arr(rows)),
            ])]),
        ),
    ])
}
