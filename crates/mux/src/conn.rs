//! A pooled, write-buffered connection speaking the v2 (session-id)
//! frame envelope.
//!
//! The daemon sweeps many of these from one thread, so a [`MuxConn`]
//! must never block it: reads go through a v2 [`FrameReader`] (partial
//! frames stay buffered across `WouldBlock`s), and writes go into an
//! in-memory buffer that [`MuxConn::flush`] drains as far as the socket
//! allows. Only the *player* side, which has nothing better to do than
//! wait, uses the blocking-ish [`MuxConn::send_now`] /
//! [`MuxConn::recv_deadline`] helpers.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Instant;

use bci_net::frame::{Frame, FrameReader, NetError};
use bci_net::NetConfig;

/// Per-frame framing bytes on a v2 connection: `u32` length prefix +
/// `u64` session id + tag byte.
pub const V2_HEADER_BYTES: u64 = 13;

/// One session-multiplexed peer connection.
#[derive(Debug)]
pub struct MuxConn {
    stream: TcpStream,
    reader: FrameReader,
    /// Queued-but-unwritten wire bytes. `out_cursor` marks how much of
    /// the front has already hit the socket; the buffer is compacted on
    /// every full drain.
    out: Vec<u8>,
    out_cursor: usize,
    /// Total raw bytes that reached the socket (framing included).
    pub bytes_written: u64,
    /// Total frames queued for write.
    pub frames_written: u64,
    /// Total Wire-payload bytes queued: framing excluded.
    pub payload_bytes_written: u64,
}

impl MuxConn {
    /// Wraps a connected stream: disables Nagle, switches to
    /// non-blocking, installs a v2 frame reader capped at
    /// `max_frame_len`.
    pub fn new(stream: TcpStream, max_frame_len: usize) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(MuxConn {
            stream,
            reader: FrameReader::with_limits(true, max_frame_len),
            out: Vec::new(),
            out_cursor: 0,
            bytes_written: 0,
            frames_written: 0,
            payload_bytes_written: 0,
        })
    }

    /// Total raw bytes consumed from the socket.
    pub fn bytes_read(&self) -> u64 {
        self.reader.bytes_read
    }

    /// Total complete frames decoded from the socket.
    pub fn frames_read(&self) -> u64 {
        self.reader.frames_read
    }

    /// Total Wire-payload bytes decoded (framing excluded).
    pub fn payload_bytes_read(&self) -> u64 {
        self.reader.payload_bytes_read
    }

    /// Bytes queued but not yet written to the socket.
    pub fn pending_out(&self) -> usize {
        self.out.len() - self.out_cursor
    }

    /// Queues one frame for `session`. Never touches the socket — call
    /// [`MuxConn::flush`] to make wire progress.
    pub fn queue(&mut self, session: u64, frame: &Frame) {
        let bytes = frame.to_bytes_mux(session);
        self.payload_bytes_written += bytes.len() as u64 - V2_HEADER_BYTES;
        self.frames_written += 1;
        self.out.extend_from_slice(&bytes);
    }

    /// Writes as much of the queued bytes as the socket will take right
    /// now. Returns `Ok(true)` when the queue is fully drained,
    /// `Ok(false)` when bytes remain (the socket would block).
    pub fn flush(&mut self) -> Result<bool, NetError> {
        while self.out_cursor < self.out.len() {
            match self.stream.write(&self.out[self.out_cursor..]) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => {
                    self.out_cursor += n;
                    self.bytes_written += n as u64;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        self.out.clear();
        self.out_cursor = 0;
        Ok(true)
    }

    /// Queues `frame` and flushes until the queue drains, sleeping
    /// `config.poll_sleep` between `WouldBlock`s and giving up with
    /// `TimedOut` after `config.io_timeout`. The player-side send.
    pub fn send_now(
        &mut self,
        session: u64,
        frame: &Frame,
        config: &NetConfig,
    ) -> Result<(), NetError> {
        self.queue(session, frame);
        let started = Instant::now();
        while !self.flush()? {
            if started.elapsed() >= config.io_timeout {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "write stalled past io_timeout",
                )));
            }
            std::thread::sleep(config.poll_sleep);
        }
        Ok(())
    }

    /// Non-blocking read attempt: `Ok(Some((session, frame)))` when a
    /// complete frame is available, `Ok(None)` when the socket is idle.
    pub fn poll(&mut self) -> Result<Option<(u64, Frame)>, NetError> {
        self.reader.poll_mux(&mut self.stream)
    }

    /// Blocks (by polling) until a frame arrives or `deadline` passes.
    pub fn recv_deadline(
        &mut self,
        deadline: Instant,
        config: &NetConfig,
    ) -> Result<(u64, Frame), NetError> {
        loop {
            if let Some(hit) = self.poll()? {
                return Ok(hit);
            }
            if Instant::now() >= deadline {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no frame before deadline",
                )));
            }
            std::thread::sleep(config.poll_sleep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bci_net::frame::MAX_FRAME_LEN;
    use std::net::TcpListener;

    #[test]
    fn queued_frames_cross_after_flush() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = NetConfig::default();

        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut client = MuxConn::new(client, MAX_FRAME_LEN).unwrap();
        let mut server = MuxConn::new(server, MAX_FRAME_LEN).unwrap();

        let frame = Frame::Heartbeat { seq: 7 };
        client.queue(11, &frame);
        client.queue(22, &frame);
        assert!(client.pending_out() > 0);
        assert!(client.flush().unwrap(), "loopback drains instantly");
        assert_eq!(client.pending_out(), 0);

        let deadline = Instant::now() + config.io_timeout;
        assert_eq!(
            server.recv_deadline(deadline, &config).unwrap(),
            (11, frame.clone())
        );
        assert_eq!(
            server.recv_deadline(deadline, &config).unwrap(),
            (22, frame)
        );

        // v2 accounting identity on both ends.
        assert_eq!(client.frames_written, 2);
        assert_eq!(
            client.bytes_written,
            client.payload_bytes_written + V2_HEADER_BYTES * client.frames_written
        );
        assert_eq!(server.bytes_read(), client.bytes_written);
        assert_eq!(
            server.bytes_read(),
            server.payload_bytes_read() + V2_HEADER_BYTES * server.frames_read()
        );
    }
}
