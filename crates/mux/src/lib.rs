//! `bci-mux` — the multiplexed broadcast coordinator and load harness.
//!
//! The single-session coordinator in `bci-net` is thread-per-connection
//! and owns exactly one sequencer at a time; this crate is the serving
//! path for the "heavy traffic" regime. One daemon thread multiplexes
//! **thousands of concurrent sessions** over a pool of `k` player
//! connections:
//!
//! * [`conn`] — [`conn::MuxConn`]: a non-blocking socket speaking the v2
//!   (session-id) frame envelope, with a write buffer the daemon drains
//!   opportunistically so a slow client never blocks the reactor;
//! * [`daemon`] — [`daemon::run_mux_daemon`]: the readiness-driven
//!   reactor. Sessions are *parked* as a board prefix + the 41-byte
//!   ChaCha8 session-RNG state + a turn cursor, resumed for exactly the
//!   time it takes to apply one reply and issue the next grant;
//! * [`player`] — [`player::run_mux_player`]: the client side, keeping an
//!   independent board replica per in-flight session;
//! * [`load`] — the `bci load` harness: N synthetic players × M sessions
//!   against an in-process or remote coordinator, with per-session
//!   deadlines, latency percentiles, and a `bci.bench.v1` report.
//!
//! The daemon also serves the **admin stats channel** inline
//! ([`daemon::run_mux_daemon_with_admin`]): read-only `Stats` frames on
//! the control session answer with a live telemetry snapshot plus
//! reactor gauges, without touching session state or RNG — see
//! `docs/observability.md`.
//!
//! Determinism is inherited, not re-proven: the per-session seeding
//! discipline (`derive_trial_seed(master, session)` → sample inputs →
//! session RNG) and the RNG-rides-the-grant turn loop are exactly the
//! `bci-net` coordinator's, so a multiplexed transcript is bit-identical
//! to [`bci_fabric::transport::InProcessTransport`] for the same seed —
//! the load harness verifies this end to end from the *player's* replica.

#![warn(missing_docs)]

pub mod conn;
pub mod daemon;
pub mod load;
pub mod player;

pub use conn::MuxConn;
pub use daemon::{
    run_mux_daemon, run_mux_daemon_with_admin, MuxOptions, MuxRunReport, SessionRecord,
};
pub use load::{run_load, CoordinatorKind, LoadReport, LoadSpec};
pub use player::{connect_mux_player, run_mux_player, MuxPlayerReport};
