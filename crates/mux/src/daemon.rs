//! The multiplexed coordinator daemon: one reactor thread, thousands of
//! parked sequencer sessions.
//!
//! ## Shape
//!
//! The daemon owns a pool of `k` player connections (one per roster
//! slot, speaking the v2 session-id envelope) and a **session table**.
//! Each in-flight session is parked as a `SessionSlot` holding the
//! session's sans-io [`TurnEngine`] — board prefix, 41-byte serialized
//! ChaCha8 session-RNG state, turn cursor, and runaway budget — plus
//! the wall-clock bookkeeping (admission time, grant issue time) the
//! engine deliberately doesn't own. A session consumes daemon CPU only
//! for the instants it takes to apply a reply and issue the next grant;
//! the rest of its lifetime it is 100-odd bytes in a `HashMap`.
//!
//! ## The reactor
//!
//! [`run_mux_daemon`] loops: flush every connection's write buffer,
//! drain every connection's frame reader, dispatch each reply to its
//! session, and sleep `poll_sleep` only when nothing progressed.
//! Deadline scans are throttled (every [`DEADLINE_SCAN_INTERVAL`]) so
//! 10k in-flight sessions don't turn the hot loop into a table walk.
//! Writes never block: grants and outcomes are queued on the
//! connection's buffer and drained opportunistically, so one slow client
//! degrades *its* latency, not the reactor.
//!
//! ## Determinism
//!
//! Per session `s`: `seed = derive_trial_seed(master_seed, s)`, inputs
//! sampled from `ChaCha8Rng::seed_from_u64(seed)`, and the post-sampling
//! RNG becomes the session RNG — exactly the discipline of
//! `bci_net::overhead` and the fabric schedulers. Turn replies carry the
//! post-message RNG state, which is parked verbatim and embedded in the
//! next grant, so randomness is consumed in serial order and the
//! transcript is bit-identical to `InProcessTransport` for the same
//! seed, regardless of how sessions interleave on the wire.

use std::collections::HashMap;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use bci_blackboard::engine::{Step, TurnEngine};
use bci_blackboard::protocol::Protocol;
use bci_blackboard::runner::derive_trial_seed;
use bci_encoding::bitio::BitVec;
use bci_encoding::wire::Wire;
use bci_fabric::transport::DEFAULT_STALL_CAP;
use bci_net::admin::{check_admin_hello, stats_reply};
use bci_net::coordinator::SessionInfo;
use bci_net::frame::{
    BroadcastFrame, Frame, Hello, InputFrame, NetError, OutcomeFrame, CONTROL_SESSION, NO_PLAYER,
    PROTOCOL_VERSION_MUX,
};
use bci_net::overhead::transcript_digest;
use bci_net::transport::WireStats;
use bci_net::NetConfig;
use bci_telemetry::hist::{QUEUE_BYTES_BOUNDS, TURN_LATENCY_US_BOUNDS};
use bci_telemetry::{Json, Recorder, SpanKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::conn::MuxConn;

/// How often the reactor walks the session table looking for blown
/// per-session deadlines and stale connections.
pub const DEADLINE_SCAN_INTERVAL: Duration = Duration::from_millis(10);

/// Default bound on concurrently in-flight sessions. Bounds daemon
/// memory and keeps the outcome `remaining` countdown meaningful while
/// still saturating the connection pool.
pub const DEFAULT_MAX_INFLIGHT: usize = 1024;

/// Knobs for one daemon run.
#[derive(Debug, Clone)]
pub struct MuxOptions {
    /// Wall-clock budget per session, measured from admission.
    pub deadline: Option<Duration>,
    /// Cap on concurrently in-flight sessions.
    pub max_inflight: usize,
    /// Socket-level configuration (timeouts, heartbeat policy, frame cap).
    pub config: NetConfig,
    /// Dump the recorder's flight ring to stderr when a session ends
    /// `TimedOut`/`Aborted` (rate-limited to once per second so an
    /// abort storm doesn't flood the log). No-op unless the recorder
    /// was built with [`Recorder::with_flight`].
    pub dump_flight_on_failure: bool,
}

impl Default for MuxOptions {
    fn default() -> Self {
        MuxOptions {
            deadline: None,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            config: NetConfig::default(),
            dump_flight_on_failure: false,
        }
    }
}

/// One session parked in the daemon's table.
///
/// The parked state *is* the sans-io [`TurnEngine`]: board prefix, turn
/// cursor, runaway budget, and the serialized ChaCha8 state between
/// turns all live inside it. While a grant is outstanding the engine
/// records who holds it and `granted_at` records since when (the one
/// clock the engine refuses to own).
#[derive(Debug)]
struct SessionSlot<'p, P: Protocol> {
    engine: TurnEngine<'p, P>,
    /// When the outstanding grant was issued, for turn-latency metrics.
    granted_at: Option<Instant>,
    /// The previous authoritative write, folded into the next grant.
    prev: Option<(u32, BitVec)>,
    started: Instant,
}

/// How one session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// The session id.
    pub session: u64,
    /// 0 = completed, 1 = timed out, 2 = aborted (the
    /// `SessionOutcome` variants, in declaration order).
    pub kind: u8,
    /// Abort reason; empty otherwise.
    pub reason: String,
    /// Wire-encoded `P::Output` when completed; empty otherwise.
    pub output: Vec<u8>,
    /// FNV-1a digest of the final board's canonical bytes.
    pub digest: u64,
    /// Bits on the final board (the paper's communication measure).
    pub transcript_bits: u64,
    /// Board writes applied before the end.
    pub turns: u32,
    /// Admission → outcome, in microseconds.
    pub latency_us: u64,
}

/// Everything one daemon run produced.
#[derive(Debug)]
pub struct MuxRunReport {
    /// One record per session, sorted by session id.
    pub records: Vec<SessionRecord>,
    /// Wire accounting summed over the connection pool (v2 framing).
    pub wire: WireStats,
    /// Roster-complete → last outcome queued.
    pub elapsed: Duration,
}

impl MuxRunReport {
    /// Sessions that completed.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.kind == 0).count()
    }

    /// Sessions that timed out or aborted.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Folds the per-session transcript digests in session-id order
    /// (records are kept sorted, so completion order doesn't leak in).
    pub fn digest_fold(&self) -> u64 {
        self.records.iter().fold(0u64, |acc, r| {
            bci_net::overhead::fold_digest_u64(acc, r.digest)
        })
    }
}

/// Accepts v2 handshakes on `listener` until every roster slot is
/// filled, mirroring `bci_net::coordinator::accept_roster` but for the
/// multiplexed envelope: clients must announce
/// [`PROTOCOL_VERSION_MUX`], and all control frames ride the
/// [`CONTROL_SESSION`] id. A rejected hello never burns the slot.
///
/// Roster assembly is counted on `recorder` (`mux.roster_accepted`,
/// `mux.hello_rejected`) so a live scrape shows how many dial attempts
/// it took to fill the pool — the mux-side analogue of the v1
/// transport's reconnect totals.
pub fn accept_mux_roster(
    listener: &TcpListener,
    info: &SessionInfo,
    config: &NetConfig,
    deadline: Instant,
    recorder: &Recorder,
) -> Result<Vec<MuxConn>, NetError> {
    listener.set_nonblocking(true)?;
    let k = info.players as usize;
    let mut slots: Vec<Option<MuxConn>> = (0..k).map(|_| None).collect();
    let mut registered = 0usize;
    while registered < k {
        if Instant::now() >= deadline {
            return Err(NetError::Protocol(format!(
                "mux roster incomplete: {registered}/{k} players registered before deadline"
            )));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let mut conn = MuxConn::new(stream, config.max_frame_len)?;
                let hello_deadline = Instant::now() + config.io_timeout;
                let (_, frame) = match conn.recv_deadline(hello_deadline, config) {
                    Ok(hit) => hit,
                    Err(_) => continue, // died before saying hello
                };
                let reject = |mut conn: MuxConn, message: String| {
                    recorder.counter_add("mux.hello_rejected", 1);
                    let _ =
                        conn.send_now(CONTROL_SESSION, &Frame::Error { code: 1, message }, config);
                };
                let hello = match frame {
                    Frame::Hello(h) => h,
                    other => {
                        reject(conn, format!("expected hello, got {}", other.name()));
                        continue;
                    }
                };
                if hello.version != PROTOCOL_VERSION_MUX {
                    reject(
                        conn,
                        format!(
                            "version mismatch: mux daemon speaks {PROTOCOL_VERSION_MUX}, \
                             client {}",
                            hello.version
                        ),
                    );
                    continue;
                }
                if hello.protocol_id != info.protocol_id {
                    reject(
                        conn,
                        format!(
                            "protocol mismatch: serving {:?}, client asked for {:?}",
                            info.protocol_id, hello.protocol_id
                        ),
                    );
                    continue;
                }
                let player = hello.player as usize;
                if player >= k {
                    reject(
                        conn,
                        format!("player index {player} out of range (roster size {k})"),
                    );
                    continue;
                }
                if slots[player].is_some() {
                    reject(conn, format!("player {player} already registered"));
                    continue;
                }
                let ack = Frame::Hello(Hello {
                    version: PROTOCOL_VERSION_MUX,
                    protocol_id: info.protocol_id.clone(),
                    player: hello.player,
                    players: info.players,
                    seed: info.seed,
                    params: info.params.clone(),
                });
                if conn.send_now(CONTROL_SESSION, &ack, config).is_err() {
                    continue;
                }
                slots[player] = Some(conn);
                registered += 1;
                recorder.counter_add("mux.roster_accepted", 1);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(config.poll_sleep);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots registered"))
        .collect())
}

/// One connected admin scraper being served inline by the reactor.
struct AdminPeer {
    conn: MuxConn,
    greeted: bool,
}

/// The daemon's mutable state while the reactor runs.
struct Reactor<'a, P: Protocol> {
    protocol: &'a P,
    conns: Vec<MuxConn>,
    last_seen: Vec<Instant>,
    table: HashMap<u64, SessionSlot<'a, P>>,
    records: Vec<SessionRecord>,
    next_session: u64,
    total: u64,
    finished: u64,
    /// `finished` as of the last time every player write buffer was
    /// fully drained. Sessions finished since then may still have
    /// outcomes sitting in a buffer — they are "draining".
    drain_watermark: u64,
    master_seed: u64,
    opts: &'a MuxOptions,
    recorder: &'a Recorder,
    last_flight_dump: Option<Instant>,
}

impl<'a, P> Reactor<'a, P>
where
    P: Protocol,
    P::Input: Wire,
    P::Output: Wire,
{
    /// Admits sessions until the in-flight cap or the total is reached:
    /// derives the session seed, samples inputs, ships each player its
    /// share, and issues the first grant.
    fn admit<F>(&mut self, sample_inputs: &F)
    where
        F: Fn(u64, &mut ChaCha8Rng) -> Vec<P::Input>,
    {
        while self.table.len() < self.opts.max_inflight && self.next_session < self.total {
            let session = self.next_session;
            self.next_session += 1;
            let seed = derive_trial_seed(self.master_seed, session);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inputs = sample_inputs(session, &mut rng);
            debug_assert_eq!(inputs.len(), self.conns.len(), "input count");
            for (player, input) in inputs.iter().enumerate() {
                self.conns[player].queue(
                    session,
                    &Frame::Input(InputFrame {
                        session: session as u32,
                        player: player as u32,
                        payload: input.to_wire_bytes(),
                    }),
                );
            }
            let engine = TurnEngine::with_rng(self.protocol, inputs.len(), &rng)
                .expect("sample_inputs produced one input per player")
                .with_max_steps(self.opts.config.max_steps);
            let slot = SessionSlot {
                engine,
                granted_at: None,
                prev: None,
                started: Instant::now(),
            };
            self.table.insert(session, slot);
            self.recorder.counter_add("mux.sessions_started", 1);
            if self.recorder.events_enabled() {
                self.recorder.point(
                    SpanKind::Session,
                    session,
                    vec![("phase", Json::str("admit"))],
                );
            }
            self.grant(session);
        }
    }

    /// Polls the session's engine and issues the next grant (folding in
    /// the previous authoritative write), or finishes the session when
    /// the engine halts. Engine violations — out-of-range speaker,
    /// runaway protocol — finish the session aborted with the
    /// violation's canonical reason.
    fn grant(&mut self, session: u64) {
        let step = {
            let slot = self
                .table
                .get_mut(&session)
                .expect("granting a live session");
            match slot.engine.poll() {
                Ok(step) => step,
                Err(violation) => {
                    self.finish(session, 2, violation.to_string(), Vec::new());
                    return;
                }
            }
        };
        let next = match &step {
            Step::Grant(grant) => Some(grant),
            Step::Halted => None,
        };
        let frame = {
            let slot = self
                .table
                .get_mut(&session)
                .expect("granting a live session");
            let (prev_speaker, prev_bits) = slot.prev.take().unwrap_or((NO_PLAYER, BitVec::new()));
            let rng_bytes = match next {
                Some(grant) => grant
                    .rng_state
                    .expect("mux engine carries the session rng")
                    .to_vec(),
                None => Vec::new(),
            };
            if next.is_some() {
                slot.granted_at = Some(Instant::now());
            }
            Frame::Broadcast(BroadcastFrame {
                turn: slot.engine.steps() as u32,
                speaker: prev_speaker,
                bits: prev_bits,
                next: next.map(|g| g.speaker as u32).unwrap_or(NO_PLAYER),
                rng: rng_bytes,
            })
        };
        for conn in &mut self.conns {
            conn.queue(session, &frame);
        }
        if next.is_none() {
            let output = {
                let slot = &self.table[&session];
                catch_unwind(AssertUnwindSafe(|| slot.engine.output()))
            };
            match output {
                Ok(o) => self.finish(session, 0, String::new(), o.to_wire_bytes()),
                Err(_) => self.finish(session, 2, "protocol output panicked".into(), Vec::new()),
            }
        }
    }

    /// Applies a granted speaker's reply through the session's engine
    /// (which re-parks the RNG state and writes the board), records turn
    /// latency, and issues the next grant. Engine violations — a reply
    /// with no grant outstanding, the wrong speaker, a malformed RNG
    /// state — finish the session aborted.
    fn apply_reply(&mut self, session: u64, player: usize, reply: BroadcastFrame) {
        let Some(slot) = self.table.get_mut(&session) else {
            // A reply raced a deadline outcome; it has nowhere to land.
            self.recorder.counter_add("mux.late_replies", 1);
            return;
        };
        // The wire names a speaker twice (connection index and frame
        // field); cross-check both against the engine's outstanding
        // grant before applying, so a mismatched connection can't spend
        // another player's grant.
        let failure = match slot.engine.granted() {
            None => Some(format!(
                "player {player} replied without an outstanding grant"
            )),
            Some(speaker) if player != speaker || reply.speaker as usize != speaker => Some(
                format!("player {player} replied on player {speaker}'s grant"),
            ),
            Some(speaker) => {
                match slot
                    .engine
                    .apply(speaker, reply.bits.clone(), Some(&reply.rng))
                {
                    Ok(()) => {
                        if let Some(granted_at) = slot.granted_at.take() {
                            self.recorder.hist_record(
                                "mux.turn_latency_us",
                                granted_at.elapsed().as_micros() as u64,
                                TURN_LATENCY_US_BOUNDS,
                            );
                        }
                        slot.prev = Some((speaker as u32, reply.bits));
                        None
                    }
                    Err(violation) => Some(violation.to_string()),
                }
            }
        };
        match failure {
            Some(reason) => self.finish(session, 2, reason, Vec::new()),
            None => self.grant(session),
        }
    }

    /// Removes `session` from the table, queues its outcome to every
    /// connection, and records it. `remaining` in the outcome frame is
    /// the global count of unfinished sessions, so the run's final
    /// outcome (in TCP order on every connection) carries 0 and releases
    /// the clients.
    fn finish(&mut self, session: u64, kind: u8, reason: String, output: Vec<u8>) {
        let slot = self
            .table
            .remove(&session)
            .expect("finishing a live session");
        self.finished += 1;
        let remaining = (self.total - self.finished) as u32;
        let frame = Frame::Outcome(OutcomeFrame {
            kind,
            reason: reason.clone(),
            output: output.clone(),
            remaining,
        });
        for conn in &mut self.conns {
            conn.queue(session, &frame);
        }
        let counter = match kind {
            0 => "mux.sessions_completed",
            1 => "mux.sessions_timed_out",
            _ => "mux.sessions_aborted",
        };
        self.recorder.counter_add(counter, 1);
        let turns = slot.engine.steps() as u32;
        if self.recorder.events_enabled() {
            let mut attrs = vec![
                ("phase", Json::str("finish")),
                ("kind", Json::UInt(kind as u64)),
                ("turns", Json::UInt(turns as u64)),
            ];
            if !reason.is_empty() {
                attrs.push(("reason", Json::str(&reason)));
            }
            self.recorder.point(SpanKind::Session, session, attrs);
        }
        let board = slot.engine.into_board();
        self.records.push(SessionRecord {
            session,
            kind,
            reason: reason.clone(),
            output,
            digest: transcript_digest(&board),
            transcript_bits: board.total_bits() as u64,
            turns,
            latency_us: slot.started.elapsed().as_micros() as u64,
        });
        if kind != 0 && self.opts.dump_flight_on_failure {
            self.dump_flight(session, kind, &reason);
        }
    }

    /// Dumps the flight ring to stderr for a failed session, at most
    /// once per second (an `abort_all` storm finishes thousands of
    /// sessions with the same ring contents).
    fn dump_flight(&mut self, session: u64, kind: u8, reason: &str) {
        let now = Instant::now();
        let due = self
            .last_flight_dump
            .is_none_or(|last| now.duration_since(last) >= Duration::from_secs(1));
        if !due {
            return;
        }
        let dump = self.recorder.flight_jsonl();
        if dump.is_empty() {
            return;
        }
        self.last_flight_dump = Some(now);
        eprintln!("--- flight recorder (session {session} ended kind={kind} {reason}) ---");
        eprint!("{dump}");
        eprintln!("--- end flight recorder ---");
    }

    /// Publishes the daemon's internal levels as gauges, immediately
    /// before a snapshot is taken for an admin reply. Gauges the
    /// recorder can't see on its own: roster and session-table
    /// occupancy, per-state session counts, inflight-window usage, and
    /// outbound queue depth.
    fn set_gauges(&self) {
        let inflight = self.table.len() as u64;
        let granted = self
            .table
            .values()
            .filter(|slot| slot.engine.granted().is_some())
            .count() as u64;
        let rec = self.recorder;
        rec.gauge_set("mux.roster_players", self.conns.len() as u64);
        rec.gauge_set("mux.inflight", inflight);
        rec.gauge_set("mux.inflight_limit", self.opts.max_inflight as u64);
        rec.gauge_set("mux.sessions_granted", granted);
        rec.gauge_set("mux.sessions_parked", inflight - granted);
        rec.gauge_set(
            "mux.sessions_draining",
            self.finished - self.drain_watermark,
        );
        rec.gauge_set("mux.sessions_remaining", self.total - self.finished);
        rec.gauge_set(
            "mux.outbound_queue_bytes",
            self.conns.iter().map(MuxConn::pending_out).sum::<usize>() as u64,
        );
    }

    /// Accepts and serves admin scrapers without ever blocking the
    /// reactor: handshakes are validated with the shared
    /// [`check_admin_hello`], replies are built by the shared
    /// [`stats_reply`], and a misbehaving or dead peer is dropped —
    /// never aborted into the run the way a player failure is.
    fn serve_admins(&mut self, listener: &TcpListener, peers: &mut Vec<AdminPeer>) {
        // Drain the accept queue; WouldBlock (or a transient error)
        // ends the sweep until the next tick.
        while let Ok((stream, _)) = listener.accept() {
            if let Ok(conn) = MuxConn::new(stream, self.opts.config.max_frame_len) {
                peers.push(AdminPeer {
                    conn,
                    greeted: false,
                });
            }
        }
        let mut i = 0;
        while i < peers.len() {
            let mut dead = peers[i].conn.flush().is_err();
            while !dead {
                match peers[i].conn.poll() {
                    Ok(Some((_, frame))) => match frame {
                        Frame::Hello(hello) if !peers[i].greeted => {
                            match check_admin_hello(&hello) {
                                Ok(ack) => {
                                    peers[i].conn.queue(CONTROL_SESSION, &ack);
                                    peers[i].greeted = true;
                                }
                                Err(rejection) => {
                                    peers[i].conn.queue(CONTROL_SESSION, &rejection);
                                    let _ = peers[i].conn.flush();
                                    dead = true;
                                }
                            }
                        }
                        Frame::Stats { what } if peers[i].greeted => {
                            self.set_gauges();
                            let reply =
                                Frame::StatsReply(Box::new(stats_reply(self.recorder, what)));
                            peers[i].conn.queue(CONTROL_SESSION, &reply);
                            self.recorder.counter_add("mux.stats_served", 1);
                        }
                        Frame::Heartbeat { .. } => {}
                        other => {
                            peers[i].conn.queue(
                                CONTROL_SESSION,
                                &Frame::Error {
                                    code: 1,
                                    message: format!(
                                        "unexpected {} on admin channel",
                                        other.name()
                                    ),
                                },
                            );
                            let _ = peers[i].conn.flush();
                            dead = true;
                        }
                    },
                    Ok(None) => break,
                    Err(_) => dead = true,
                }
            }
            if !dead {
                dead = peers[i].conn.flush().is_err();
            }
            if dead {
                peers.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Marks every unfinished session aborted (connection-pool failure:
    /// with a player gone, no session can make progress). Shrinking
    /// `total` to the admitted count *before* finishing makes the last
    /// outcome's `remaining` hit 0, so any surviving client still exits
    /// cleanly instead of waiting for sessions that will never start.
    fn abort_all(&mut self, reason: &str) {
        self.total = self.next_session;
        let mut live: Vec<u64> = self.table.keys().copied().collect();
        live.sort_unstable();
        for session in live {
            self.finish(session, 2, reason.to_string(), Vec::new());
        }
    }
}

/// Runs `total_sessions` sessions of `protocol` over an already-accepted
/// v2 connection pool, multiplexing up to `opts.max_inflight` at a time.
///
/// `sample_inputs(session, rng)` must sample the per-player inputs from
/// `rng` (already seeded with `derive_trial_seed(master_seed, session)`)
/// and leave `rng` positioned to serve as the session RNG — the exact
/// discipline of `bci_net::overhead::overhead_point`, which is what
/// makes transcripts comparable across every transport in the repo.
///
/// The returned report carries one [`SessionRecord`] per session
/// (sorted by id) and the pool's wire accounting. A dead or stale
/// connection aborts every unfinished session — with a roster player
/// gone, no session can complete — but still returns a report rather
/// than an error, so the load harness can count the damage.
pub fn run_mux_daemon<P, F>(
    protocol: &P,
    conns: Vec<MuxConn>,
    total_sessions: u64,
    master_seed: u64,
    sample_inputs: F,
    opts: &MuxOptions,
    recorder: &Recorder,
) -> MuxRunReport
where
    P: Protocol,
    P::Input: Wire,
    P::Output: Wire,
    F: Fn(u64, &mut ChaCha8Rng) -> Vec<P::Input>,
{
    run_mux_daemon_with_admin(
        protocol,
        conns,
        None,
        total_sessions,
        master_seed,
        sample_inputs,
        opts,
        recorder,
    )
}

/// [`run_mux_daemon`] plus a live admin stats channel: when
/// `admin_listener` is given, the reactor also accepts read-only admin
/// peers on it (typically the roster listener, reused once the roster
/// is full) and answers their `Stats` requests inline from the
/// throttled scan tick — so a scrape observes the daemon mid-run
/// without a lock, a second thread, or any effect on session state.
/// Admin traffic is excluded from the run's wire accounting.
#[allow(clippy::too_many_arguments)]
pub fn run_mux_daemon_with_admin<P, F>(
    protocol: &P,
    conns: Vec<MuxConn>,
    admin_listener: Option<&TcpListener>,
    total_sessions: u64,
    master_seed: u64,
    sample_inputs: F,
    opts: &MuxOptions,
    recorder: &Recorder,
) -> MuxRunReport
where
    P: Protocol,
    P::Input: Wire,
    P::Output: Wire,
    F: Fn(u64, &mut ChaCha8Rng) -> Vec<P::Input>,
{
    assert_eq!(conns.len(), protocol.num_players(), "pool size");
    assert!(opts.max_inflight > 0, "max_inflight must be positive");
    let start = Instant::now();
    let config = opts.config.clone();
    let stale_after = config.heartbeat_interval * config.miss_limit;
    let k = conns.len();
    let mut reactor = Reactor {
        protocol,
        conns,
        last_seen: vec![Instant::now(); k],
        table: HashMap::new(),
        records: Vec::new(),
        next_session: 0,
        total: total_sessions,
        finished: 0,
        drain_watermark: 0,
        master_seed,
        opts,
        recorder,
        last_flight_dump: None,
    };
    if let Some(listener) = admin_listener {
        // The roster phase left it nonblocking; make sure regardless.
        let _ = listener.set_nonblocking(true);
    }
    let mut admin_peers: Vec<AdminPeer> = Vec::new();
    reactor.admit(&sample_inputs);

    let mut last_scan = Instant::now();
    let mut last_progress = Instant::now();
    'run: while reactor.finished < reactor.total {
        let mut progressed = false;

        // Drain write buffers first: grants queued last iteration are
        // what unblocks the players.
        let mut all_drained = true;
        for player in 0..reactor.conns.len() {
            match reactor.conns[player].flush() {
                Ok(drained) => all_drained &= drained,
                Err(_) => {
                    reactor.abort_all(&format!("player {player} disconnected"));
                    break 'run;
                }
            }
        }
        if all_drained {
            reactor.drain_watermark = reactor.finished;
        }

        // Drain every connection's reader and dispatch.
        for player in 0..reactor.conns.len() {
            loop {
                match reactor.conns[player].poll() {
                    Ok(Some((session, frame))) => {
                        reactor.last_seen[player] = Instant::now();
                        progressed = true;
                        match frame {
                            Frame::Heartbeat { .. } => {}
                            Frame::Broadcast(b) => reactor.apply_reply(session, player, b),
                            Frame::Error { message, .. } => {
                                reactor.abort_all(&format!("player {player} error: {message}"));
                                break 'run;
                            }
                            other => {
                                reactor.abort_all(&format!(
                                    "player {player} sent unexpected {} frame",
                                    other.name()
                                ));
                                break 'run;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(NetError::Disconnected | NetError::Io(_)) => {
                        reactor.abort_all(&format!("player {player} disconnected"));
                        break 'run;
                    }
                    Err(e) => {
                        reactor.abort_all(&format!("player {player}: {e}"));
                        break 'run;
                    }
                }
            }
        }

        // Finishing sessions freed in-flight slots; top the table up.
        reactor.admit(&sample_inputs);

        // Throttled table walk: per-session deadlines + pool staleness.
        // Admin peers are accepted and served on the same tick — a
        // scrape costs at most one scan interval of latency and zero
        // cycles on the hot path.
        if last_scan.elapsed() >= DEADLINE_SCAN_INTERVAL {
            last_scan = Instant::now();
            reactor.recorder.hist_record(
                "mux.outbound_queue_bytes",
                reactor
                    .conns
                    .iter()
                    .map(MuxConn::pending_out)
                    .sum::<usize>() as u64,
                QUEUE_BYTES_BOUNDS,
            );
            if let Some(listener) = admin_listener {
                reactor.serve_admins(listener, &mut admin_peers);
            }
            if let Some(deadline) = opts.deadline {
                let mut expired: Vec<u64> = reactor
                    .table
                    .iter()
                    .filter(|(_, slot)| slot.started.elapsed() >= deadline)
                    .map(|(&s, _)| s)
                    .collect();
                expired.sort_unstable();
                for session in expired {
                    reactor.finish(session, 1, String::new(), Vec::new());
                    progressed = true;
                }
                reactor.admit(&sample_inputs);
            }
            if let Some(player) = reactor
                .last_seen
                .iter()
                .position(|seen| seen.elapsed() > stale_after)
            {
                reactor.abort_all(&format!(
                    "player {player} missed {} heartbeats",
                    config.miss_limit
                ));
                break 'run;
            }
        }

        if progressed {
            last_progress = Instant::now();
        } else {
            if last_progress.elapsed() > DEFAULT_STALL_CAP {
                reactor.abort_all("reactor stalled past the stall cap");
                break 'run;
            }
            std::thread::sleep(config.poll_sleep);
        }
    }

    // Push the final outcomes out (best effort, bounded).
    let flush_deadline = Instant::now() + config.io_timeout;
    for conn in &mut reactor.conns {
        while let Ok(false) = conn.flush() {
            if Instant::now() >= flush_deadline {
                break;
            }
            std::thread::sleep(config.poll_sleep);
        }
    }

    let mut wire = WireStats::default();
    for conn in &reactor.conns {
        wire.bytes_tx += conn.bytes_written;
        wire.bytes_rx += conn.bytes_read();
        wire.frames_tx += conn.frames_written;
        wire.frames_rx += conn.frames_read();
        wire.payload_bytes_tx += conn.payload_bytes_written;
        wire.payload_bytes_rx += conn.payload_bytes_read();
    }
    recorder.counter_add("mux.bytes_tx", wire.bytes_tx);
    recorder.counter_add("mux.bytes_rx", wire.bytes_rx);
    recorder.counter_add("mux.frames_tx", wire.frames_tx);
    recorder.counter_add("mux.frames_rx", wire.frames_rx);

    let mut records = reactor.records;
    records.sort_unstable_by_key(|r| r.session);
    wire.transcript_bits = records.iter().map(|r| r.transcript_bits).sum();
    MuxRunReport {
        records,
        wire,
        elapsed: start.elapsed(),
    }
}
