//! The multiplexed player client: one connection, many concurrent
//! sessions.
//!
//! Where the v1 client (`bci_net::client`) tracks one board replica, the
//! mux player keeps an independent replica **per in-flight session**,
//! keyed by the session id on every v2 frame. Everything else is the
//! same discipline: replicas are built exclusively from the
//! coordinator's authoritative `Broadcast` frames, grants are answered
//! with the post-message RNG state, and heartbeats ride the control
//! session whenever the client hasn't written anything for one interval.
//!
//! Because the replica applies every authoritative write, at `Outcome`
//! time it *is* the coordinator's final board — which is what lets the
//! load harness verify transcripts end to end from the client side,
//! without trusting the daemon's own digests.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use bci_blackboard::board::Board;
use bci_blackboard::protocol::Protocol;
use bci_encoding::wire::Wire;
use bci_net::backoff::connect_with_backoff;
use bci_net::frame::{
    BroadcastFrame, Frame, Hello, NetError, CONTROL_SESSION, NO_PLAYER, PROTOCOL_VERSION_MUX,
};
use bci_net::overhead::transcript_digest;
use bci_net::transport::WireStats;
use bci_net::NetConfig;
use bci_telemetry::hist::TURN_LATENCY_US_BOUNDS;
use bci_telemetry::Histogram;
use rand_chacha::{ChaCha8Rng, STATE_LEN};

use crate::conn::MuxConn;

/// Per-session state a player tracks while the session is in flight.
struct SessionReplica<I> {
    input: I,
    board: Board,
    /// When the last authoritative `Broadcast` for this session arrived;
    /// consecutive gaps are the client-observed turn service time.
    last_broadcast: Option<Instant>,
}

/// What one player observed across a whole run.
#[derive(Debug)]
pub struct MuxPlayerReport {
    /// Sessions this player saw end (any outcome kind).
    pub sessions: u64,
    /// Sessions that ended `Completed`.
    pub completed: u64,
    /// `(session, digest)` of the replica at outcome time, when digest
    /// collection was requested; sorted by session id.
    pub digests: Vec<(u64, u64)>,
    /// Client-observed turn service times: gaps between consecutive
    /// authoritative `Broadcast` frames of the same session.
    pub turn_gaps: Histogram,
    /// Connect retries spent dialing in.
    pub reconnects: u32,
    /// This player's wire accounting (`tx` = player → coordinator).
    pub wire: WireStats,
    /// Total bits across the final boards of digested sessions (the
    /// replica at outcome time *is* the coordinator's board, so this is
    /// the paper's transcript-length measure). Collected with digests.
    pub transcript_bits: u64,
}

/// Dials the mux daemon with capped-exponential backoff and performs
/// the v2 handshake. Returns the pooled connection, the daemon's ack
/// (roster size, seed, protocol params), and the retry count.
pub fn connect_mux_player(
    addr: SocketAddr,
    player: usize,
    protocol_id: &str,
    config: &NetConfig,
    master_seed: u64,
) -> Result<(MuxConn, Hello, u32), NetError> {
    let (stream, retries) = connect_with_backoff(addr, config, master_seed, player as u64)?;
    let mut conn = MuxConn::new(stream, config.max_frame_len)?;
    let hello = Frame::Hello(Hello {
        version: PROTOCOL_VERSION_MUX,
        protocol_id: protocol_id.to_string(),
        player: player as u32,
        players: 0,
        seed: 0,
        params: Vec::new(),
    });
    conn.send_now(CONTROL_SESSION, &hello, config)?;
    let ack_deadline = Instant::now() + config.io_timeout;
    match conn.recv_deadline(ack_deadline, config)? {
        (_, Frame::Hello(ack)) => Ok((conn, ack, retries)),
        (_, Frame::Error { message, .. }) => Err(NetError::Protocol(message)),
        (_, other) => Err(NetError::Protocol(format!(
            "expected hello ack, got {} frame",
            other.name()
        ))),
    }
}

/// Plays every session multiplexed onto `conn` until the daemon's final
/// `Outcome` (one with `remaining == 0`).
///
/// `collect_digests` switches on per-session replica digests — the load
/// harness enables it on player 0 only, so the verification cost is
/// paid once, not `k` times.
pub fn run_mux_player<P>(
    protocol: &P,
    mut conn: MuxConn,
    player: usize,
    config: &NetConfig,
    collect_digests: bool,
) -> Result<MuxPlayerReport, NetError>
where
    P: Protocol,
    P::Input: Wire,
{
    let mut replicas: HashMap<u64, SessionReplica<P::Input>> = HashMap::new();
    let mut report = MuxPlayerReport {
        sessions: 0,
        completed: 0,
        digests: Vec::new(),
        turn_gaps: Histogram::new(TURN_LATENCY_US_BOUNDS),
        reconnects: 0,
        wire: WireStats::default(),
        transcript_bits: 0,
    };
    let fill_wire = |report: &mut MuxPlayerReport, conn: &MuxConn| {
        report.wire.bytes_tx = conn.bytes_written;
        report.wire.bytes_rx = conn.bytes_read();
        report.wire.frames_tx = conn.frames_written;
        report.wire.frames_rx = conn.frames_read();
        report.wire.payload_bytes_tx = conn.payload_bytes_written;
        report.wire.payload_bytes_rx = conn.payload_bytes_read();
    };
    let mut last_sent = Instant::now();
    let mut heartbeat_seq = 0u64;
    loop {
        let (session, frame) = loop {
            if last_sent.elapsed() >= config.heartbeat_interval {
                heartbeat_seq += 1;
                conn.send_now(
                    CONTROL_SESSION,
                    &Frame::Heartbeat { seq: heartbeat_seq },
                    config,
                )?;
                last_sent = Instant::now();
            }
            if let Some(hit) = conn.poll()? {
                break hit;
            }
            std::thread::sleep(config.poll_sleep);
        };
        match frame {
            Frame::Input(inp) => {
                if inp.player as usize != player {
                    return Err(NetError::Protocol(format!(
                        "input addressed to player {}, I am {player}",
                        inp.player
                    )));
                }
                replicas.insert(
                    session,
                    SessionReplica {
                        input: P::Input::from_wire_bytes(&inp.payload)?,
                        board: Board::new(),
                        last_broadcast: None,
                    },
                );
            }
            Frame::Broadcast(b) => {
                let replica = replicas.get_mut(&session).ok_or_else(|| {
                    NetError::Protocol(format!("broadcast for unknown session {session}"))
                })?;
                let now = Instant::now();
                if let Some(prev) = replica.last_broadcast.replace(now) {
                    report
                        .turn_gaps
                        .record(now.duration_since(prev).as_micros() as u64);
                }
                // Apply the authoritative write first; the grant below
                // must see the post-write board.
                if b.speaker != NO_PLAYER {
                    replica.board.write(b.speaker as usize, b.bits);
                }
                if b.next == NO_PLAYER || b.next as usize != player {
                    continue;
                }
                let state: [u8; STATE_LEN] = b
                    .rng
                    .as_slice()
                    .try_into()
                    .map_err(|_| NetError::BadFrame("grant without RNG state"))?;
                let mut rng = ChaCha8Rng::from_state_bytes(&state);
                let bits = match catch_unwind(AssertUnwindSafe(|| {
                    protocol.message(player, &replica.input, &replica.board, &mut rng)
                })) {
                    Ok(bits) => bits,
                    // A panicking player hangs up; the daemon maps the
                    // EOF to structured aborts, same as the v1 client.
                    Err(_) => {
                        fill_wire(&mut report, &conn);
                        return Ok(report);
                    }
                };
                let reply = Frame::Broadcast(BroadcastFrame {
                    turn: b.turn,
                    speaker: player as u32,
                    bits,
                    next: NO_PLAYER,
                    rng: rng.state_bytes().to_vec(),
                });
                conn.send_now(session, &reply, config)?;
                last_sent = Instant::now();
            }
            Frame::Outcome(outcome) => {
                report.sessions += 1;
                if outcome.kind == 0 {
                    report.completed += 1;
                }
                if let Some(replica) = replicas.remove(&session) {
                    if collect_digests {
                        report
                            .digests
                            .push((session, transcript_digest(&replica.board)));
                        report.transcript_bits += replica.board.total_bits() as u64;
                    }
                }
                if outcome.remaining == 0 {
                    report.digests.sort_unstable_by_key(|&(s, _)| s);
                    fill_wire(&mut report, &conn);
                    return Ok(report);
                }
            }
            Frame::Heartbeat { .. } => {}
            Frame::Error { message, .. } => return Err(NetError::Protocol(message)),
            Frame::Hello(_) => {
                return Err(NetError::Protocol("unexpected mid-run hello".into()));
            }
            Frame::Stats { .. } | Frame::StatsReply(_) => {
                // Admin traffic is answered on the admin peer's own
                // connection; it never reaches a roster player.
                return Err(NetError::Protocol(
                    "unexpected admin frame on player channel".into(),
                ));
            }
        }
    }
}
