//! The observability plane's determinism gate: attaching a live admin
//! scraper to a run must not perturb its transcripts. A scraped run has
//! to produce the *bit-identical* digest fold of an unscraped run of the
//! same seed — and both must match the in-process replay — because the
//! stats channel is read-only by construction: it never touches session
//! state, the RNG discipline, or the turn order.

use std::time::Duration;

use bci_mux::load::{run_load, run_load_thread_baseline, LoadSpec};
use bci_mux::CoordinatorKind;

fn spec(sessions: u64) -> LoadSpec {
    let mut spec = LoadSpec::new(sessions, 3);
    spec.n = 32;
    spec.seed = 0x0B5E;
    spec.deadline = Some(Duration::from_secs(20));
    spec
}

#[test]
fn scraped_mux_run_is_bit_identical_to_unscraped() {
    let base = spec(256);
    let unscraped = run_load(&base).expect("unscraped run");
    assert_eq!(unscraped.kind, CoordinatorKind::Mux);
    assert_eq!(unscraped.scrapes, 0);
    assert!(unscraped.scrape_snapshot.is_none());

    let mut scraped_spec = base.clone();
    scraped_spec.scrape_interval = Some(Duration::from_millis(1));
    let scraped = run_load(&scraped_spec).expect("scraped run");
    assert_eq!(scraped.kind, CoordinatorKind::MuxScraped);
    assert_eq!(scraped.completed, base.sessions);

    // The whole point: observation changed nothing.
    assert_eq!(
        scraped.digest, unscraped.digest,
        "scraping perturbed the transcripts"
    );
    assert_eq!(scraped.verified(), Some(true));
    assert_eq!(unscraped.verified(), Some(true));
}

#[test]
fn mux_scraper_lands_snapshots_while_the_run_is_in_flight() {
    // Enough sessions that the run outlives the scraper's connect
    // handshake; the 1ms interval then lands many mid-run snapshots.
    let mut s = spec(2048);
    s.scrape_interval = Some(Duration::from_millis(1));
    let report = run_load(&s).expect("scraped run");
    assert_eq!(report.completed, s.sessions);
    assert_eq!(report.verified(), Some(true));
    assert!(
        report.scrapes > 0,
        "scraper should land at least one live snapshot over {} sessions",
        s.sessions
    );
    let snap = report.scrape_snapshot.expect("last snapshot kept");
    // The snapshot is the daemon's live telemetry, not a placeholder:
    // roster gauges and the session counters must be populated.
    assert_eq!(snap.gauge("mux.roster_players"), 3);
    assert!(snap.counter("mux.sessions_started") > 0);
    assert!(snap.counter("mux.stats_served") > 0);
    assert!(snap.hist("mux.turn_latency_us").is_some());
}

#[test]
fn scraped_thread_baseline_agrees_with_unscraped_and_inprocess() {
    let base = spec(24);
    let unscraped = run_load_thread_baseline(&base).expect("unscraped baseline");
    assert_eq!(unscraped.kind, CoordinatorKind::ThreadPerConn);

    let mut scraped_spec = base.clone();
    scraped_spec.scrape_interval = Some(Duration::from_millis(1));
    let scraped = run_load_thread_baseline(&scraped_spec).expect("scraped baseline");
    assert_eq!(scraped.kind, CoordinatorKind::ThreadPerConnScraped);
    assert_eq!(scraped.completed, base.sessions);
    assert_eq!(
        scraped.digest, unscraped.digest,
        "scraping the v1 coordinator perturbed the transcripts"
    );
    assert_eq!(scraped.verified(), Some(true));
    // The AdminServer runs for the whole (slower, sequential) baseline
    // run, so at 1ms the scraper always lands snapshots.
    assert!(scraped.scrapes > 0, "admin server never answered");
    let snap = scraped.scrape_snapshot.expect("last snapshot kept");
    assert!(snap.hist("net.hop_rtt_us").is_some());
}
