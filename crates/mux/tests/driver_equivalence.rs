//! The driver-equivalence gate: every driver built on the sans-io
//! [`TurnEngine`] must produce **bit-identical** executions for the same
//! seed — same transcript (board and digest), same RNG stream, same
//! bits-written accounting — across random protocols whose turn order
//! itself depends on the randomness consumed so far.
//!
//! The matrix covers all five drivers:
//!
//! 1. the serial runner (`bci_blackboard::protocol::run`),
//! 2. `InProcessTransport` (fabric, same thread),
//! 3. `ChannelTransport` (fabric, one thread per player),
//! 4. the v1 TCP coordinator (`loopback_session`),
//! 5. the mux daemon (`run_mux_daemon` + `run_mux_player` over loopback),
//!
//! plus a hand-rolled `TurnEngine` drive that checks the *final RNG
//! state* byte-for-byte against the serial runner's external RNG — the
//! direct witness that all drivers consume the stream identically.
//!
//! A second matrix covers the non-blackboard topologies: the
//! coordinator-star and point-to-point DISJ protocols run natively on
//! the routed engine and, through `bci_topology::Embedded`, on the
//! blackboard drivers; every driver's transcript must decode back to
//! the native routed board byte for byte.
//!
//! CI runs this as the "Driver equivalence" step.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use bci_blackboard::board::Board;
use bci_blackboard::engine::{Step, TurnEngine};
use bci_blackboard::protocol::Protocol;
use bci_blackboard::runner::derive_trial_seed;
use bci_blackboard::PlayerId;
use bci_encoding::bitio::BitVec;
use bci_encoding::bitset::BitSet;
use bci_encoding::wire::Wire;
use bci_fabric::session::SessionOutcome;
use bci_fabric::transport::{
    ChannelTransport, InProcessTransport, SessionContext, Transport, DISABLED_RECORDER,
};
use bci_mux::daemon::{accept_mux_roster, SessionRecord};
use bci_mux::{connect_mux_player, run_mux_daemon, run_mux_player, MuxOptions};
use bci_net::coordinator::SessionInfo;
use bci_net::overhead::transcript_digest;
use bci_net::transport::loopback_session;
use bci_net::NetConfig;
use bci_protocols::disj::disj_function;
use bci_protocols::msgpass::{P2pDisj, StarDisj};
use bci_telemetry::Recorder;
use bci_topology::{run_routed, Embedded, RoutedProtocol};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A randomly-parameterized protocol whose speaker schedule is a hash of
/// the evolving board — including `total_bits`, which depends on how
/// much randomness each message consumed. Any divergence in the RNG
/// stream between two drivers therefore derails not just message
/// contents but *who speaks next*, making transcript equality a sharp
/// witness of bit-identical execution.
struct RandTree {
    players: usize,
    rounds: usize,
    max_extra_bits: usize,
}

impl RandTree {
    fn total_turns(&self) -> usize {
        self.players * self.rounds
    }
}

fn fnv1a(words: &[u64]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

impl Protocol for RandTree {
    type Input = u64;
    type Output = u64;

    fn num_players(&self) -> usize {
        self.players
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        let turn = board.messages().len();
        (turn < self.total_turns())
            .then(|| fnv1a(&[turn as u64, board.total_bits() as u64]) as usize % self.players)
    }

    fn message(
        &self,
        player: PlayerId,
        input: &u64,
        board: &Board,
        rng: &mut dyn RngCore,
    ) -> BitVec {
        let coin = rng.random_bool(0.5);
        let extra = rng.random_range(0..=self.max_extra_bits);
        let turn = board.messages().len();
        let mut bits = vec![
            (input >> (turn % 64)) & 1 == 1,
            coin,
            player.is_multiple_of(2),
        ];
        for _ in 0..extra {
            bits.push(rng.random_bool(0.5));
        }
        BitVec::from_bools(&bits)
    }

    fn output(&self, board: &Board) -> u64 {
        fnv1a(&[board.messages().len() as u64, board.total_bits() as u64])
    }
}

fn ctx(id: u64) -> SessionContext<'static> {
    SessionContext {
        session_id: id,
        deadline: Some(Duration::from_secs(30)),
        faults: &[],
        recorder: &DISABLED_RECORDER,
    }
}

fn fast_config() -> NetConfig {
    NetConfig {
        heartbeat_interval: Duration::from_millis(100),
        io_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        ..NetConfig::default()
    }
}

/// Runs exactly one session of `proto` through the mux daemon over real
/// loopback sockets and returns its record. The input-sampling closure
/// must mirror [`sample_inputs`] so the session RNG lines up with every
/// other driver.
fn mux_single_session(proto: &RandTree, master_seed: u64) -> SessionRecord {
    let config = fast_config();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let info = SessionInfo {
        protocol_id: "randtree".into(),
        players: proto.players as u32,
        seed: master_seed,
        params: vec![],
    };
    let recorder = Recorder::metrics_only();
    let opts = MuxOptions {
        deadline: Some(Duration::from_secs(30)),
        config: config.clone(),
        ..MuxOptions::default()
    };
    let mut report = std::thread::scope(|scope| {
        let players: Vec<_> = (0..proto.players)
            .map(|player| {
                let config = &config;
                scope.spawn(move || {
                    let (conn, _ack, _retries) =
                        connect_mux_player(addr, player, "randtree", config, master_seed)
                            .expect("player connects");
                    run_mux_player(proto, conn, player, config, false)
                        .expect("player runs to the final outcome")
                })
            })
            .collect();
        let conns = accept_mux_roster(
            &listener,
            &info,
            &config,
            Instant::now() + config.io_timeout,
            &recorder,
        )
        .expect("roster fills");
        let report = run_mux_daemon(
            proto,
            conns,
            1,
            master_seed,
            |_, rng| sample_inputs(proto.players, rng),
            &opts,
            &recorder,
        );
        for handle in players {
            handle.join().expect("player thread");
        }
        report
    });
    assert_eq!(report.records.len(), 1);
    report.records.pop().expect("one record")
}

/// The shared seeding discipline: sample one `u64` input per player,
/// leaving `rng` positioned to serve as the session RNG.
fn sample_inputs(players: usize, rng: &mut ChaCha8Rng) -> Vec<u64> {
    (0..players).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random tree protocols × all five drivers: identical boards,
    /// digests, outputs, bits-written, and final RNG state.
    #[test]
    fn all_five_drivers_agree_bit_for_bit(
        players in 2usize..5,
        rounds in 1usize..4,
        max_extra_bits in 0usize..12,
        master_seed in any::<u64>(),
    ) {
        let proto = RandTree { players, rounds, max_extra_bits };
        let seed = derive_trial_seed(master_seed, 0);
        let mut session_rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs = sample_inputs(players, &mut session_rng);

        // Driver 1: the serial runner, driving an external RNG.
        let mut serial_rng = session_rng.clone();
        let serial = bci_blackboard::protocol::run(&proto, &inputs, &mut serial_rng);
        prop_assert_eq!(serial.board.messages().len(), proto.total_turns());

        // Witness for "identical RNG streams": a hand-rolled engine drive
        // (the parked-state path every transport uses) must leave the
        // session RNG in exactly the state the serial runner left its
        // external RNG in.
        let mut engine = TurnEngine::with_rng(&proto, inputs.len(), &session_rng)
            .expect("input count matches");
        while let Step::Grant(grant) = engine.poll().expect("no violations") {
            let mut rng = grant.resume_rng();
            let bits = proto.message(
                grant.speaker,
                &inputs[grant.speaker],
                engine.board(),
                &mut rng,
            );
            engine
                .apply(grant.speaker, bits, Some(&rng.state_bytes()))
                .expect("reply matches the grant");
        }
        prop_assert_eq!(
            engine.rng_state().expect("parked after halt"),
            &serial_rng.state_bytes(),
            "engine RNG stream diverged from the serial runner's"
        );
        prop_assert_eq!(engine.board(), &serial.board);
        prop_assert_eq!(engine.bits_written(), serial.bits_written);

        // Drivers 2 and 3: the in-process fabric transports.
        let inproc =
            InProcessTransport.run_session(&proto, &inputs, session_rng.clone(), &ctx(0));
        prop_assert_eq!(&inproc.outcome, &SessionOutcome::Completed);
        prop_assert_eq!(&inproc.board, &serial.board);
        prop_assert_eq!(&inproc.output, &Some(serial.output));
        prop_assert_eq!(inproc.bits_written, serial.bits_written);

        let channel =
            ChannelTransport.run_session(&proto, &inputs, session_rng.clone(), &ctx(0));
        prop_assert_eq!(&channel.outcome, &SessionOutcome::Completed);
        prop_assert_eq!(&channel.board, &serial.board);
        prop_assert_eq!(&channel.output, &Some(serial.output));
        prop_assert_eq!(channel.bits_written, serial.bits_written);

        // Driver 4: the v1 TCP coordinator over loopback sockets.
        let (tcp, _stats) = loopback_session(
            &proto,
            &inputs,
            session_rng.clone(),
            &ctx(0),
            &fast_config(),
            "randtree",
            master_seed,
        );
        prop_assert_eq!(&tcp.outcome, &SessionOutcome::Completed);
        prop_assert_eq!(&tcp.board, &serial.board);
        prop_assert_eq!(&tcp.output, &Some(serial.output));
        prop_assert_eq!(tcp.bits_written, serial.bits_written);

        // Driver 5: the mux daemon. It derives the session seed and
        // samples inputs itself, so agreement here proves the whole
        // seeding discipline matches, not just the turn loop.
        let record = mux_single_session(&proto, master_seed);
        prop_assert_eq!(record.kind, 0, "mux session must complete: {}", record.reason);
        prop_assert_eq!(record.digest, transcript_digest(&serial.board));
        prop_assert_eq!(record.transcript_bits, serial.bits_written as u64);
        prop_assert_eq!(record.turns as usize, proto.total_turns());
        let mux_output = u64::from_wire_bytes(&record.output).expect("wire-encoded u64");
        prop_assert_eq!(mux_output, serial.output);
    }
}

/// Runs one routed protocol natively on the routed engine, then through
/// the [`Embedded`] header shim on the blackboard drivers — serial
/// runner, both fabric transports, and the TCP loopback coordinator —
/// and checks every driver's decoded transcript equals the native
/// routed board byte for byte.
fn check_routed_matrix<P>(
    proto: P,
    inputs: &[BitSet],
    master_seed: u64,
    expect: bool,
) -> Result<(), TestCaseError>
where
    P: RoutedProtocol<Input = BitSet, Output = bool> + Sync,
{
    let session_rng = ChaCha8Rng::seed_from_u64(derive_trial_seed(master_seed, 0));

    let native = run_routed(&proto, inputs, &session_rng);
    prop_assert_eq!(native.output, expect);

    let embedded = Embedded::new(proto);
    let mut serial_rng = session_rng.clone();
    let serial = bci_blackboard::protocol::run(&embedded, inputs, &mut serial_rng);
    prop_assert_eq!(serial.output, expect);
    let headers = native.board.messages().len() * embedded.header_bits();
    prop_assert_eq!(
        serial.bits_written,
        native.stats.total_bits + headers,
        "blackboard cost must be routed cost plus link headers"
    );
    prop_assert_eq!(
        embedded.decode_board(&serial.board).to_bytes(),
        native.board.to_bytes()
    );

    let inproc = InProcessTransport.run_session(&embedded, inputs, session_rng.clone(), &ctx(0));
    prop_assert_eq!(&inproc.outcome, &SessionOutcome::Completed);
    prop_assert_eq!(&inproc.board, &serial.board);
    prop_assert_eq!(&inproc.output, &Some(expect));

    let channel = ChannelTransport.run_session(&embedded, inputs, session_rng.clone(), &ctx(0));
    prop_assert_eq!(&channel.outcome, &SessionOutcome::Completed);
    prop_assert_eq!(&channel.board, &serial.board);
    prop_assert_eq!(&channel.output, &Some(expect));

    let (tcp, _stats) = loopback_session(
        &embedded,
        inputs,
        session_rng,
        &ctx(0),
        &fast_config(),
        "routed-disj",
        master_seed,
    );
    prop_assert_eq!(&tcp.outcome, &SessionOutcome::Completed);
    prop_assert_eq!(&tcp.board, &serial.board);
    prop_assert_eq!(&tcp.output, &Some(expect));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The non-blackboard topologies ride the same driver matrix: the
    /// coordinator-star and point-to-point DISJ protocols, run through
    /// the `Embedded` shim, produce transcripts on every blackboard
    /// driver that decode back to the native routed execution.
    #[test]
    fn routed_topologies_ride_the_driver_matrix(
        n in 4usize..24,
        k in 2usize..6,
        density in 0.0f64..0.6,
        master_seed in any::<u64>(),
    ) {
        let mut input_rng =
            ChaCha8Rng::seed_from_u64(derive_trial_seed(master_seed, 1));
        let inputs: Vec<BitSet> = (0..k)
            .map(|_| {
                let mut s = BitSet::new(n);
                for e in 0..n {
                    if input_rng.random_bool(density) {
                        s.insert(e);
                    }
                }
                s
            })
            .collect();
        let expect = disj_function(&inputs);

        check_routed_matrix(StarDisj::new(n, k), &inputs, master_seed, expect)?;
        check_routed_matrix(P2pDisj::new(n, k), &inputs, master_seed, expect)?;
    }
}
