//! The engine's runaway guard surfacing through the mux daemon: every
//! session of a never-halting protocol must end as a structured abort
//! (`SessionRecord.kind == 2`) after `NetConfig::max_steps` turns, and
//! the final outcome must still reach the clients so they exit cleanly.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use bci_blackboard::board::Board;
use bci_blackboard::protocol::Protocol;
use bci_blackboard::PlayerId;
use bci_encoding::bitio::BitVec;
use bci_mux::{connect_mux_player, run_mux_daemon, run_mux_player, MuxOptions};
use bci_net::coordinator::SessionInfo;
use bci_net::NetConfig;
use bci_telemetry::Recorder;
use rand::{Rng, RngCore};

/// Round-robins forever: `next_speaker` never returns `None`.
struct NeverHalts {
    k: usize,
}

impl Protocol for NeverHalts {
    type Input = bool;
    type Output = usize;

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        Some(board.messages().len() % self.k)
    }

    fn message(
        &self,
        _player: PlayerId,
        input: &bool,
        _board: &Board,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        BitVec::from_bools(&[*input])
    }

    fn output(&self, board: &Board) -> usize {
        board.total_bits()
    }
}

#[test]
fn every_runaway_session_is_aborted_with_the_step_budget() {
    let max_steps = 32;
    let sessions = 4u64;
    let config = NetConfig {
        heartbeat_interval: Duration::from_millis(100),
        io_timeout: Duration::from_secs(5),
        max_steps,
        ..NetConfig::default()
    };
    let proto = NeverHalts { k: 3 };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let info = SessionInfo {
        protocol_id: "never-halts".into(),
        players: proto.k as u32,
        seed: 7,
        params: vec![],
    };
    let recorder = Recorder::metrics_only();
    let opts = MuxOptions {
        // A generous per-session deadline: aborts must come from the step
        // budget, not from timers.
        deadline: Some(Duration::from_secs(60)),
        config: config.clone(),
        ..MuxOptions::default()
    };

    let report = std::thread::scope(|scope| {
        let players: Vec<_> = (0..proto.k)
            .map(|player| {
                let config = &config;
                let proto = &proto;
                scope.spawn(move || {
                    let (conn, _ack, _retries) =
                        connect_mux_player(addr, player, "never-halts", config, 7)
                            .expect("player connects");
                    run_mux_player(proto, conn, player, config, player == 0)
                        .expect("player runs to the final outcome")
                })
            })
            .collect();
        let conns = bci_mux::daemon::accept_mux_roster(
            &listener,
            &info,
            &config,
            Instant::now() + config.io_timeout,
            &recorder,
        )
        .expect("roster fills");
        let report = run_mux_daemon(
            &proto,
            conns,
            sessions,
            7,
            |_, rng| (0..proto.k).map(|_| rng.random_bool(0.5)).collect(),
            &opts,
            &recorder,
        );
        for handle in players {
            let player_report = handle.join().expect("player thread");
            assert_eq!(player_report.sessions, sessions);
            assert_eq!(player_report.completed, 0, "nothing completes");
        }
        report
    });

    assert_eq!(report.records.len(), sessions as usize);
    assert_eq!(report.completed(), 0);
    assert_eq!(report.failed(), sessions as usize);
    for record in &report.records {
        assert_eq!(record.kind, 2, "session {} must abort", record.session);
        assert!(
            record.reason.contains("exceeded") && record.reason.contains("32"),
            "abort reason must name the step budget: {}",
            record.reason
        );
        assert_eq!(
            record.turns, max_steps as u32,
            "the guard fires after exactly max_steps writes"
        );
        assert!(record.output.is_empty());
    }
}
