//! The PR's determinism gate: a transcript multiplexed over real loopback
//! sockets must be bit-identical to `InProcessTransport` for the same
//! master seed — and the two coordinator shapes must agree with each
//! other, since they share the per-session seeding discipline.

use std::time::Duration;

use bci_mux::load::{
    bench_document, inprocess_digest_fold, run_load, run_load_thread_baseline, LoadSpec,
};
use bci_mux::CoordinatorKind;

fn small_spec() -> LoadSpec {
    let mut spec = LoadSpec::new(48, 3);
    spec.n = 32;
    spec.seed = 0xB10C;
    spec.deadline = Some(Duration::from_secs(20));
    spec
}

#[test]
fn multiplexed_transcripts_match_inprocess() {
    let spec = small_spec();
    let report = run_load(&spec).expect("mux load run");
    assert_eq!(report.kind, CoordinatorKind::Mux);
    assert_eq!(report.completed, spec.sessions, "all sessions complete");
    assert_eq!(report.failed, 0);
    assert_eq!(
        report.verified(),
        Some(true),
        "player-observed transcript fold {:#x} != in-process fold {:#x}",
        report.digest,
        report.digest_inprocess.unwrap()
    );
    // Frames actually crossed a socket: v2 framing is 13 bytes/frame.
    assert!(report.wire.frames_tx > 0 && report.wire.frames_rx > 0);
    assert_eq!(
        report.wire.framing_bytes(),
        13 * (report.wire.frames_tx + report.wire.frames_rx),
        "v2 framing identity"
    );
    assert!(report.wire.transcript_bits > 0);
}

#[test]
fn thread_baseline_agrees_with_mux_and_inprocess() {
    let mut spec = small_spec();
    spec.sessions = 16;
    let mux = run_load(&spec).expect("mux run");
    let thread = run_load_thread_baseline(&spec).expect("thread run");
    assert_eq!(thread.kind, CoordinatorKind::ThreadPerConn);
    assert_eq!(thread.completed, spec.sessions);
    assert_eq!(thread.verified(), Some(true));
    assert_eq!(
        mux.digest, thread.digest,
        "the two coordinators must produce identical transcripts"
    );
    assert_eq!(mux.digest, inprocess_digest_fold(&spec));
}

#[test]
fn deep_multiplexing_with_small_inflight_window() {
    // Force many admission waves: 200 sessions through a 16-session
    // window, so parked sessions are resumed, finished, and replaced
    // hundreds of times while outcomes interleave out of order.
    let mut spec = small_spec();
    spec.sessions = 200;
    spec.max_inflight = 16;
    let report = run_load(&spec).expect("mux load run");
    assert_eq!(report.completed, 200);
    assert_eq!(report.verified(), Some(true));
    assert!(
        report.turn_latency.count() > 0,
        "turn latency histogram populated"
    );
}

#[test]
fn bench_document_is_schema_tagged_json() {
    let mut spec = small_spec();
    spec.sessions = 8;
    let report = run_load(&spec).expect("mux load run");
    let doc = bench_document(&spec, &[report]).to_string();
    assert!(doc.starts_with('{') && doc.ends_with('}'));
    assert!(doc.contains("\"schema\":\"bci.bench.v1\""));
    assert!(doc.contains("\"coordinator\""));
    assert!(doc.contains("\"mux\""));
    assert!(doc.contains("match"), "digest column verified: {doc}");
    assert!(!doc.contains("MISMATCH"), "{doc}");
}
