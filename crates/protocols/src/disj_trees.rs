//! `DISJ_{n,k}` as an exact [`GeneralTree`] — the whole problem, not just
//! its one-bit pieces, under the exact-analysis machinery.
//!
//! Player `i`'s input is its set `Xᵢ ⊆ [n]`, encoded as a symbol in
//! `0..2ⁿ`. The protocol is the coordinate-wise one the direct sum speaks
//! about: process columns `j = 0, …, n−1` in order; in a column, players
//! announce bit `j` of their set sequentially; a zero moves to the next
//! column, a full column of ones ends with output 0 ("non-disjoint"); all
//! columns cleared ends with output 1 ("disjoint").
//!
//! With this tree, `CIC_{μⁿ}(DISJ_{n,k})` is computed *directly* — no
//! additivity assumption — and the tests confirm the Lemma 1 equality
//! `CIC_{μⁿ}(Πⁿ) = n · CIC_μ(AND_k)` at the level of the full disjointness
//! protocol.

use bci_blackboard::general_tree::{GeneralTree, GeneralTreeBuilder};
use bci_encoding::bitio::BitVec;
use bci_info::dist::Dist;

use crate::and_trees;
use bci_lowerbound_shim::HardDistLike;

/// Minimal local stand-in so this crate does not depend on
/// `bci-lowerbound` (which depends on us): the hard distribution's
/// conditional priors are three lines of arithmetic.
mod bci_lowerbound_shim {
    /// Per-player `Pr[bit = 1 | Z = z]` of the Section 4.1 hard
    /// distribution.
    pub trait HardDistLike {
        /// `Pr[Xᵢ = 1 | Z = z]` for player `i`.
        fn prior_one(&self, i: usize, z: usize) -> f64;
    }

    /// The hard distribution with `k` players.
    #[derive(Debug, Clone, Copy)]
    pub struct Hard {
        /// Number of players.
        pub k: usize,
    }

    impl HardDistLike for Hard {
        fn prior_one(&self, i: usize, z: usize) -> f64 {
            if i == z {
                0.0
            } else {
                1.0 - 1.0 / self.k as f64
            }
        }
    }
}

pub use bci_lowerbound_shim::Hard;

fn bit(v: bool) -> BitVec {
    BitVec::from_bools(&[v])
}

/// Builds the coordinate-wise `DISJ_{n,k}` tree over set-valued inputs.
///
/// # Panics
///
/// Panics if the tree would be too large (`(k+1)ⁿ > 4096` paths) — the
/// exact machinery is for small instances; use the executable protocols for
/// sweeps.
pub fn coordinatewise_disj_tree(n: usize, k: usize) -> GeneralTree {
    assert!(n >= 1 && k >= 1, "need n, k ≥ 1");
    assert!(
        (k + 1).pow(n as u32) <= 4096,
        "tree too large: (k+1)^n = {}",
        (k + 1).pow(n as u32)
    );
    let alphabet = 1usize << n;
    let mut b = GeneralTreeBuilder::new(vec![alphabet; k]);

    /// Probability vector for "player announces bit j = value".
    fn col_prob(alphabet: usize, j: usize, value: bool) -> Vec<f64> {
        (0..alphabet)
            .map(|s| {
                let has = (s >> j) & 1 == 1;
                if has == value {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Builds the subtree starting at column `j`, player `i`.
    fn build(
        b: &mut GeneralTreeBuilder,
        n: usize,
        k: usize,
        alphabet: usize,
        j: usize,
        i: usize,
    ) -> usize {
        if j == n {
            return b.leaf(1); // all columns cleared: disjoint
        }
        // On a one-announcement: next player in this column, or the
        // non-disjoint leaf if this was the last.
        let on_one = if i + 1 < k {
            build(b, n, k, alphabet, j, i + 1)
        } else {
            b.leaf(0) // full column of ones: intersection found
        };
        // On a zero-announcement: this column is cleared; start the next.
        let on_zero = build(b, n, k, alphabet, j + 1, 0);
        b.internal(
            i,
            vec![
                (bit(false), col_prob(alphabet, j, false), on_zero),
                (bit(true), col_prob(alphabet, j, true), on_one),
            ],
        )
    }

    let root = build(&mut b, n, k, alphabet, 0, 0);
    b.finish(root)
}

/// The n-fold hard-distribution prior for one player: the product over
/// coordinates of `Bern(prior given zⱼ)`, as a distribution over set
/// symbols in `0..2ⁿ`.
pub fn player_prior(n: usize, k: usize, player: usize, zvec: &[usize]) -> Dist {
    assert_eq!(zvec.len(), n, "one special player per coordinate");
    let hard = Hard { k };
    let probs: Vec<f64> = (0..(1usize << n))
        .map(|s| {
            (0..n)
                .map(|j| {
                    let p1 = hard.prior_one(player, zvec[j]);
                    if (s >> j) & 1 == 1 {
                        p1
                    } else {
                        1.0 - p1
                    }
                })
                .product()
        })
        .collect();
    Dist::new(probs).expect("product of Bernoullis")
}

/// Exact `CIC_{μⁿ}(coordinate-wise DISJ_{n,k}) = I(Π; X | Z₁…Z_n)`,
/// computed directly on the full tree by averaging over all `kⁿ` auxiliary
/// vectors.
///
/// # Panics
///
/// Panics if `kⁿ > 4096`.
pub fn disj_cic_exact(n: usize, k: usize) -> f64 {
    let n_aux = k.pow(n as u32);
    assert!(n_aux <= 4096, "auxiliary space too large");
    let tree = coordinatewise_disj_tree(n, k);
    let w = 1.0 / n_aux as f64;
    let mut total = 0.0;
    for zi in 0..n_aux {
        let mut rest = zi;
        let zvec: Vec<usize> = (0..n)
            .map(|_| {
                let z = rest % k;
                rest /= k;
                z
            })
            .collect();
        let priors: Vec<Dist> = (0..k).map(|i| player_prior(n, k, i, &zvec)).collect();
        total += w * tree.information_cost_product(&priors);
    }
    total
}

/// Exact single-copy `CIC_μ(AND_k)` via the binary tree (for the Lemma 1
/// comparison without importing `bci-lowerbound`).
pub fn and_cic_exact(k: usize) -> f64 {
    let tree = and_trees::sequential_and(k);
    let hard = Hard { k };
    let w = 1.0 / k as f64;
    (0..k)
        .map(|z| {
            let priors: Vec<f64> = (0..k).map(|i| hard.prior_one(i, z)).collect();
            w * tree.information_cost_product(&priors)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disj::{coordinatewise, disj_function};
    use bci_encoding::bitset::BitSet;

    #[test]
    fn tree_computes_disjointness_exactly() {
        let (n, k) = (3, 3);
        let tree = coordinatewise_disj_tree(n, k);
        for xi in 0..(1usize << (n * k)) {
            let symbols: Vec<usize> = (0..k).map(|i| (xi >> (i * n)) & ((1 << n) - 1)).collect();
            let sets: Vec<BitSet> = symbols
                .iter()
                .map(|&s| BitSet::from_elements(n, (0..n).filter(|&j| (s >> j) & 1 == 1)))
                .collect();
            let expect = usize::from(disj_function(&sets));
            let dist = tree.transcript_dist_given_input(&symbols);
            let leaf = dist
                .iter()
                .position(|&p| p > 0.999)
                .expect("deterministic tree");
            assert_eq!(tree.leaves()[leaf].output, expect, "input {symbols:?}");
        }
    }

    #[test]
    fn tree_communication_matches_executable_protocol() {
        let (n, k) = (2, 3);
        let tree = coordinatewise_disj_tree(n, k);
        for xi in 0..(1usize << (n * k)) {
            let symbols: Vec<usize> = (0..k).map(|i| (xi >> (i * n)) & ((1 << n) - 1)).collect();
            let sets: Vec<BitSet> = symbols
                .iter()
                .map(|&s| BitSet::from_elements(n, (0..n).filter(|&j| (s >> j) & 1 == 1)))
                .collect();
            let run = coordinatewise::run(&sets);
            let dist = tree.transcript_dist_given_input(&symbols);
            let leaf = dist.iter().position(|&p| p > 0.999).expect("deterministic");
            assert_eq!(tree.leaves()[leaf].path_bits, run.bits, "input {symbols:?}");
        }
    }

    #[test]
    fn lemma1_equality_on_the_full_disjointness_tree() {
        // CIC_{μⁿ}(DISJ tree) = n · CIC_μ(AND_k), computed with zero shared
        // machinery between the two sides.
        for (n, k) in [(1usize, 3usize), (2, 3), (3, 3), (2, 4)] {
            let whole = disj_cic_exact(n, k);
            let per_copy = and_cic_exact(k);
            assert!(
                (whole - n as f64 * per_copy).abs() < 1e-9,
                "(n={n},k={k}): {whole} vs {}",
                n as f64 * per_copy
            );
        }
    }

    #[test]
    fn disj_cic_grows_linearly_in_n() {
        let k = 3;
        let c1 = disj_cic_exact(1, k);
        let c2 = disj_cic_exact(2, k);
        let c3 = disj_cic_exact(3, k);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
        assert!((c3 - 3.0 * c1).abs() < 1e-9);
    }

    #[test]
    fn player_prior_is_a_valid_product_distribution() {
        let d = player_prior(3, 4, 1, &[0, 1, 2]);
        assert_eq!(d.len(), 8);
        // Player 1 is special in coordinate 1: every symbol with bit 1 set
        // has probability 0.
        for s in 0..8usize {
            if (s >> 1) & 1 == 1 {
                assert_eq!(d.prob(s), 0.0, "symbol {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn guards_reject_big_trees() {
        coordinatewise_disj_tree(8, 8);
    }
}
