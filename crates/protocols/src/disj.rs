//! Set disjointness `DISJ_{n,k}` in the broadcast model.
//!
//! Each player `i` holds a set `Xᵢ ⊆ [n]`; the players decide whether
//! `⋂ᵢ Xᵢ = ∅`. Both protocols here convince themselves of disjointness by
//! writing *zero coordinates* (elements outside the writer's set) on the
//! board: a coordinate with a published zero cannot be in the intersection,
//! and the sets are disjoint iff every coordinate gets one.
//!
//! * [`naive`] — the introduction's protocol: one cycle, each player writes
//!   all its new zeros as `⌈log₂ n⌉`-bit coordinates ⇒ `O(n log n + k)`.
//! * [`batched`] — the Theorem 2 protocol: zeros are written in *batches*,
//!   each batch a `⌈z/k⌉`-subset of the currently-uncovered set `Z`
//!   transmitted in `⌈log₂ C(z, ⌈z/k⌉)⌉` bits — `log₂(e·k)` per coordinate
//!   instead of `log₂ n` ⇒ `O(n log k + k)`.
//!
//! Both protocols are deterministic and zero-error. Each module also
//! provides a [`decode`](batched::decode) function that replays a finished
//! board *without any input*, recovering the speaker sequence and output —
//! machine-checkable evidence that the protocol is legal in the blackboard
//! model (the board alone determines everything).

use bci_blackboard::board::Board;
use bci_blackboard::PlayerId;
use bci_encoding::bitset::BitSet;

/// The reference function: `true` iff the sets have empty intersection.
///
/// # Panics
///
/// Panics if `inputs` is empty or the sets have mismatched capacities.
pub fn disj_function(inputs: &[BitSet]) -> bool {
    assert!(!inputs.is_empty(), "DISJ needs at least one player");
    let mut inter = inputs[0].clone();
    for x in &inputs[1..] {
        inter = inter.intersection(x);
    }
    inter.is_empty()
}

/// The result of running a disjointness protocol.
#[derive(Debug, Clone)]
pub struct DisjRun {
    /// The final board.
    pub board: Board,
    /// Total bits written.
    pub bits: usize,
    /// `true` = "disjoint".
    pub output: bool,
    /// Number of cycles executed.
    pub cycles: usize,
    /// Total zero-coordinates published.
    pub coords_written: usize,
}

/// The result of replaying a board without inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Decoded {
    /// Speakers in board order (must match the board's attributions).
    pub speakers: Vec<PlayerId>,
    /// The output the board determines.
    pub output: bool,
    /// Every coordinate whose zero was published.
    pub covered: Vec<usize>,
}

fn check_inputs(n: usize, inputs: &[BitSet]) {
    assert!(!inputs.is_empty(), "need at least one player");
    assert!(
        inputs.iter().all(|x| x.capacity() == n),
        "all inputs must be sets over the same universe"
    );
}

/// The naive `O(n log n + k)` protocol from the paper's introduction.
pub mod naive {
    use super::*;
    use bci_encoding::bitio::{BitReader, BitVec, BitWriter};

    fn coord_width(n: usize) -> u32 {
        if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        }
    }

    /// Runs the protocol: players `0..k` in order; each writes every zero
    /// coordinate of its input not already on the board, as
    /// `1`+`⌈log₂ n⌉-bit index` records, ending its turn with a `0` bit.
    /// Output: disjoint iff all `n` coordinates end up covered.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or capacities mismatch.
    pub fn run(inputs: &[BitSet]) -> DisjRun {
        let n = inputs.first().map_or(0, BitSet::capacity);
        check_inputs(n, inputs);
        let width = coord_width(n);
        let mut board = Board::new();
        let mut covered = BitSet::new(n);
        let mut coords_written = 0;
        for (player, x) in inputs.iter().enumerate() {
            let mut w = BitWriter::new();
            // Zero coordinates = complement of the player's set.
            for j in x.complement().difference(&covered).iter() {
                w.write_bit(true);
                w.write_bits(j as u64, width);
                covered.insert(j);
                coords_written += 1;
            }
            w.write_bit(false);
            board.write(player, w.into_bits());
            if covered.len() == n {
                break; // everything covered: disjoint, rest stay silent
            }
        }
        let bits = board.total_bits();
        DisjRun {
            board,
            bits,
            output: covered.len() == n,
            cycles: 1,
            coords_written,
        }
    }

    /// Replays a finished board without inputs; recovers speakers, covered
    /// coordinates and the output.
    ///
    /// # Panics
    ///
    /// Panics if the board is not a valid transcript of the naive protocol
    /// on universe size `n` with `k` players.
    pub fn decode(n: usize, k: usize, board: &Board) -> Decoded {
        let width = coord_width(n);
        let mut covered = BitSet::new(n);
        let mut speakers = Vec::new();
        for (turn, msg) in board.messages().iter().enumerate() {
            assert!(turn < k, "more turns than players");
            assert_eq!(msg.speaker, turn, "naive protocol speaks in order");
            speakers.push(msg.speaker);
            let bits: BitVec = msg.bits.clone();
            let mut r = BitReader::new(&bits);
            loop {
                match r.read_bit().expect("truncated turn") {
                    false => break,
                    true => {
                        let j = r.read_bits(width).expect("truncated coordinate") as usize;
                        assert!(j < n, "coordinate {j} out of range");
                        assert!(covered.insert(j), "coordinate {j} repeated");
                    }
                }
            }
            assert_eq!(r.remaining(), 0, "trailing bits in turn");
            if covered.len() == n {
                break;
            }
        }
        // The protocol only halts early on full coverage; otherwise all k
        // players must have spoken. A shorter board is truncated.
        assert!(
            covered.len() == n || speakers.len() == k,
            "board ended after {} turns without full coverage",
            speakers.len()
        );
        Decoded {
            speakers,
            output: covered.len() == n,
            covered: covered.iter().collect(),
        }
    }

    /// Exact worst-case communication of the naive protocol:
    /// `n·(⌈log₂ n⌉ + 1) + k` bits.
    pub fn worst_case_bits(n: usize, k: usize) -> usize {
        n * (coord_width(n) as usize + 1) + k
    }
}

/// The Theorem 2 protocol: `O(n log k + k)` bits via batched subset codes.
pub mod batched {
    use super::*;
    use bci_encoding::approx::approx_binomial_code_len;
    use bci_encoding::bitio::{BitReader, BitWriter};
    use bci_encoding::combinadic::SubsetCodec;

    fn index_width(z: usize) -> u32 {
        if z <= 1 {
            0
        } else {
            usize::BITS - (z - 1).leading_zeros()
        }
    }

    /// One player's action during a cycle, produced by the shared state
    /// machine and consumed by either the exact encoder or the cost model.
    enum Turn {
        /// "Pass": one bit.
        Pass,
        /// Fat-cycle batch: `indices` are positions within the cycle-start
        /// uncovered list (sorted ascending), of size `b`.
        Batch { indices: Vec<u64> },
        /// Final naive cycle: every new zero, as positions within the
        /// cycle-start uncovered list.
        Naive { indices: Vec<u64> },
    }

    /// Where the per-turn costs go: real bits or estimated counts.
    trait Sink {
        fn emit(&mut self, player: PlayerId, turn: &Turn, z: usize, b: usize);
    }

    /// The protocol's state machine, shared between [`run`] and [`cost`].
    /// Returns `(output, cycles, coords_written)`.
    fn simulate(inputs: &[BitSet], sink: &mut dyn Sink) -> (bool, usize, usize) {
        let n = inputs.first().map_or(0, BitSet::capacity);
        check_inputs(n, inputs);
        let k = inputs.len();
        let zeros: Vec<BitSet> = inputs.iter().map(BitSet::complement).collect();
        let mut covered = BitSet::new(n);
        let mut cycles = 0usize;
        let mut coords_written = 0usize;
        loop {
            if covered.len() == n {
                return (true, cycles, coords_written);
            }
            cycles += 1;
            let z_list: Vec<usize> = covered.complement().iter().collect();
            let z = z_list.len();
            // Position of each uncovered coordinate within Z.
            let pos_in_z = {
                let mut pos = vec![usize::MAX; n];
                for (idx, &j) in z_list.iter().enumerate() {
                    pos[j] = idx;
                }
                pos
            };
            if z >= k * k {
                // Fat cycle: batches of b = ⌈z/k⌉, or pass.
                let b = z.div_ceil(k);
                let mut all_passed = true;
                for (player, player_zeros) in zeros.iter().enumerate() {
                    let new_zeros: Vec<usize> = player_zeros.difference(&covered).iter().collect();
                    if new_zeros.len() >= b {
                        let chosen = &new_zeros[..b];
                        let indices: Vec<u64> =
                            chosen.iter().map(|&j| pos_in_z[j] as u64).collect();
                        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
                        sink.emit(player, &Turn::Batch { indices }, z, b);
                        for &j in chosen {
                            covered.insert(j);
                        }
                        coords_written += b;
                        all_passed = false;
                        if covered.len() == n {
                            return (true, cycles, coords_written);
                        }
                    } else {
                        sink.emit(player, &Turn::Pass, z, b);
                    }
                }
                if all_passed {
                    return (false, cycles, coords_written);
                }
            } else {
                // Final naive cycle: everyone dumps all new zeros.
                for (player, player_zeros) in zeros.iter().enumerate() {
                    let new_zeros: Vec<usize> = player_zeros.difference(&covered).iter().collect();
                    let indices: Vec<u64> = new_zeros.iter().map(|&j| pos_in_z[j] as u64).collect();
                    coords_written += indices.len();
                    sink.emit(player, &Turn::Naive { indices }, z, 0);
                    for &j in &new_zeros {
                        covered.insert(j);
                    }
                    if covered.len() == n {
                        return (true, cycles, coords_written);
                    }
                }
                return (covered.len() == n, cycles, coords_written);
            }
        }
    }

    struct ExactSink {
        board: Board,
    }

    impl Sink for ExactSink {
        fn emit(&mut self, player: PlayerId, turn: &Turn, z: usize, b: usize) {
            let mut w = BitWriter::new();
            match turn {
                Turn::Pass => w.write_bit(false),
                Turn::Batch { indices } => {
                    w.write_bit(true);
                    SubsetCodec::new(z as u64, b as u64).encode(indices, &mut w);
                }
                Turn::Naive { indices } => {
                    let width = index_width(z);
                    for &idx in indices {
                        w.write_bit(true);
                        w.write_bits(idx, width);
                    }
                    w.write_bit(false);
                }
            }
            self.board.write(player, w.into_bits());
        }
    }

    /// Runs the Theorem 2 protocol, producing real decodable bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or capacities mismatch.
    pub fn run(inputs: &[BitSet]) -> DisjRun {
        let mut sink = ExactSink {
            board: Board::new(),
        };
        let (output, cycles, coords_written) = simulate(inputs, &mut sink);
        let bits = sink.board.total_bits();
        DisjRun {
            board: sink.board,
            bits,
            output,
            cycles,
            coords_written,
        }
    }

    struct CostSink {
        bits: usize,
    }

    impl Sink for CostSink {
        fn emit(&mut self, _player: PlayerId, turn: &Turn, z: usize, b: usize) {
            self.bits += match turn {
                Turn::Pass => 1,
                Turn::Batch { .. } => 1 + approx_binomial_code_len(z as u64, b as u64) as usize,
                Turn::Naive { indices } => indices.len() * (1 + index_width(z) as usize) + 1,
            };
        }
    }

    /// Runs only the cost accounting: identical schedule and bit counts to
    /// [`run`] (up to float rounding in `⌈log₂ C(z,b)⌉`), but without
    /// big-integer subset ranking — usable for very large sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or capacities mismatch.
    pub fn cost(inputs: &[BitSet]) -> DisjRun {
        let mut sink = CostSink { bits: 0 };
        let (output, cycles, coords_written) = simulate(inputs, &mut sink);
        DisjRun {
            board: Board::new(),
            bits: sink.bits,
            output,
            cycles,
            coords_written,
        }
    }

    /// Replays a finished board without inputs; recovers speakers, covered
    /// coordinates and the output — the proof that the transcript is
    /// self-describing.
    ///
    /// # Panics
    ///
    /// Panics if the board is not a valid transcript of the batched protocol
    /// with universe `n` and `k` players.
    pub fn decode(n: usize, k: usize, board: &Board) -> Decoded {
        let mut covered = BitSet::new(n);
        let mut speakers = Vec::new();
        let mut msgs = board.messages().iter().peekable();
        let mut output = None;
        'cycles: while covered.len() < n {
            let z_list: Vec<usize> = covered.complement().iter().collect();
            let z = z_list.len();
            if z >= k * k {
                let b = z.div_ceil(k);
                let codec = SubsetCodec::new(z as u64, b as u64);
                let mut all_passed = true;
                for player in 0..k {
                    let msg = msgs.next().expect("board ended mid-cycle");
                    assert_eq!(msg.speaker, player, "unexpected speaker");
                    speakers.push(player);
                    let mut r = BitReader::new(&msg.bits);
                    if r.read_bit().expect("empty turn") {
                        let indices = codec.decode(&mut r);
                        for idx in indices {
                            let j = z_list[idx as usize];
                            assert!(covered.insert(j), "coordinate {j} repeated");
                        }
                        all_passed = false;
                        if covered.len() == n {
                            output = Some(true);
                            break 'cycles;
                        }
                    }
                    assert_eq!(r.remaining(), 0, "trailing bits in turn");
                }
                if all_passed {
                    output = Some(false);
                    break 'cycles;
                }
            } else {
                let width = index_width(z);
                for player in 0..k {
                    let msg = msgs.next().expect("board ended mid-cycle");
                    assert_eq!(msg.speaker, player, "unexpected speaker");
                    speakers.push(player);
                    let mut r = BitReader::new(&msg.bits);
                    while r.read_bit().expect("truncated turn") {
                        let idx = r.read_bits(width).expect("truncated index") as usize;
                        assert!(idx < z, "index {idx} out of range");
                        let j = z_list[idx];
                        assert!(covered.insert(j), "coordinate {j} repeated");
                    }
                    assert_eq!(r.remaining(), 0, "trailing bits in turn");
                    if covered.len() == n {
                        output = Some(true);
                        break 'cycles;
                    }
                }
                output = Some(covered.len() == n);
                break 'cycles;
            }
        }
        assert!(msgs.next().is_none(), "board has extra messages");
        Decoded {
            speakers,
            output: output.unwrap_or(true), // covered == n before any cycle
            covered: covered.iter().collect(),
        }
    }

    /// The Theorem 2 accounting bound on per-coordinate cost in fat cycles:
    /// `log₂(e·k)` bits per coordinate.
    pub fn per_coordinate_bound(k: usize) -> f64 {
        (std::f64::consts::E * k as f64).log2()
    }
}

/// The naive protocol as a [`Protocol`](bci_blackboard::protocol::Protocol)
/// implementation, so disjointness can run under the generic executors
/// (`bci_blackboard::protocol::run`, the Monte-Carlo harness, and the
/// execution fabric).
///
/// Identical schedule and encoding to [`naive`]: players speak in order,
/// each publishing its not-yet-covered zero coordinates as
/// `1`+`⌈log₂ n⌉`-bit records, terminated by a `0` bit; the protocol halts
/// early once all `n` coordinates are covered. `next_speaker` and `output`
/// recover the covered set by replaying the board — they are functions of
/// the board alone, as the model requires.
pub mod broadcast {
    use super::*;
    use bci_blackboard::protocol::Protocol;
    use bci_encoding::bitio::{BitReader, BitVec, BitWriter};
    use rand::RngCore;

    /// `DISJ_{n,k}` as an executable [`Protocol`]. Input: one [`BitSet`]
    /// over `[n]` per player; output: `true` iff the sets are disjoint.
    #[derive(Debug, Clone)]
    pub struct BroadcastDisj {
        n: usize,
        k: usize,
    }

    impl BroadcastDisj {
        /// A protocol instance for `k` players over universe `[n]`.
        ///
        /// # Panics
        ///
        /// Panics if `k == 0`.
        pub fn new(n: usize, k: usize) -> Self {
            assert!(k > 0, "DISJ needs at least one player");
            BroadcastDisj { n, k }
        }

        /// Universe size `n`.
        pub fn universe(&self) -> usize {
            self.n
        }

        fn coord_width(&self) -> u32 {
            if self.n <= 1 {
                0
            } else {
                usize::BITS - (self.n - 1).leading_zeros()
            }
        }

        /// Replays the board, returning the covered set.
        fn covered(&self, board: &Board) -> BitSet {
            let width = self.coord_width();
            let mut covered = BitSet::new(self.n);
            for msg in board.messages() {
                let mut r = BitReader::new(&msg.bits);
                while r.read_bit().expect("truncated turn") {
                    let j = r.read_bits(width).expect("truncated coordinate") as usize;
                    covered.insert(j);
                }
            }
            covered
        }
    }

    impl Protocol for BroadcastDisj {
        type Input = BitSet;
        type Output = bool;

        fn num_players(&self) -> usize {
            self.k
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            let turns = board.messages().len();
            if turns >= self.k || self.covered(board).len() == self.n {
                None // everyone spoke, or full coverage ended the protocol
            } else {
                Some(turns)
            }
        }

        fn message(
            &self,
            _player: PlayerId,
            input: &BitSet,
            board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            assert_eq!(input.capacity(), self.n, "input universe mismatch");
            let width = self.coord_width();
            let covered = self.covered(board);
            let mut w = BitWriter::new();
            for j in input.complement().difference(&covered).iter() {
                w.write_bit(true);
                w.write_bits(j as u64, width);
            }
            w.write_bit(false);
            w.into_bits()
        }

        fn output(&self, board: &Board) -> bool {
            self.covered(board).len() == self.n
        }
    }
}

/// The coordinate-wise protocol: run sequential `AND_k` on every coordinate.
///
/// This is the protocol the Lemma 1 direct sum actually decomposes —
/// `DISJ_{n,k} = ¬⋁ⱼ AND_k(X^j)` solved by `n` independent `AND_k`
/// instances. Column `j` is processed in order: players announce the bit
/// `j ∈ Xᵢ` until someone says 0 (coordinate ruled out) or all `k` say 1
/// (the intersection is witnessed — halt, "non-disjoint").
///
/// Its communication is `Θ(Σⱼ (position of column j's first zero))` — up to
/// `n·k` — which is exactly why Theorem 2's batching matters: the
/// information in a column is only `O(log k)` bits, but announcing bits
/// one player at a time pays `Θ(k)` for late zeros. The A4 ablation
/// measures this gap.
pub mod coordinatewise {
    use super::*;
    use bci_encoding::bitio::{BitReader, BitVec};

    /// Runs the protocol. Each board message is one player's 1-bit
    /// announcement; board contents alone determine the column/player
    /// schedule (verified by [`decode`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or capacities mismatch.
    pub fn run(inputs: &[BitSet]) -> DisjRun {
        let n = inputs.first().map_or(0, BitSet::capacity);
        check_inputs(n, inputs);
        let k = inputs.len();
        let mut board = Board::new();
        for j in 0..n {
            let mut all_ones = true;
            for (player, x) in inputs.iter().enumerate() {
                let bit = x.contains(j);
                board.write(player, BitVec::from_bools(&[bit]));
                if !bit {
                    all_ones = false;
                    break;
                }
            }
            if all_ones && k > 0 {
                let bits = board.total_bits();
                return DisjRun {
                    board,
                    bits,
                    output: false,
                    cycles: j + 1,
                    coords_written: j + 1,
                };
            }
        }
        let bits = board.total_bits();
        DisjRun {
            board,
            bits,
            output: true,
            cycles: n,
            coords_written: n,
        }
    }

    /// Replays a finished board without inputs.
    ///
    /// # Panics
    ///
    /// Panics if the board is not a valid coordinate-wise transcript.
    pub fn decode(n: usize, k: usize, board: &Board) -> Decoded {
        let mut speakers = Vec::new();
        let mut msgs = board.messages().iter();
        let mut covered = Vec::new();
        for j in 0..n {
            let mut ones = 0usize;
            loop {
                let Some(msg) = msgs.next() else {
                    panic!("board ended mid-column {j}");
                };
                assert_eq!(msg.speaker, ones, "column speaker order");
                speakers.push(msg.speaker);
                let mut r = BitReader::new(&msg.bits);
                let bit = r.read_bit().expect("empty announcement");
                assert_eq!(r.remaining(), 0, "announcements are one bit");
                if !bit {
                    covered.push(j);
                    break;
                }
                ones += 1;
                if ones == k {
                    // Intersection witnessed at column j.
                    assert!(msgs.next().is_none(), "board continues after halt");
                    return Decoded {
                        speakers,
                        output: false,
                        covered,
                    };
                }
            }
        }
        assert!(msgs.next().is_none(), "board has extra messages");
        Decoded {
            speakers,
            output: true,
            covered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn disj_function_basics() {
        let a = BitSet::from_elements(4, [0, 1]);
        let b = BitSet::from_elements(4, [2, 3]);
        assert!(disj_function(&[a.clone(), b.clone()]));
        let c = BitSet::from_elements(4, [1, 2]);
        assert!(!disj_function(&[a, c]));
    }

    #[test]
    fn both_protocols_agree_with_reference_on_random_instances() {
        let mut r = rng(42);
        for trial in 0..30 {
            let n = 40 + (trial % 5) * 17;
            let k = 2 + trial % 6;
            let inputs = workload::random_sets(n, k, 0.8, &mut r);
            let expect = disj_function(&inputs);
            assert_eq!(naive::run(&inputs).output, expect, "naive trial {trial}");
            assert_eq!(
                batched::run(&inputs).output,
                expect,
                "batched trial {trial}"
            );
        }
    }

    #[test]
    fn zero_error_on_planted_disjoint_and_intersecting() {
        let mut r = rng(7);
        for _ in 0..10 {
            let disjoint = workload::planted_zero_cover(200, 8, 0.05, &mut r);
            assert!(disj_function(&disjoint));
            assert!(naive::run(&disjoint).output);
            assert!(batched::run(&disjoint).output);

            let intersecting = workload::planted_intersection(200, 8, 3, 0.3, &mut r);
            assert!(!disj_function(&intersecting));
            assert!(!naive::run(&intersecting).output);
            assert!(!batched::run(&intersecting).output);
        }
    }

    #[test]
    fn naive_board_is_decodable_without_inputs() {
        let mut r = rng(3);
        for _ in 0..10 {
            let inputs = workload::random_sets(100, 5, 0.7, &mut r);
            let run = naive::run(&inputs);
            let dec = naive::decode(100, 5, &run.board);
            assert_eq!(dec.output, run.output);
            assert_eq!(
                dec.speakers,
                run.board
                    .messages()
                    .iter()
                    .map(|m| m.speaker)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batched_board_is_decodable_without_inputs() {
        let mut r = rng(5);
        for trial in 0..10 {
            let n = 300 + trial * 50;
            let k = 4;
            let inputs = if trial % 2 == 0 {
                workload::planted_zero_cover(n, k, 0.1, &mut r)
            } else {
                workload::planted_intersection(n, k, 2, 0.4, &mut r)
            };
            let run = batched::run(&inputs);
            let dec = batched::decode(n, k, &run.board);
            assert_eq!(dec.output, run.output, "trial {trial}");
            assert_eq!(
                dec.speakers,
                run.board
                    .messages()
                    .iter()
                    .map(|m| m.speaker)
                    .collect::<Vec<_>>(),
                "trial {trial}"
            );
            assert_eq!(dec.covered.len(), run.coords_written);
        }
    }

    #[test]
    fn batched_uses_fat_cycles_when_n_at_least_k_squared() {
        let mut r = rng(11);
        let n = 400; // k = 4 → k² = 16 ≤ 400
        let inputs = workload::planted_zero_cover(n, 4, 0.0, &mut r);
        let run = batched::run(&inputs);
        assert!(
            run.cycles > 1,
            "expected multiple cycles, got {}",
            run.cycles
        );
        assert!(run.output);
    }

    #[test]
    fn batched_beats_naive_on_disjoint_dense_instances() {
        let mut r = rng(13);
        let n = 2048;
        let k = 8;
        let inputs = workload::planted_zero_cover(n, k, 0.0, &mut r);
        let fast = batched::run(&inputs);
        let slow = naive::run(&inputs);
        assert!(
            (fast.bits as f64) < 0.75 * slow.bits as f64,
            "batched {} vs naive {}",
            fast.bits,
            slow.bits
        );
    }

    #[test]
    fn batched_cost_model_matches_exact_run() {
        let mut r = rng(17);
        for trial in 0..6 {
            let n = 256 + trial * 128;
            let k = 3 + trial;
            let inputs = workload::planted_zero_cover(n, k, 0.1, &mut r);
            let exact = batched::run(&inputs);
            let est = batched::cost(&inputs);
            assert_eq!(est.output, exact.output);
            assert_eq!(est.cycles, exact.cycles);
            assert_eq!(est.coords_written, exact.coords_written);
            assert_eq!(est.bits, exact.bits, "trial {trial}");
        }
    }

    #[test]
    fn per_coordinate_cost_respects_theorem_2_bound_in_fat_cycles() {
        let mut r = rng(19);
        let n = 4096;
        for k in [4usize, 8, 16] {
            let inputs = workload::planted_zero_cover(n, k, 0.0, &mut r);
            let run = batched::run(&inputs);
            assert!(run.output);
            // Total cost ≤ n·log₂(ek) + (passes ≈ cycles·k) + naive tail.
            let bound = n as f64 * batched::per_coordinate_bound(k)
                + (run.cycles * k) as f64
                + (k * k) as f64 * (2.0 * (k as f64).log2() + 2.0)
                + k as f64;
            assert!(
                (run.bits as f64) <= bound,
                "k={k}: bits {} > bound {bound}",
                run.bits
            );
        }
    }

    #[test]
    fn empty_universe_is_trivially_disjoint() {
        let inputs = vec![BitSet::new(0), BitSet::new(0)];
        let run = batched::run(&inputs);
        assert!(run.output);
        assert_eq!(run.bits, 0);
        assert_eq!(run.cycles, 0);
        let dec = batched::decode(0, 2, &run.board);
        assert!(dec.output);
    }

    #[test]
    fn full_sets_are_reported_non_disjoint() {
        // Everyone holds all of [n]: nobody has a zero to write.
        let inputs = vec![BitSet::full(64); 4];
        assert!(!disj_function(&inputs));
        let run = batched::run(&inputs);
        assert!(!run.output);
        // One all-pass cycle: k bits exactly (n = 64 ≥ k² = 16).
        assert_eq!(run.bits, 4);
        let naive_run = naive::run(&inputs);
        assert!(!naive_run.output);
        assert_eq!(naive_run.bits, 4, "one end-of-turn bit per player");
    }

    #[test]
    fn single_player_disjointness() {
        // k = 1: disjoint iff X₁ = ∅ ... i.e. the complement covers [n].
        let empty = BitSet::new(10);
        let run = batched::run(&[empty]);
        assert!(run.output);
        let full = BitSet::full(10);
        let run = batched::run(&[full]);
        assert!(!run.output);
    }

    #[test]
    fn naive_worst_case_bound_is_respected() {
        let mut r = rng(23);
        let n = 500;
        let k = 6;
        let inputs = workload::random_sets(n, k, 0.3, &mut r);
        let run = naive::run(&inputs);
        assert!(run.bits <= naive::worst_case_bits(n, k));
    }

    #[test]
    fn coordinatewise_agrees_and_decodes() {
        let mut r = rng(31);
        for trial in 0..25 {
            let n = 20 + trial * 13;
            let k = 2 + trial % 6;
            let inputs = workload::random_sets(n, k, 0.6, &mut r);
            let expect = disj_function(&inputs);
            let run = coordinatewise::run(&inputs);
            assert_eq!(run.output, expect, "trial {trial}");
            let dec = coordinatewise::decode(n, k, &run.board);
            assert_eq!(dec.output, expect);
            assert_eq!(
                dec.speakers,
                run.board
                    .messages()
                    .iter()
                    .map(|m| m.speaker)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn coordinatewise_halts_early_on_intersection() {
        // All sets contain coordinate 0: the first column witnesses the
        // intersection in exactly k bits.
        let inputs = vec![BitSet::full(100); 5];
        let run = coordinatewise::run(&inputs);
        assert!(!run.output);
        assert_eq!(run.bits, 5);
    }

    #[test]
    fn coordinatewise_pays_theta_k_per_late_zero() {
        // Planted single zero per coordinate, uniformly placed: expected
        // ≈ (k+1)/2 + 1 bits per column — *linear in k*, versus the batched
        // protocol's log₂(e·k). This is the A4 ablation in miniature.
        let mut r = rng(37);
        let n = 1024;
        let k = 64;
        let inputs = workload::planted_zero_cover(n, k, 0.0, &mut r);
        let cw = coordinatewise::run(&inputs);
        assert!(cw.output);
        let per_coord = cw.bits as f64 / n as f64;
        assert!(
            (per_coord - (k as f64 + 1.0) / 2.0).abs() < 2.5,
            "per-coordinate {per_coord}"
        );
        let bt = batched::run(&inputs);
        assert!(
            (bt.bits as f64) < 0.5 * cw.bits as f64,
            "batched {} vs coordinate-wise {}",
            bt.bits,
            cw.bits
        );
    }

    #[test]
    fn broadcast_disj_reproduces_the_naive_transcript() {
        use bci_blackboard::protocol::run as run_protocol;
        let mut r = rng(41);
        for trial in 0..20 {
            let n = 30 + trial * 11;
            let k = 2 + trial % 5;
            let inputs = workload::random_sets(n, k, 0.7, &mut r);
            let reference = naive::run(&inputs);
            let proto = broadcast::BroadcastDisj::new(n, k);
            let exec = run_protocol(&proto, &inputs, &mut r);
            assert_eq!(exec.output, reference.output, "trial {trial}");
            assert_eq!(exec.board, reference.board, "trial {trial}");
            assert_eq!(exec.bits_written, reference.bits);
            assert_eq!(exec.output, disj_function(&inputs));
        }
    }

    #[test]
    fn broadcast_disj_halts_early_on_full_coverage() {
        use bci_blackboard::protocol::run as run_protocol;
        let mut r = rng(43);
        // Player 0 holds the empty set: it covers everything alone and the
        // remaining players never speak.
        let n = 50;
        let mut inputs = workload::random_sets(n, 4, 0.5, &mut r);
        inputs[0] = BitSet::new(n);
        let proto = broadcast::BroadcastDisj::new(n, 4);
        let exec = run_protocol(&proto, &inputs, &mut r);
        assert!(exec.output);
        assert_eq!(exec.board.messages().len(), 1);
    }

    #[test]
    fn batched_small_universe_goes_straight_to_naive_cycle() {
        // n < k²: single naive cycle.
        let mut r = rng(29);
        let inputs = workload::planted_zero_cover(20, 8, 0.0, &mut r);
        let run = batched::run(&inputs);
        assert!(run.output);
        assert_eq!(run.cycles, 1);
        let dec = batched::decode(20, 8, &run.board);
        assert_eq!(dec.output, run.output);
    }
}
