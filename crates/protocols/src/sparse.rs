//! The Håstad–Wigderson `O(s)` protocol for *sparse* two-player set
//! disjointness.
//!
//! The paper's introduction uses this protocol as the cautionary example:
//! where one might expect `O(s log n)` (sending `s` elements of `[n]`), the
//! right answer has *no* log factor. Two players holding `X, Y ⊆ [n]` with
//! `|X| = |Y| = s` decide `X ∩ Y = ∅` in `O(s)` expected bits.
//!
//! The mechanism is the same find-the-index-in-shared-randomness idea as the
//! paper's Lemma 7 sampler: shared randomness defines an infinite sequence
//! of uniformly random sets `R₁, R₂, …`. The current speaker (say Alice,
//! holding candidate set `A`) announces the index `I` of the first `R_I ⊇ A`
//! — a geometric variable with mean `2^{|A|}`, so the (Elias-δ-coded) index
//! costs `≈ |A| + O(log |A|)` bits. Since `A ⊆ R_I`, every element of Bob's
//! set outside `R_I` is provably not in `A`, so Bob prunes `B ← B ∩ R_I`,
//! halving `B` in expectation. Roles alternate; the candidate sets shrink
//! geometrically, and the total cost telescopes to
//! `≈ 2·(s + s/2 + s/4 + …) = O(s)`.
//!
//! Invariant: `A ∩ B = X ∩ Y` at all times (pruned elements are provably
//! outside the other side's candidate set). So:
//! * a candidate set hits `∅` ⇒ disjoint, zero error;
//! * intersecting inputs shrink to the intersection and stall; after a few
//!   stalled rounds the speaker falls back to announcing its (by then tiny)
//!   candidate set explicitly — still zero error.
//!
//! **Simulation note** (cf. DESIGN.md substitution 2): scanning
//! `≈ 2^{|A|}` shared random sets is physically impossible, so the
//! simulation samples the index from its exact geometric law (in the log
//! domain for large `|A|`) and draws `R_I` from its exact conditional
//! distribution (`R ⊇ A`, rest iid fair). Behaviour and cost are
//! distribution-exact; only the unenumerable scan is elided.

use bci_encoding::bitset::{BitSet, SparseBitSet};
use rand::Rng;

/// Result of one run of the sparse-disjointness protocol.
#[derive(Debug, Clone)]
pub struct SparseRun {
    /// Total communication in bits (fractional: index codes are accounted
    /// by their exact Elias-δ lengths, which for astronomically large
    /// indices are computed from `log₂ I`).
    pub bits: f64,
    /// `true` = disjoint.
    pub output: bool,
    /// Pruning rounds executed.
    pub rounds: usize,
    /// Whether the explicit-announcement fallback fired.
    pub fallback: bool,
}

/// Elias-δ code length for an index known only through its base-2 log.
fn delta_len_from_log2(log2_i: f64) -> f64 {
    let bits = log2_i.max(0.0).floor(); // ⌊log₂ I⌋
                                        // γ(bits + 1) + bits  =  2⌊log₂(bits+1)⌋ + 1 + bits.
    2.0 * (bits + 1.0).log2().floor() + 1.0 + bits
}

/// Samples `log₂ I` where `I` is the (1-based) index of the first success
/// in Bernoulli(`2^{-a}`) trials.
fn sample_log2_index<R: Rng + ?Sized>(a: usize, rng: &mut R) -> f64 {
    if a <= 12 {
        // Exact geometric sampling by inverse CDF from a single uniform
        // draw: Pr[I > i] = (1−p)^i, so I = ⌊ln U / ln(1−p)⌋ + 1 follows
        // the geometric law exactly — where the old loop burned an
        // expected 2^a ≤ 4096 `random_bool` calls per round, this is one
        // `f64` draw regardless of `a`.
        let p = 2f64.powi(-(a as i32));
        if p >= 1.0 {
            return 0.0; // a = 0: the first set always works, I = 1
        }
        let u: f64 = rng.random::<f64>().max(1e-300);
        let i = (u.ln() / (1.0 - p).ln()).floor() + 1.0;
        i.log2()
    } else {
        // I ≈ Exp(mean 2^a): I = −ln(U)·2^a, so log₂I = a + log₂(−ln U).
        let u: f64 = rng.random::<f64>().max(1e-300);
        a as f64 + (-(u.ln())).log2().max(-(a as f64)) // clamp at I ≥ 1
    }
}

/// Draws `R` from its conditional law given `R ⊇ a_set`: the forced
/// elements plus each other element independently with probability ½
/// (word-parallel: one random `u64` per 64 elements).
fn conditioned_random_set<R: Rng + ?Sized>(a_set: &BitSet, rng: &mut R) -> BitSet {
    let words = a_set
        .words()
        .iter()
        .map(|&w| w | rng.random::<u64>())
        .collect();
    BitSet::from_words(a_set.capacity(), words)
}

/// How many consecutive non-shrinking rounds trigger the explicit fallback.
const STALL_LIMIT: usize = 4;

/// Runs the protocol on `(x, y)`.
///
/// Zero-error: the output always equals `x ∩ y = ∅`. The communication is
/// random; see [`SparseRun::bits`].
///
/// # Panics
///
/// Panics if the sets' capacities differ.
pub fn run<R: Rng + ?Sized>(x: &BitSet, y: &BitSet, rng: &mut R) -> SparseRun {
    assert_eq!(x.capacity(), y.capacity(), "universe mismatch");
    let n = x.capacity();
    let coord_bits = if n <= 1 {
        1.0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as f64
    };
    let mut a = x.clone();
    let mut b = y.clone();
    let mut bits = 0.0f64;
    let mut rounds = 0usize;
    let mut stall = 0usize;
    loop {
        // Speaker holds `a` (roles swap by swapping the bindings).
        if a.is_empty() {
            bits += 1.0; // "my set is empty" flag
            return SparseRun {
                bits,
                output: true,
                rounds,
                fallback: false,
            };
        }
        if stall >= STALL_LIMIT {
            // Fallback: announce `a` explicitly; the other side intersects.
            bits += 1.0 + coord_bits + a.len() as f64 * coord_bits;
            let disjoint = a.intersection(&b).is_empty();
            return SparseRun {
                bits,
                output: disjoint,
                rounds,
                fallback: true,
            };
        }
        // Announce the index of the first shared random set containing `a`.
        bits += 1.0 + delta_len_from_log2(sample_log2_index(a.len(), rng));
        let r = conditioned_random_set(&a, rng);
        let pruned = b.intersection(&r);
        if pruned.len() == b.len() {
            stall += 1;
        } else {
            stall = 0;
        }
        b = pruned;
        rounds += 1;
        std::mem::swap(&mut a, &mut b);
    }
}

/// Runs the protocol on sparse-set inputs — the `O(s)`-per-round fast
/// lane.
///
/// Behaviorally this is [`run`]: same alternating pruning, stall counter,
/// explicit fallback, cost accounting, and zero-error guarantee. The
/// difference is purely computational. The dense path materializes the
/// shared random set on all `n` coordinates (`n/64` random words) and
/// intersects full `n`-bit sets every round, even though only the ≤ `s`
/// surviving elements of the listener's candidate set matter; here the
/// random set is sampled *lazily on exactly the words the listener's set
/// occupies* (`R`'s word at index `i` is `a.word(i) | random`), so one
/// round costs `O(occupied words)` — independent of the universe size.
///
/// The RNG stream therefore differs from [`run`]'s (far fewer words are
/// drawn), so seeded runs are not reproductions of the dense path's runs;
/// the *distribution* of `(output, bits, rounds, fallback)` is identical,
/// which the tests check statistically. Zero error holds exactly as for
/// [`run`]: pruning only removes elements provably outside the other
/// side's candidate set.
///
/// # Panics
///
/// Panics if the sets' capacities differ.
pub fn run_sparse<R: Rng + ?Sized>(x: &SparseBitSet, y: &SparseBitSet, rng: &mut R) -> SparseRun {
    assert_eq!(x.capacity(), y.capacity(), "universe mismatch");
    let n = x.capacity();
    let coord_bits = if n <= 1 {
        1.0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as f64
    };
    let mut a = x.clone();
    let mut b = y.clone();
    let mut bits = 0.0f64;
    let mut rounds = 0usize;
    let mut stall = 0usize;
    loop {
        if a.is_empty() {
            bits += 1.0; // "my set is empty" flag
            return SparseRun {
                bits,
                output: true,
                rounds,
                fallback: false,
            };
        }
        if stall >= STALL_LIMIT {
            bits += 1.0 + coord_bits + a.len() as f64 * coord_bits;
            let disjoint = a.intersection(&b).is_empty();
            return SparseRun {
                bits,
                output: disjoint,
                rounds,
                fallback: true,
            };
        }
        bits += 1.0 + delta_len_from_log2(sample_log2_index(a.len(), rng));
        // Prune `b` against `R ⊇ a`, materializing `R` only on the words
        // `b` occupies (in word order, one random u64 each).
        let before = b.len();
        b.retain_words(|idx, w| w & (a.word(idx) | rng.random::<u64>()));
        if b.len() == before {
            stall += 1;
        } else {
            stall = 0;
        }
        rounds += 1;
        std::mem::swap(&mut a, &mut b);
    }
}

/// Result of the exact-intersection variant.
#[derive(Debug, Clone)]
pub struct IntersectRun {
    /// Total communication in bits.
    pub bits: f64,
    /// The computed intersection (always exactly `x ∩ y`).
    pub intersection: BitSet,
    /// Pruning rounds executed before the exchange.
    pub rounds: usize,
}

/// Computes the **exact intersection** `X ∩ Y` in `O(s)` expected bits —
/// the stronger primitive of Brody et al. \[8\] that the paper's introduction
/// mentions ("two players can even compute the exact intersection … using
/// `O(s)` bits").
///
/// Strategy: run the same alternating pruning as [`run`]; the candidate
/// sets converge onto the intersection (`A ∩ B = X ∩ Y` is invariant and
/// elements outside it are halved away each round). Once a candidate set
/// stops shrinking or empties, its holder announces it explicitly — by then
/// it is within a constant factor of `|X ∩ Y|` — and the other side
/// intersects with its own candidate and announces the (tiny) result.
///
/// # Panics
///
/// Panics if the sets' capacities differ.
pub fn intersect<R: Rng + ?Sized>(x: &BitSet, y: &BitSet, rng: &mut R) -> IntersectRun {
    assert_eq!(x.capacity(), y.capacity(), "universe mismatch");
    let n = x.capacity();
    let coord_bits = if n <= 1 {
        1.0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as f64
    };
    let mut a = x.clone();
    let mut b = y.clone();
    let mut bits = 0.0f64;
    let mut rounds = 0usize;
    let mut stall = 0usize;
    while !a.is_empty() && stall < STALL_LIMIT {
        bits += 1.0 + delta_len_from_log2(sample_log2_index(a.len(), rng));
        let r = conditioned_random_set(&a, rng);
        let pruned = b.intersection(&r);
        if pruned.len() == b.len() {
            stall += 1;
        } else {
            stall = 0;
        }
        b = pruned;
        rounds += 1;
        std::mem::swap(&mut a, &mut b);
    }
    // Speaker announces candidate set `a`; the other intersects with `b`
    // and announces the final (equal-or-smaller) answer.
    let announce = |set: &BitSet| 1.0 + coord_bits + set.len() as f64 * coord_bits;
    bits += announce(&a);
    let result = a.intersection(&b);
    bits += announce(&result);
    debug_assert_eq!(result, x.intersection(y));
    IntersectRun {
        bits,
        intersection: result,
        rounds,
    }
}

/// The naive baseline: one side sends its whole set
/// (`s·⌈log₂ n⌉ + ⌈log₂ n⌉` bits), the other answers with one bit.
pub fn naive_bits(n: usize, s: usize) -> f64 {
    let coord_bits = if n <= 1 {
        1.0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as f64
    };
    s as f64 * coord_bits + coord_bits + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    /// Two random disjoint s-subsets of [n].
    fn disjoint_pair<R: Rng + ?Sized>(n: usize, s: usize, r: &mut R) -> (BitSet, BitSet) {
        assert!(2 * s <= n);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, r.random_range(0..=i));
        }
        (
            BitSet::from_elements(n, perm[..s].iter().copied()),
            BitSet::from_elements(n, perm[s..2 * s].iter().copied()),
        )
    }

    fn overlapping_pair<R: Rng + ?Sized>(
        n: usize,
        s: usize,
        overlap: usize,
        r: &mut R,
    ) -> (BitSet, BitSet) {
        let (mut x, y) = disjoint_pair(n, s, r);
        let shared: Vec<usize> = y.iter().take(overlap).collect();
        let drop: Vec<usize> = x.iter().take(overlap).collect();
        for (d, s) in drop.into_iter().zip(shared) {
            x.remove(d);
            x.insert(s);
        }
        (x, y)
    }

    #[test]
    fn always_correct_on_disjoint_inputs() {
        let mut r = rng(1);
        for trial in 0..40 {
            let s = 4 + trial % 30;
            let (x, y) = disjoint_pair(4096, s, &mut r);
            let out = run(&x, &y, &mut r);
            assert!(out.output, "trial {trial}");
        }
    }

    #[test]
    fn always_correct_on_intersecting_inputs() {
        let mut r = rng(2);
        for trial in 0..40 {
            let s = 6 + trial % 30;
            let overlap = 1 + trial % 3;
            let (x, y) = overlapping_pair(4096, s, overlap, &mut r);
            assert!(!x.intersection(&y).is_empty());
            let out = run(&x, &y, &mut r);
            assert!(!out.output, "trial {trial}");
        }
    }

    #[test]
    fn cost_is_linear_in_s_not_s_log_n() {
        let n = 1 << 20;
        let mut r = rng(3);
        let mean_bits = |s: usize, r: &mut rand_chacha::ChaCha8Rng| {
            let trials = 30;
            let mut total = 0.0;
            for _ in 0..trials {
                let (x, y) = disjoint_pair(n, s, r);
                total += run(&x, &y, r).bits;
            }
            total / trials as f64
        };
        let c64 = mean_bits(64, &mut r);
        let c256 = mean_bits(256, &mut r);
        // Linear: quadrupling s roughly quadruples cost (within 2x slack).
        let growth = c256 / c64;
        assert!(
            (2.5..6.0).contains(&growth),
            "growth {growth} not ≈ 4 ({c64} → {c256})"
        );
        // And far below the naive s·log₂(n) = 20·s baseline.
        assert!(
            c256 < 0.5 * naive_bits(n, 256),
            "HW {c256} vs naive {}",
            naive_bits(n, 256)
        );
    }

    #[test]
    fn per_element_cost_is_constant_in_n() {
        // Same s, universe grown 256×: cost unchanged (no log n factor).
        let mut r = rng(4);
        let mean = |n: usize, r: &mut rand_chacha::ChaCha8Rng| {
            let trials = 30;
            (0..trials)
                .map(|_| {
                    let (x, y) = disjoint_pair(n, 128, r);
                    run(&x, &y, r).bits
                })
                .sum::<f64>()
                / trials as f64
        };
        let small = mean(1 << 12, &mut r);
        let big = mean(1 << 20, &mut r);
        assert!(
            (big - small).abs() < 0.2 * small,
            "cost moved with n: {small} → {big}"
        );
    }

    #[test]
    fn intersecting_inputs_trigger_fallback_cheaply() {
        let mut r = rng(5);
        let n = 1 << 16;
        let (x, y) = overlapping_pair(n, 200, 2, &mut r);
        let out = run(&x, &y, &mut r);
        assert!(!out.output);
        // The fallback announces only the stalled candidate set (≈ the
        // intersection), not the original 200 elements.
        assert!(
            out.bits < naive_bits(n, 200),
            "cost {} vs naive {}",
            out.bits,
            naive_bits(n, 200)
        );
    }

    #[test]
    fn intersect_is_always_exact() {
        let mut r = rng(8);
        let n = 1 << 14;
        for trial in 0..30 {
            let s = 10 + trial * 3;
            let overlap = trial % 5;
            let (x, y) = if overlap == 0 {
                disjoint_pair(n, s, &mut r)
            } else {
                overlapping_pair(n, s, overlap, &mut r)
            };
            let out = intersect(&x, &y, &mut r);
            assert_eq!(out.intersection, x.intersection(&y), "trial {trial}");
        }
    }

    #[test]
    fn intersect_cost_is_linear_in_s() {
        let n = 1 << 18;
        let mut r = rng(9);
        let mean = |s: usize, r: &mut rand_chacha::ChaCha8Rng| {
            let trials = 20;
            (0..trials)
                .map(|_| {
                    let (x, y) = overlapping_pair(n, s, 3, r);
                    intersect(&x, &y, r).bits
                })
                .sum::<f64>()
                / trials as f64
        };
        let c64 = mean(64, &mut r);
        let c256 = mean(256, &mut r);
        let growth = c256 / c64;
        assert!((2.0..7.0).contains(&growth), "growth {growth}");
        assert!(c256 < naive_bits(n, 256), "{c256} vs naive");
    }

    #[test]
    fn intersect_of_identical_sets_returns_them() {
        let mut r = rng(10);
        let x = BitSet::from_elements(1000, [3, 99, 500]);
        let out = intersect(&x, &x, &mut r);
        assert_eq!(out.intersection, x);
    }

    #[test]
    fn empty_sets_cost_one_bit() {
        let mut r = rng(6);
        let x = BitSet::new(100);
        let y = BitSet::from_elements(100, [3, 7]);
        let out = run(&x, &y, &mut r);
        assert!(out.output);
        assert_eq!(out.bits, 1.0);
        assert_eq!(out.rounds, 0);
    }

    fn to_sparse(s: &BitSet) -> SparseBitSet {
        SparseBitSet::from_dense(s)
    }

    #[test]
    fn sparse_lane_always_correct_on_disjoint_inputs() {
        let mut r = rng(11);
        for trial in 0..40 {
            let s = 4 + trial % 30;
            let (x, y) = disjoint_pair(1 << 20, s, &mut r);
            let out = run_sparse(&to_sparse(&x), &to_sparse(&y), &mut r);
            assert!(out.output, "trial {trial}");
        }
    }

    #[test]
    fn sparse_lane_always_correct_on_intersecting_inputs() {
        let mut r = rng(12);
        for trial in 0..40 {
            let s = 6 + trial % 30;
            let overlap = 1 + trial % 3;
            let (x, y) = overlapping_pair(1 << 16, s, overlap, &mut r);
            let out = run_sparse(&to_sparse(&x), &to_sparse(&y), &mut r);
            assert!(!out.output, "trial {trial}");
        }
    }

    #[test]
    fn sparse_lane_cost_distribution_matches_dense_lane() {
        // Same protocol, different RNG stream: mean bits and fallback
        // behavior must agree statistically with the dense path.
        let n = 1 << 18;
        let s = 128;
        let trials = 60;
        let mut r = rng(13);
        let mut dense_bits = 0.0;
        let mut sparse_bits = 0.0;
        for _ in 0..trials {
            let (x, y) = disjoint_pair(n, s, &mut r);
            dense_bits += run(&x, &y, &mut r).bits;
            sparse_bits += run_sparse(&to_sparse(&x), &to_sparse(&y), &mut r).bits;
        }
        let (dense_mean, sparse_mean) = (dense_bits / trials as f64, sparse_bits / trials as f64);
        assert!(
            (dense_mean - sparse_mean).abs() < 0.1 * dense_mean,
            "dense {dense_mean} vs sparse {sparse_mean}"
        );
    }

    #[test]
    fn sparse_lane_empty_sets_cost_one_bit() {
        let mut r = rng(14);
        let x = SparseBitSet::new(100);
        let y = SparseBitSet::from_elements(100, [3, 7]);
        let out = run_sparse(&x, &y, &mut r);
        assert!(out.output);
        assert_eq!(out.bits, 1.0);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn log_index_sampler_is_exact_at_small_a() {
        // a = 1: I is geometric(1/2), so Pr[I = 1] = 1/2 and E[I] = 2.
        let mut r = rng(15);
        let trials = 4000;
        let mut ones = 0usize;
        let mut sum = 0.0;
        for _ in 0..trials {
            let i = 2f64.powf(sample_log2_index(1, &mut r)).round();
            assert!(i >= 1.0);
            if i == 1.0 {
                ones += 1;
            }
            sum += i;
        }
        let p1 = ones as f64 / trials as f64;
        assert!((p1 - 0.5).abs() < 0.03, "Pr[I=1] = {p1}");
        assert!((sum / trials as f64 - 2.0).abs() < 0.15, "E[I]");
        // a = 0: the first set always contains the (empty) candidate set.
        assert_eq!(sample_log2_index(0, &mut r), 0.0);
    }

    #[test]
    fn log_index_sampler_has_the_right_mean() {
        // E[log₂ I] ≈ a + log₂(ln 2) − γ/ln2 ≈ a − 0.5287/... just check
        // it concentrates near a for both sampling regimes.
        let mut r = rng(7);
        for a in [10usize, 50] {
            let trials = 2000;
            let mean: f64 = (0..trials)
                .map(|_| sample_log2_index(a, &mut r))
                .sum::<f64>()
                / trials as f64;
            assert!(
                (mean - a as f64).abs() < 1.5,
                "a={a}: mean log index {mean}"
            );
        }
    }
}
