//! Input generators for the set-disjointness experiments.
//!
//! The paper's upper bound is worst-case, so the sweeps use instances that
//! stress different parts of the protocol:
//!
//! * [`planted_zero_cover`] — disjoint instances where zeros are scarce
//!   (each coordinate has exactly one guaranteed zero holder): the protocol
//!   must publish essentially all `n` coordinates, exposing the
//!   per-coordinate cost (`log k` vs `log n`).
//! * [`planted_intersection`] — non-disjoint instances with a planted
//!   intersection, for correctness and early-termination behaviour.
//! * [`random_sets`] — iid `Bernoulli(density)` sets, the unstructured case.
//! * [`single_holder`] — one player holds *all* the zeros: maximizes the
//!   number of cycles in the batched protocol (only `z/k` coordinates are
//!   published per cycle).

use bci_encoding::bitset::BitSet;
use rand::Rng;

/// Each player's set contains each coordinate independently with probability
/// `density`.
///
/// # Panics
///
/// Panics if `k == 0` or `density ∉ [0, 1]`.
pub fn random_sets<R: Rng + ?Sized>(n: usize, k: usize, density: f64, rng: &mut R) -> Vec<BitSet> {
    assert!(k > 0, "need at least one player");
    assert!((0.0..=1.0).contains(&density), "density outside [0,1]");
    (0..k)
        .map(|_| {
            let mut s = BitSet::new(n);
            for j in 0..n {
                if rng.random_bool(density) {
                    s.insert(j);
                }
            }
            s
        })
        .collect()
}

/// A guaranteed-disjoint instance: for every coordinate `j` one uniformly
/// random player is forced to exclude `j`; every other player excludes `j`
/// independently with probability `extra_zero_prob` (0 gives the densest,
/// hardest instances).
///
/// # Panics
///
/// Panics if `k == 0` or `extra_zero_prob ∉ [0, 1]`.
pub fn planted_zero_cover<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    extra_zero_prob: f64,
    rng: &mut R,
) -> Vec<BitSet> {
    assert!(k > 0, "need at least one player");
    assert!(
        (0.0..=1.0).contains(&extra_zero_prob),
        "probability outside [0,1]"
    );
    let mut sets = vec![BitSet::full(n); k];
    for j in 0..n {
        let z = rng.random_range(0..k);
        sets[z].remove(j);
        for (i, s) in sets.iter_mut().enumerate() {
            if i != z && extra_zero_prob > 0.0 && rng.random_bool(extra_zero_prob) {
                s.remove(j);
            }
        }
    }
    sets
}

/// A guaranteed-non-disjoint instance: iid `Bernoulli(density)` sets with
/// `m ≥ 1` uniformly chosen coordinates forced into every set.
///
/// # Panics
///
/// Panics if `k == 0`, `m == 0`, `m > n`, or `density ∉ [0, 1]`.
pub fn planted_intersection<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    m: usize,
    density: f64,
    rng: &mut R,
) -> Vec<BitSet> {
    assert!(m >= 1, "need at least one planted coordinate");
    assert!(m <= n, "cannot plant {m} coordinates in a universe of {n}");
    let mut sets = random_sets(n, k, density, rng);
    let mut planted = Vec::with_capacity(m);
    while planted.len() < m {
        let j = rng.random_range(0..n);
        if !planted.contains(&j) {
            planted.push(j);
        }
    }
    for s in &mut sets {
        for &j in &planted {
            s.insert(j);
        }
    }
    sets
}

/// A *unique-intersection promise* instance: every player's set has
/// `set_size` elements, all `k` sets share exactly one common coordinate,
/// and apart from it they are pairwise disjoint. This is the promise version
/// of disjointness the paper's related-work section connects to streaming
/// lower bounds (\[2, 17\] and Alon–Matias–Szegedy \[1\]).
///
/// Returns the instance and the planted common coordinate.
///
/// # Panics
///
/// Panics if `set_size == 0` or the sets don't fit
/// (`k·(set_size−1) + 1 > n`).
pub fn unique_intersection<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    set_size: usize,
    rng: &mut R,
) -> (Vec<BitSet>, usize) {
    assert!(k > 0, "need at least one player");
    assert!(set_size >= 1, "sets must be nonempty");
    assert!(
        k * (set_size - 1) < n,
        "universe too small: need {} ≤ {n}",
        k * (set_size - 1) + 1
    );
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.random_range(0..=i));
    }
    let common = perm[0];
    let mut sets = Vec::with_capacity(k);
    let mut next = 1;
    for _ in 0..k {
        let mut s = BitSet::new(n);
        s.insert(common);
        for _ in 0..set_size - 1 {
            s.insert(perm[next]);
            next += 1;
        }
        sets.push(s);
    }
    (sets, common)
}

/// The matching no-intersection promise instance: `k` pairwise-disjoint
/// sets of `set_size` elements each.
///
/// # Panics
///
/// Panics if `k·set_size > n`.
pub fn pairwise_disjoint<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    set_size: usize,
    rng: &mut R,
) -> Vec<BitSet> {
    assert!(k > 0, "need at least one player");
    assert!(k * set_size <= n, "universe too small");
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.random_range(0..=i));
    }
    (0..k)
        .map(|i| BitSet::from_elements(n, perm[i * set_size..(i + 1) * set_size].iter().copied()))
        .collect()
}

/// The cycle-count stressor: player 0 holds the empty set (all zeros), every
/// other player holds all of `[n]`. Disjoint for `k ≥ 1`, and only player 0
/// can ever publish, `⌈z/k⌉` coordinates per cycle.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn single_holder(n: usize, k: usize) -> Vec<BitSet> {
    assert!(k > 0, "need at least one player");
    let mut sets = vec![BitSet::full(n); k];
    sets[0] = BitSet::new(n);
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disj::disj_function;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn planted_zero_cover_is_always_disjoint() {
        let mut r = rng(1);
        for _ in 0..20 {
            let inputs = planted_zero_cover(97, 7, 0.2, &mut r);
            assert!(disj_function(&inputs));
        }
    }

    #[test]
    fn planted_zero_cover_dense_has_one_zero_per_coordinate() {
        let mut r = rng(2);
        let inputs = planted_zero_cover(50, 5, 0.0, &mut r);
        for j in 0..50 {
            let zeros = inputs.iter().filter(|s| !s.contains(j)).count();
            assert_eq!(zeros, 1, "coordinate {j}");
        }
    }

    #[test]
    fn planted_intersection_is_never_disjoint() {
        let mut r = rng(3);
        for _ in 0..20 {
            let inputs = planted_intersection(64, 4, 2, 0.1, &mut r);
            assert!(!disj_function(&inputs));
        }
    }

    #[test]
    fn planted_intersection_has_at_least_m_common() {
        let mut r = rng(4);
        let inputs = planted_intersection(64, 4, 5, 0.0, &mut r);
        let mut common = inputs[0].clone();
        for s in &inputs[1..] {
            common = common.intersection(s);
        }
        assert!(common.len() >= 5);
    }

    #[test]
    fn random_sets_density_is_respected() {
        let mut r = rng(5);
        let sets = random_sets(10_000, 1, 0.3, &mut r);
        let frac = sets[0].len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02);
    }

    #[test]
    fn random_sets_degenerate_densities() {
        let mut r = rng(6);
        assert!(random_sets(100, 2, 0.0, &mut r)
            .iter()
            .all(BitSet::is_empty));
        assert!(random_sets(100, 2, 1.0, &mut r)
            .iter()
            .all(|s| s.len() == 100));
    }

    #[test]
    fn single_holder_shape() {
        let inputs = single_holder(30, 4);
        assert!(disj_function(&inputs));
        assert!(inputs[0].is_empty());
        assert!(inputs[1..].iter().all(|s| s.len() == 30));
    }

    #[test]
    fn unique_intersection_promise_holds() {
        let mut r = rng(8);
        for trial in 0..15 {
            let k = 2 + trial % 5;
            let s = 3 + trial % 7;
            let (sets, common) = unique_intersection(200, k, s, &mut r);
            assert_eq!(sets.len(), k);
            // Every set has the right size and contains the common element.
            for set in &sets {
                assert_eq!(set.len(), s);
                assert!(set.contains(common));
            }
            // The intersection of all sets is exactly {common}.
            let mut inter = sets[0].clone();
            for set in &sets[1..] {
                inter = inter.intersection(set);
            }
            assert_eq!(inter.iter().collect::<Vec<_>>(), vec![common]);
            // Pairwise, the only shared element is the common one.
            for i in 0..k {
                for j in (i + 1)..k {
                    let shared: Vec<usize> = sets[i].intersection(&sets[j]).iter().collect();
                    assert_eq!(shared, vec![common], "pair ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn pairwise_disjoint_promise_holds() {
        let mut r = rng(9);
        let sets = pairwise_disjoint(100, 4, 10, &mut r);
        for i in 0..4 {
            assert_eq!(sets[i].len(), 10);
            for j in (i + 1)..4 {
                assert!(sets[i].is_disjoint(&sets[j]), "pair ({i},{j})");
            }
        }
        assert!(disj_function(&sets));
    }

    #[test]
    fn promise_instances_are_decided_correctly_by_the_protocols() {
        use crate::disj::{batched, naive};
        let mut r = rng(10);
        let (with, _) = unique_intersection(256, 4, 20, &mut r);
        assert!(!naive::run(&with).output);
        assert!(!batched::run(&with).output);
        let without = pairwise_disjoint(256, 4, 20, &mut r);
        assert!(naive::run(&without).output);
        assert!(batched::run(&without).output);
    }

    #[test]
    #[should_panic(expected = "universe too small")]
    fn unique_intersection_validates_fit() {
        let mut r = rng(11);
        unique_intersection(10, 4, 4, &mut r);
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn planted_intersection_validates_m() {
        let mut r = rng(7);
        planted_intersection(4, 2, 5, 0.5, &mut r);
    }
}
