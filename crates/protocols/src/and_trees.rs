//! `AND_k` protocols as exact [`ProtocolTree`]s.
//!
//! The lower-bound and compression experiments need exact transcript
//! distributions, so each `AND_k` protocol is also provided as a tree:
//!
//! * [`sequential_and`] — the zero-error witness with `IC = O(log k)`;
//! * [`all_speak_and`] — everyone announces; `CC = IC`-maximal baseline;
//! * [`truncated_and`] — the deterministic Lemma-6 family;
//! * [`noisy_sequential_and`] — each announcement passes through a binary
//!   symmetric channel with flip probability `ε`, giving a *randomized,
//!   erring* protocol (Lemma 5 requires its conclusions to hold for any
//!   small-error protocol, not just exact ones);
//! * [`lazy_and`] — with probability `δ` the first speaker "throws its hands
//!   up" and the protocol outputs 0 with no information exchanged. This is
//!   the paper's own example of transcripts that point at no player, used to
//!   test that the good-transcript machinery routes them into `B₀`.
//!
//! All trees use output `0`/`1` for the AND value.

use bci_blackboard::tree::{ProtocolTree, TreeBuilder};
use bci_encoding::bitio::BitVec;

fn bit(b: bool) -> BitVec {
    BitVec::from_bools(&[b])
}

/// The sequential `AND_k` tree: player `i` announces its bit; a zero ends
/// the protocol with output 0; `k` ones end with output 1.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use bci_protocols::and_trees::sequential_and;
///
/// let t = sequential_and(8);
/// assert_eq!(t.worst_case_bits(), 8); // CC = k
/// assert_eq!(t.leaves().len(), 9); // first zero at 0..7, or all ones
/// ```
pub fn sequential_and(k: usize) -> ProtocolTree {
    assert!(k > 0, "need at least one player");
    let mut b = TreeBuilder::new(k);
    // Build backwards from the last player.
    let mut next = b.leaf(1); // all announced 1
    for i in (0..k).rev() {
        let zero_leaf = b.leaf(0);
        next = b.internal(
            i,
            vec![
                (bit(false), [1.0, 0.0], zero_leaf),
                (bit(true), [0.0, 1.0], next),
            ],
        );
    }
    b.finish(next)
}

/// The all-speak `AND_k` tree: every player announces its bit regardless;
/// the leaf output is the AND of the announcements.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 24` (the tree has `2ᵏ` leaves).
pub fn all_speak_and(k: usize) -> ProtocolTree {
    assert!(k > 0, "need at least one player");
    assert!(
        k <= 24,
        "all-speak tree has 2^k leaves; k = {k} is too large"
    );
    let mut b = TreeBuilder::new(k);
    // Recursively: after players 0..i announced with running AND `acc`.
    fn subtree(b: &mut TreeBuilder, k: usize, i: usize, acc: bool) -> usize {
        if i == k {
            return b.leaf(usize::from(acc));
        }
        let on_zero = subtree(b, k, i + 1, false);
        let on_one = subtree(b, k, i + 1, acc);
        b.internal(
            i,
            vec![
                (bit(false), [1.0, 0.0], on_zero),
                (bit(true), [0.0, 1.0], on_one),
            ],
        )
    }
    let root = subtree(&mut b, k, 0, true);
    b.finish(root)
}

/// The truncated deterministic tree: players `0..speakers` announce; the
/// output is the AND of the announcements (silent players presumed 1).
///
/// # Panics
///
/// Panics if `k == 0` or `speakers > k`.
pub fn truncated_and(k: usize, speakers: usize) -> ProtocolTree {
    assert!(k > 0, "need at least one player");
    assert!(speakers <= k, "cannot have {speakers} speakers among {k}");
    let mut b = TreeBuilder::new(k);
    let mut next = b.leaf(1);
    for i in (0..speakers).rev() {
        let zero_leaf = b.leaf(0);
        next = b.internal(
            i,
            vec![
                (bit(false), [1.0, 0.0], zero_leaf),
                (bit(true), [0.0, 1.0], next),
            ],
        );
    }
    b.finish(next)
}

/// Sequential AND where each announcement is flipped with probability `eps`
/// (a binary symmetric channel per player).
///
/// The protocol errs: on the all-ones input some player reads as 0 with
/// probability `1 − (1−ε)ᵏ`, so choose `eps ≲ δ/k` for overall error `δ`.
///
/// # Panics
///
/// Panics if `k == 0` or `eps ∉ [0, ½]`.
pub fn noisy_sequential_and(k: usize, eps: f64) -> ProtocolTree {
    assert!(k > 0, "need at least one player");
    assert!(
        (0.0..=0.5).contains(&eps),
        "flip probability {eps} outside [0, 1/2]"
    );
    let mut b = TreeBuilder::new(k);
    let mut next = b.leaf(1);
    for i in (0..k).rev() {
        let zero_leaf = b.leaf(0);
        next = b.internal(
            i,
            vec![
                // Announce 0: truthful w.p. 1−ε on input 0, a flip w.p. ε on 1.
                (bit(false), [1.0 - eps, eps], zero_leaf),
                (bit(true), [eps, 1.0 - eps], next),
            ],
        );
    }
    b.finish(next)
}

/// Sequential AND that, with probability `delta`, gives up immediately: the
/// first speaker writes a 2-bit "give up" marker and the protocol outputs 0
/// without consulting anyone.
///
/// Give-up transcripts carry no information about the input and point at no
/// player; they are exactly the `B₀` transcripts of the paper's
/// good-transcript argument.
///
/// # Panics
///
/// Panics if `k < 2` or `delta ∉ [0, 1)`.
pub fn lazy_and(k: usize, delta: f64) -> ProtocolTree {
    assert!(k >= 2, "lazy AND needs k ≥ 2");
    assert!((0.0..1.0).contains(&delta), "delta {delta} outside [0,1)");
    let mut b = TreeBuilder::new(k);
    // Ordinary sequential tail for players 1..k.
    let mut next = b.leaf(1);
    for i in (1..k).rev() {
        let zero_leaf = b.leaf(0);
        next = b.internal(
            i,
            vec![
                (bit(false), [1.0, 0.0], zero_leaf),
                (bit(true), [0.0, 1.0], next),
            ],
        );
    }
    // Player 0 has three moves: "00" = give up (input-independent),
    // "01" = announce 0, "1" = announce 1.
    let give_up = b.leaf(0);
    let zero_leaf = b.leaf(0);
    let root = b.internal(
        0,
        vec![
            (BitVec::from_bools(&[false, false]), [delta, delta], give_up),
            (
                BitVec::from_bools(&[false, true]),
                [1.0 - delta, 0.0],
                zero_leaf,
            ),
            (bit(true), [0.0, 1.0 - delta], next),
        ],
    );
    b.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::and::and_function;

    fn and_usize(x: &[bool]) -> usize {
        usize::from(and_function(x))
    }

    #[test]
    fn sequential_tree_is_exact() {
        for k in [1usize, 2, 3, 7] {
            let t = sequential_and(k);
            assert_eq!(t.worst_case_error(and_usize), 0.0, "k={k}");
            assert_eq!(t.worst_case_bits(), k);
        }
    }

    #[test]
    fn sequential_tree_matches_executable_protocol() {
        use bci_blackboard::protocol::run;
        use rand::SeedableRng;
        let k = 5;
        let tree = sequential_and(k);
        let exec_protocol = crate::and::SequentialAnd::new(k);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        for xi in 0..(1u32 << k) {
            let x: Vec<bool> = (0..k).map(|i| (xi >> i) & 1 == 1).collect();
            let exec = run(&exec_protocol, &x, &mut rng);
            // The tree is deterministic: exactly one leaf has probability 1.
            let dist = tree.transcript_dist_given_input(&x);
            let leaf = dist.iter().position(|&p| p > 0.99).expect("deterministic");
            assert_eq!(tree.leaves()[leaf].output, usize::from(exec.output));
            assert_eq!(tree.leaves()[leaf].path_bits, exec.bits_written);
        }
    }

    #[test]
    fn sequential_ic_is_first_zero_entropy() {
        // Under iid Bern(p) inputs the transcript is determined by the index
        // of the first zero, so IC = H(geometric-truncated distribution).
        let k = 10;
        let p1: f64 = 0.9; // Pr[X_i = 1]
        let t = sequential_and(k);
        let mut probs: Vec<f64> = (0..k).map(|i| p1.powi(i as i32) * (1.0 - p1)).collect();
        probs.push(p1.powi(k as i32));
        let h = bci_info::entropy::entropy(&probs);
        let ic = t.information_cost_product(&vec![p1; k]);
        assert!((ic - h).abs() < 1e-10, "ic={ic} h={h}");
    }

    #[test]
    fn all_speak_leaks_everything() {
        let k = 6;
        let t = all_speak_and(k);
        assert_eq!(t.worst_case_error(and_usize), 0.0);
        assert_eq!(t.worst_case_bits(), k);
        // Uniform inputs: transcript = input, IC = k bits.
        let ic = t.information_cost_product(&vec![0.5; k]);
        assert!((ic - k as f64).abs() < 1e-10);
        // And strictly more than sequential under the same prior.
        let seq_ic = sequential_and(k).information_cost_product(&vec![0.5; k]);
        assert!(seq_ic < ic);
    }

    #[test]
    fn truncated_error_is_probability_of_silent_zero() {
        let k = 8;
        let l = 5;
        let t = truncated_and(k, l);
        // Worst case: all speakers hold 1, some silent player holds 0.
        let mut x = vec![true; k];
        x[l] = false; // silent zero
        assert_eq!(t.error_on_input(&x, and_usize(&x)), 1.0);
        // Zero among speakers: no error.
        let mut y = vec![true; k];
        y[0] = false;
        assert_eq!(t.error_on_input(&y, and_usize(&y)), 0.0);
    }

    #[test]
    fn noisy_tree_error_scales_with_eps() {
        let k = 6;
        let eps = 0.01;
        let t = noisy_sequential_and(k, eps);
        let err = t.worst_case_error(and_usize);
        assert!(err > 0.0, "noise must cause some error");
        // Union bound: error ≤ k·ε.
        assert!(err <= k as f64 * eps + 1e-12, "err={err}");
        // Zero noise degenerates to the exact protocol.
        assert_eq!(
            noisy_sequential_and(k, 0.0).worst_case_error(and_usize),
            0.0
        );
    }

    #[test]
    fn lazy_tree_error_equals_delta_exactly_on_all_ones() {
        let k = 4;
        let delta = 0.07;
        let t = lazy_and(k, delta);
        let all_ones = vec![true; k];
        let err = t.error_on_input(&all_ones, 1);
        assert!((err - delta).abs() < 1e-12);
        // On inputs with a zero the output 0 is always right.
        let with_zero = vec![true, false, true, true];
        assert_eq!(t.error_on_input(&with_zero, 0), 0.0);
        assert!((t.worst_case_error(and_usize) - delta).abs() < 1e-12);
    }

    #[test]
    fn lazy_tree_give_up_leaf_carries_no_information() {
        let k = 4;
        let t = lazy_and(k, 0.25);
        // The give-up leaf is the 2-bit path with q_{i,0} = q_{i,1} for all i
        // except player 0 where q_{0,0} = q_{0,1} = δ.
        let giveup = t
            .leaves()
            .iter()
            .find(|l| l.path_bits == 2 && (l.q(0, false) - l.q(0, true)).abs() < 1e-15)
            .expect("give-up leaf");
        for i in 0..k {
            assert!((giveup.q(i, false) - giveup.q(i, true)).abs() < 1e-15);
        }
    }

    #[test]
    fn factorized_ic_cross_validates_on_randomized_trees() {
        let t = noisy_sequential_and(5, 0.1);
        let priors = [0.9, 0.8, 0.95, 0.85, 0.9];
        let fast = t.information_cost_product(&priors);
        let slow = t.information_cost_bruteforce(&priors);
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");

        let t = lazy_and(4, 0.3);
        let priors = [0.7, 0.9, 0.6, 0.8];
        let fast = t.information_cost_product(&priors);
        let slow = t.information_cost_bruteforce(&priors);
        assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }
}
