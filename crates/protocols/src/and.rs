//! Executable `AND_k` protocols.
//!
//! `AND_k(X₁, …, X_k) = X₁ ∧ … ∧ X_k` on one-bit inputs. Three protocols:
//!
//! * [`SequentialAnd`] — players announce their bit in order and stop at the
//!   first zero. Worst-case communication `k`, but external information cost
//!   only `O(log k)` (the transcript is determined by the index of the first
//!   zero — Section 6 of the paper uses exactly this protocol to exhibit the
//!   `Ω(k / log k)` compression gap).
//! * [`AllSpeakAnd`] — everyone announces regardless; communication exactly
//!   `k`. The maximally-leaky baseline.
//! * [`TruncatedAnd`] — only players `0..speakers` announce; the output
//!   guesses that silent players hold 1. Deterministic and *wrong* with the
//!   probability quantified by Lemma 6; the `Ω(k)` experiment sweeps
//!   `speakers`.

use bci_blackboard::board::Board;
use bci_blackboard::protocol::Protocol;
use bci_blackboard::PlayerId;
use bci_encoding::bitio::BitVec;
use rand::RngCore;

/// The reference function: logical AND of all input bits.
pub fn and_function(inputs: &[bool]) -> bool {
    inputs.iter().all(|&b| b)
}

/// Players 0, 1, … announce their bit until someone says 0 or all have
/// spoken. Output: 1 iff all announced bits were 1 and all `k` players spoke.
#[derive(Debug, Clone)]
pub struct SequentialAnd {
    k: usize,
}

impl SequentialAnd {
    /// Creates the protocol for `k` players.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one player");
        SequentialAnd { k }
    }
}

impl Protocol for SequentialAnd {
    type Input = bool;
    type Output = bool;

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        match board.messages().last() {
            Some(m) if m.bits.get(0) == Some(false) => None,
            _ if board.messages().len() >= self.k => None,
            _ => Some(board.messages().len()),
        }
    }

    fn message(
        &self,
        _player: PlayerId,
        input: &bool,
        _board: &Board,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        BitVec::from_bools(&[*input])
    }

    fn output(&self, board: &Board) -> bool {
        board.messages().len() == self.k
            && board.messages().iter().all(|m| m.bits.get(0) == Some(true))
    }
}

/// Every player announces its bit; output is the AND of all announcements.
/// Communication is exactly `k` on every input.
#[derive(Debug, Clone)]
pub struct AllSpeakAnd {
    k: usize,
}

impl AllSpeakAnd {
    /// Creates the protocol for `k` players.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one player");
        AllSpeakAnd { k }
    }
}

impl Protocol for AllSpeakAnd {
    type Input = bool;
    type Output = bool;

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        (board.messages().len() < self.k).then_some(board.messages().len())
    }

    fn message(
        &self,
        _player: PlayerId,
        input: &bool,
        _board: &Board,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        BitVec::from_bools(&[*input])
    }

    fn output(&self, board: &Board) -> bool {
        board.messages().iter().all(|m| m.bits.get(0) == Some(true))
    }
}

/// The sequential protocol cut short: players `0..speakers` announce in
/// order (stopping early at a zero, like [`SequentialAnd`]); the output
/// optimistically assumes every silent player holds 1.
///
/// This is the protocol family behind the paper's Lemma 6: any deterministic
/// protocol in which fewer than `(1 − ε/(1−ε′))·k` players speak on the
/// all-ones input errs with probability `> ε` under the hard distribution
/// `μ'`. The experiment sweeps `speakers` and measures the error.
#[derive(Debug, Clone)]
pub struct TruncatedAnd {
    k: usize,
    speakers: usize,
}

impl TruncatedAnd {
    /// Creates the protocol: `speakers` of the `k` players announce.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `speakers > k`.
    pub fn new(k: usize, speakers: usize) -> Self {
        assert!(k > 0, "need at least one player");
        assert!(speakers <= k, "cannot have {speakers} speakers among {k}");
        TruncatedAnd { k, speakers }
    }

    /// How many players speak.
    pub fn speakers(&self) -> usize {
        self.speakers
    }
}

impl Protocol for TruncatedAnd {
    type Input = bool;
    type Output = bool;

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        match board.messages().last() {
            Some(m) if m.bits.get(0) == Some(false) => None,
            _ if board.messages().len() >= self.speakers => None,
            _ => Some(board.messages().len()),
        }
    }

    fn message(
        &self,
        _player: PlayerId,
        input: &bool,
        _board: &Board,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        BitVec::from_bools(&[*input])
    }

    fn output(&self, board: &Board) -> bool {
        board.messages().iter().all(|m| m.bits.get(0) == Some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bci_blackboard::protocol::run;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(0)
    }

    fn bools(pattern: &[u8]) -> Vec<bool> {
        pattern.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn sequential_and_is_correct_on_all_inputs() {
        let p = SequentialAnd::new(4);
        for xi in 0..16u32 {
            let x: Vec<bool> = (0..4).map(|i| (xi >> i) & 1 == 1).collect();
            let exec = run(&p, &x, &mut rng());
            assert_eq!(exec.output, and_function(&x), "input {x:?}");
        }
    }

    #[test]
    fn sequential_and_stops_at_first_zero() {
        let p = SequentialAnd::new(6);
        let exec = run(&p, &bools(&[1, 1, 0, 1, 1, 1]), &mut rng());
        assert_eq!(exec.bits_written, 3);
        assert!(!exec.output);
        // All ones: everyone speaks.
        let exec = run(&p, &bools(&[1; 6]), &mut rng());
        assert_eq!(exec.bits_written, 6);
        assert!(exec.output);
    }

    #[test]
    fn sequential_and_communication_is_first_zero_index_plus_one() {
        let p = SequentialAnd::new(8);
        for z in 0..8 {
            let mut x = vec![true; 8];
            x[z] = false;
            let exec = run(&p, &x, &mut rng());
            assert_eq!(exec.bits_written, z + 1);
        }
    }

    #[test]
    fn all_speak_and_always_costs_k() {
        let p = AllSpeakAnd::new(5);
        for x in [bools(&[0, 0, 0, 0, 0]), bools(&[1, 1, 1, 1, 1])] {
            let exec = run(&p, &x, &mut rng());
            assert_eq!(exec.bits_written, 5);
            assert_eq!(exec.output, and_function(&x));
        }
    }

    #[test]
    fn truncated_and_errs_exactly_on_silent_zeros() {
        let p = TruncatedAnd::new(6, 3);
        // Zero among the speakers: correct.
        let exec = run(&p, &bools(&[1, 0, 1, 1, 1, 1]), &mut rng());
        assert!(!exec.output);
        // Zero only among the silent: wrong.
        let exec = run(&p, &bools(&[1, 1, 1, 0, 1, 1]), &mut rng());
        assert!(exec.output, "truncated protocol misses the zero");
        assert_ne!(exec.output, and_function(&bools(&[1, 1, 1, 0, 1, 1])));
        assert_eq!(exec.bits_written, 3);
    }

    #[test]
    fn truncated_with_all_speakers_is_correct() {
        let p = TruncatedAnd::new(4, 4);
        for xi in 0..16u32 {
            let x: Vec<bool> = (0..4).map(|i| (xi >> i) & 1 == 1).collect();
            assert_eq!(run(&p, &x, &mut rng()).output, and_function(&x));
        }
    }

    #[test]
    fn truncated_zero_speakers_writes_nothing() {
        let p = TruncatedAnd::new(3, 0);
        let exec = run(&p, &bools(&[0, 0, 0]), &mut rng());
        assert_eq!(exec.bits_written, 0);
        assert!(exec.output, "vacuous AND of no announcements");
    }

    #[test]
    #[should_panic(expected = "cannot have")]
    fn truncated_validates_speakers() {
        TruncatedAnd::new(3, 4);
    }
}
