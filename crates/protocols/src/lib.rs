#![warn(missing_docs)]

//! Concrete broadcast protocols from the paper.
//!
//! * [`and`] — executable `AND_k` protocols: the sequential protocol whose
//!   information cost is `O(log k)` (Section 6), the all-speak variant, and
//!   the truncated deterministic family used by the Lemma-6 `Ω(k)` bound.
//! * [`and_trees`] — the same protocols as exact
//!   [`ProtocolTree`](bci_blackboard::tree::ProtocolTree)s, plus noisy and
//!   lazy variants with tunable error, for the lower-bound experiments.
//! * [`disj`] — set disjointness: the naive `O(n log n + k)` protocol from
//!   the introduction and the batched `O(n log k + k)` protocol of
//!   Theorem 2, each with an input-free board decoder that proves the
//!   transcript is self-describing.
//! * [`msgpass`] — the message-passing counterparts the separations are
//!   measured against: `DISJ` on the BEOPV coordinator star and on a
//!   point-to-point ring (both `Θ(nk)`), and star `AND_k` — all as
//!   [`RoutedProtocol`](bci_topology::RoutedProtocol)s over explicit
//!   topologies.
//! * [`union`] — the pointwise-OR (set union) problem the paper discusses
//!   alongside symmetrization, with the same naive/batched pair.
//! * [`sparse`] — the Håstad–Wigderson `O(s)` two-player protocol for
//!   sparse set disjointness cited in the introduction (the classic example
//!   of a log factor that *doesn't* arise).
//! * [`workload`] — input generators for the disjointness experiments.
//!
//! # Example
//!
//! ```
//! use bci_protocols::disj::{batched, naive};
//! use bci_protocols::workload;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let inputs = workload::planted_zero_cover(512, 16, 0.0, &mut rng);
//! let fast = batched::run(&inputs);
//! let slow = naive::run(&inputs);
//! assert!(fast.output && slow.output); // the instance is disjoint
//! assert!(fast.bits < slow.bits); // log k beats log n per coordinate
//! ```

pub mod and;
pub mod and_trees;
pub mod disj;
pub mod disj_trees;
pub mod msgpass;
pub mod sparse;
pub mod union;
pub mod workload;
