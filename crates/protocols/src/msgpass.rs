//! Message-passing counterparts of the broadcast protocols: DISJ and
//! AND over the coordinator-star and point-to-point topologies.
//!
//! These are the protocols the paper's separations are measured
//! *against*. On the blackboard, Theorem 2 solves `DISJ_{n,k}` with
//! `O(n log k + k)` bits because one published zero kills a coordinate
//! for everyone. In the message-passing world a bit only reaches one
//! endpoint, and Braverman–Ellen–Oshman–Pitassi–Vaikuntanathan show
//! `Ω(nk)` is unavoidable; the natural upper bounds here match it:
//!
//! * [`StarDisj`] — the BEOPV coordinator star: every non-hub player
//!   ships its `n`-bit characteristic vector to the hub, which
//!   intersects and answers each spoke with one bit. Exactly
//!   `n(k−1) + (k−1)` bits, `Θ(nk)` of them through the hub.
//! * [`P2pDisj`] — a ring: the running intersection travels
//!   `0 → 1 → … → k−1` (`n` bits per hop), then the 1-bit verdict makes
//!   a lap. The *total* is the same `n(k−1) + (k−1)`, but the per-player
//!   load drops from the hub's `Θ(nk)` to `Θ(n)` — the accounting
//!   distinction [`TopologyCommStats`](bci_topology::TopologyCommStats)
//!   exists to expose.
//! * [`StarAnd`] — multiparty `AND_k` on the star: one bit up from each
//!   spoke, one bit back down; `2(k−1)` bits. The e20 experiment
//!   compares its information cost under the hard distribution against
//!   the blackboard CIC lane (Gronemeier's number-in-hand regime).
//!
//! All three are deterministic (zero RNG draws), use oblivious
//! schedules (turn number alone determines speaker and link), and pin
//! their exact cost as closed forms (`worst_case_bits`) that the tests
//! check against the engine's accounting.

use bci_blackboard::PlayerId;
use bci_encoding::bitio::BitVec;
use bci_encoding::bitset::BitSet;
use bci_topology::{Link, PlayerView, RoutedBoard, RoutedProtocol, Topology};
use rand::RngCore;

/// Encodes a set as its `n`-bit characteristic vector.
fn characteristic(x: &BitSet) -> BitVec {
    let n = x.capacity();
    let mut bits = BitVec::with_capacity(n);
    for j in 0..n {
        bits.push(x.contains(j));
    }
    bits
}

/// Decodes a characteristic vector back to a set.
fn from_characteristic(bits: &BitVec, n: usize) -> BitSet {
    let mut x = BitSet::new(n);
    for j in 0..n {
        if bits.get(j).expect("vector covers the universe") {
            x.insert(j);
        }
    }
    x
}

/// The last message in `view` directed *to* the viewing player.
fn last_inbound<'a>(view: &'a PlayerView<'_>) -> &'a BitVec {
    let me = view.player();
    view.messages()
        .iter()
        .rev()
        .find(|m| matches!(m.link, Link::Directed { to, .. } if to == me))
        .map(|m| &m.bits)
        .expect("an inbound message has arrived")
}

/// `DISJ_{n,k}` on the BEOPV coordinator star (hub = player 0).
///
/// Schedule: turns `0..k−1` are uplinks — player `t+1` sends its
/// characteristic vector to the hub — and turns `k−1..2(k−1)` are
/// downlinks — the hub answers each spoke with the 1-bit verdict
/// (`1` = disjoint). The hub's own input joins the intersection
/// locally, for free.
#[derive(Debug, Clone)]
pub struct StarDisj {
    n: usize,
    k: usize,
}

impl StarDisj {
    /// A star instance over universe `[n]` with `k ≥ 2` players.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a one-player star has no links).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "the star needs a hub and at least one spoke");
        StarDisj { n, k }
    }

    /// Exact cost: `n(k−1)` uplink bits plus `k−1` downlink bits. The
    /// schedule is oblivious, so every execution pays exactly this.
    pub fn worst_case_bits(n: usize, k: usize) -> usize {
        n * (k - 1) + (k - 1)
    }

    /// The hub's directed load: it touches every bit.
    pub fn hub_bits(n: usize, k: usize) -> usize {
        Self::worst_case_bits(n, k)
    }
}

impl RoutedProtocol for StarDisj {
    type Input = BitSet;
    type Output = bool;

    fn topology(&self) -> Topology {
        Topology::CoordinatorStar { hub: 0 }
    }

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_turn(&self, board: &RoutedBoard) -> Option<(PlayerId, Link)> {
        let t = board.messages().len();
        let spokes = self.k - 1;
        if t < spokes {
            let p = t + 1;
            Some((p, Link::Directed { from: p, to: 0 }))
        } else if t < 2 * spokes {
            let p = t - spokes + 1;
            Some((0, Link::Directed { from: 0, to: p }))
        } else {
            None
        }
    }

    fn message(
        &self,
        speaker: PlayerId,
        input: &BitSet,
        view: &PlayerView<'_>,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        assert_eq!(input.capacity(), self.n, "input universe mismatch");
        if speaker == 0 {
            // After the first downlink the hub just repeats its own
            // verdict (its prior sends are in its view).
            if let Some(prev) = view.messages().iter().rev().find(|m| m.speaker == 0) {
                return BitVec::from_bools(&[prev.bits.get(0).expect("verdict bit")]);
            }
            // First downlink: intersect the hub's set with every uplink.
            let mut inter = input.clone();
            for m in view.messages() {
                if matches!(m.link, Link::Directed { to: 0, .. }) {
                    inter = inter.intersection(&from_characteristic(&m.bits, self.n));
                }
            }
            BitVec::from_bools(&[inter.is_empty()])
        } else {
            characteristic(input)
        }
    }

    fn output(&self, board: &RoutedBoard) -> bool {
        // The first downlink carries the verdict; the referee reads it
        // off the global transcript.
        let first_down = &board.messages()[self.k - 1];
        debug_assert_eq!(first_down.speaker, 0);
        first_down.bits.get(0).expect("verdict bit")
    }
}

/// `DISJ_{n,k}` on a point-to-point ring.
///
/// Schedule: turns `0..k−1` push the running intersection forward
/// (`i → i+1`, `n` bits each; player `i` ANDs in its own set before
/// forwarding), then the 1-bit verdict laps the ring: `k−1 → 0`, then
/// `s−1 → s` for `s = 1..k−1`. Same total as [`StarDisj`] — the `Θ(nk)`
/// lower bound doesn't care about the wiring — but the heaviest player
/// carries only `2n + 2` bits instead of the hub's `Θ(nk)`.
#[derive(Debug, Clone)]
pub struct P2pDisj {
    n: usize,
    k: usize,
}

impl P2pDisj {
    /// A ring instance over universe `[n]` with `k ≥ 2` players.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a one-player ring has no links).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 2, "the ring needs at least two players");
        P2pDisj { n, k }
    }

    /// Exact cost: `n(k−1)` forwarding bits plus `k−1` verdict bits —
    /// identical to the star's total.
    pub fn worst_case_bits(n: usize, k: usize) -> usize {
        n * (k - 1) + (k - 1)
    }

    /// The heaviest player's directed load: an interior player receives
    /// and re-sends the `n`-bit intersection plus the verdict bit. With
    /// fewer than four players no one both relays the intersection and
    /// re-sends the verdict, so the hot spot is slightly lighter.
    pub fn max_player_bits(n: usize, k: usize) -> usize {
        match k {
            // Both players touch one n-bit hop and one verdict bit.
            2 => n + 1,
            // The single interior player receives the verdict last and
            // never re-sends it.
            3 => 2 * n + 1,
            _ => 2 * n + 2,
        }
    }
}

impl RoutedProtocol for P2pDisj {
    type Input = BitSet;
    type Output = bool;

    fn topology(&self) -> Topology {
        Topology::PointToPoint
    }

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_turn(&self, board: &RoutedBoard) -> Option<(PlayerId, Link)> {
        let t = board.messages().len();
        let hops = self.k - 1;
        if t < hops {
            // Forward pass: t → t+1.
            Some((t, Link::Directed { from: t, to: t + 1 }))
        } else if t < 2 * hops {
            // Verdict lap: k−1 → 0, then s−1 → s.
            let s = t - hops;
            if s == 0 {
                Some((hops, Link::Directed { from: hops, to: 0 }))
            } else {
                Some((s - 1, Link::Directed { from: s - 1, to: s }))
            }
        } else {
            None
        }
    }

    fn message(
        &self,
        speaker: PlayerId,
        input: &BitSet,
        view: &PlayerView<'_>,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        assert_eq!(input.capacity(), self.n, "input universe mismatch");
        // The phase is determined by what this player has seen + sent:
        // count its own prior sends.
        let me = view.player();
        let sent_before = view.messages().iter().filter(|m| m.speaker == me).count();
        let last = self.k - 1;
        if speaker < last && sent_before == 0 {
            // Forward pass: intersect what arrived (nothing, for player
            // 0) with the own set and forward.
            let running = if speaker == 0 {
                input.clone()
            } else {
                from_characteristic(last_inbound(view), self.n).intersection(input)
            };
            characteristic(&running)
        } else if speaker == last && sent_before == 0 {
            // End of the line: decide and start the verdict lap.
            let inter = from_characteristic(last_inbound(view), self.n).intersection(input);
            BitVec::from_bools(&[inter.is_empty()])
        } else {
            // Relay the verdict unchanged.
            let verdict = last_inbound(view).get(0).expect("verdict bit");
            BitVec::from_bools(&[verdict])
        }
    }

    fn output(&self, board: &RoutedBoard) -> bool {
        // The first verdict message (turn k−1) is the decision.
        let first_verdict = &board.messages()[self.k - 1];
        debug_assert_eq!(first_verdict.speaker, self.k - 1);
        first_verdict.bits.get(0).expect("verdict bit")
    }
}

/// Multiparty `AND_k` on the coordinator star: spokes send their bit up,
/// the hub answers everyone with the conjunction.
///
/// The message-passing calibration point for the e2/e20 information-cost
/// lane: its communication is exactly `2(k−1)` bits, and under the
/// paper's hard distribution its external information cost grows like
/// the entropy of the spokes' inputs — `Θ(log k)` *per instance more*
/// than the broadcast CIC of sequential `AND_k` (Gronemeier's
/// number-in-hand regime).
#[derive(Debug, Clone)]
pub struct StarAnd {
    k: usize,
}

impl StarAnd {
    /// A star `AND_k` instance with `k ≥ 2` players (hub = player 0).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "the star needs a hub and at least one spoke");
        StarAnd { k }
    }

    /// Exact cost: one uplink and one downlink bit per spoke.
    pub fn worst_case_bits(k: usize) -> usize {
        2 * (k - 1)
    }
}

impl RoutedProtocol for StarAnd {
    type Input = bool;
    type Output = bool;

    fn topology(&self) -> Topology {
        Topology::CoordinatorStar { hub: 0 }
    }

    fn num_players(&self) -> usize {
        self.k
    }

    fn next_turn(&self, board: &RoutedBoard) -> Option<(PlayerId, Link)> {
        let t = board.messages().len();
        let spokes = self.k - 1;
        if t < spokes {
            let p = t + 1;
            Some((p, Link::Directed { from: p, to: 0 }))
        } else if t < 2 * spokes {
            let p = t - spokes + 1;
            Some((0, Link::Directed { from: 0, to: p }))
        } else {
            None
        }
    }

    fn message(
        &self,
        speaker: PlayerId,
        input: &bool,
        view: &PlayerView<'_>,
        _rng: &mut dyn RngCore,
    ) -> BitVec {
        if speaker == 0 {
            if let Some(prev) = view.messages().iter().rev().find(|m| m.speaker == 0) {
                return BitVec::from_bools(&[prev.bits.get(0).expect("verdict bit")]);
            }
            let conj = *input
                && view
                    .messages()
                    .iter()
                    .filter(|m| matches!(m.link, Link::Directed { to: 0, .. }))
                    .all(|m| m.bits.get(0).expect("one bit"));
            BitVec::from_bools(&[conj])
        } else {
            BitVec::from_bools(&[*input])
        }
    }

    fn output(&self, board: &RoutedBoard) -> bool {
        board.messages()[self.k - 1]
            .bits
            .get(0)
            .expect("verdict bit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disj::disj_function;
    use crate::workload;
    use bci_topology::run_routed;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn star_and_ring_agree_with_the_reference_function() {
        let mut r = rng(61);
        for trial in 0..30 {
            let n = 16 + (trial % 7) * 23;
            let k = 2 + trial % 6;
            let inputs = if trial % 3 == 0 {
                workload::planted_zero_cover(n, k, 0.2, &mut r)
            } else {
                workload::random_sets(n, k, 0.8, &mut r)
            };
            let expect = disj_function(&inputs);
            let star = run_routed(&StarDisj::new(n, k), &inputs, &rng(trial as u64));
            assert_eq!(star.output, expect, "star trial {trial}");
            let ring = run_routed(&P2pDisj::new(n, k), &inputs, &rng(trial as u64));
            assert_eq!(ring.output, expect, "ring trial {trial}");
        }
    }

    #[test]
    fn costs_match_the_closed_forms_exactly() {
        let mut r = rng(67);
        for (n, k) in [(32usize, 2usize), (64, 3), (128, 5), (200, 8)] {
            let inputs = workload::random_sets(n, k, 0.5, &mut r);

            let star = run_routed(&StarDisj::new(n, k), &inputs, &rng(0));
            assert_eq!(star.stats.total_bits, StarDisj::worst_case_bits(n, k));
            assert_eq!(star.stats.broadcast_bits, 0);
            assert_eq!(star.stats.messages, 2 * (k - 1));
            // The hub touches every directed bit.
            assert_eq!(star.stats.player_bits[0], StarDisj::hub_bits(n, k));
            assert_eq!(star.stats.max_player_bits, StarDisj::hub_bits(n, k));
            // Every spoke carries n + 1.
            for p in 1..k {
                assert_eq!(star.stats.player_bits[p], n + 1);
            }

            let ring = run_routed(&P2pDisj::new(n, k), &inputs, &rng(0));
            assert_eq!(ring.stats.total_bits, P2pDisj::worst_case_bits(n, k));
            assert_eq!(ring.stats.messages, 2 * (k - 1));
            assert_eq!(ring.stats.max_player_bits, P2pDisj::max_player_bits(n, k));
        }
    }

    #[test]
    fn ring_spreads_the_load_the_star_concentrates() {
        let mut r = rng(71);
        let (n, k) = (256, 16);
        let inputs = workload::random_sets(n, k, 0.5, &mut r);
        let star = run_routed(&StarDisj::new(n, k), &inputs, &rng(0));
        let ring = run_routed(&P2pDisj::new(n, k), &inputs, &rng(0));
        // Same total, wildly different hot spot.
        assert_eq!(star.stats.total_bits, ring.stats.total_bits);
        assert!(
            star.stats.max_player_bits > 7 * ring.stats.max_player_bits,
            "hub {} vs ring max {}",
            star.stats.max_player_bits,
            ring.stats.max_player_bits
        );
    }

    #[test]
    fn executions_are_deterministic_and_replayable() {
        let mut r = rng(73);
        let inputs = workload::random_sets(96, 5, 0.6, &mut r);
        let a = run_routed(&StarDisj::new(96, 5), &inputs, &rng(1));
        let b = run_routed(&StarDisj::new(96, 5), &inputs, &rng(2));
        // Zero RNG draws: any seed yields the identical transcript.
        assert_eq!(a.board, b.board);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn star_and_computes_the_conjunction() {
        for k in [2usize, 3, 5, 9] {
            for pattern in 0u32..(1 << k).min(64) {
                let inputs: Vec<bool> = (0..k).map(|i| pattern >> i & 1 == 1).collect();
                let expect = inputs.iter().all(|&b| b);
                let exec = run_routed(&StarAnd::new(k), &inputs, &rng(0));
                assert_eq!(exec.output, expect, "k={k} pattern={pattern:b}");
                assert_eq!(exec.stats.total_bits, StarAnd::worst_case_bits(k));
            }
        }
    }

    #[test]
    fn two_player_edge_cases() {
        // k = 2 degenerates to one uplink + one downlink (star) and one
        // forward hop + one verdict hop (ring).
        let a = BitSet::from_elements(8, [0, 3]);
        let b = BitSet::from_elements(8, [3, 7]);
        let star = run_routed(&StarDisj::new(8, 2), &[a.clone(), b.clone()], &rng(0));
        assert!(!star.output);
        assert_eq!(star.stats.total_bits, 9);
        let ring = run_routed(&P2pDisj::new(8, 2), &[a, b], &rng(0));
        assert!(!ring.output);
        assert_eq!(ring.stats.total_bits, 9);
    }
}
