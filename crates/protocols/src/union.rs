//! Computing the union (pointwise-OR) of the players' sets.
//!
//! The paper's related-work discussion singles out *pointwise-OR* — the
//! players must output the vector `Y` with `Y^j = ⋁ᵢ Xᵢ^j`, i.e. the union
//! `⋃ᵢ Xᵢ` — as a problem where symmetrization proves `Ω(n log k)` but the
//! technique fails for disjointness. The upper-bound side mirrors Theorem 2:
//! members (instead of zeros) are published, and batching them into subset
//! codes brings the per-element cost from `log₂ n` down to `log₂(e·k)` on
//! dense unions.
//!
//! Unlike disjointness, a fat cycle where everyone passes cannot end the
//! protocol — unpublished coordinates might still be members held thinly —
//! so an all-pass cycle (or reaching `z < k²`) drops into one final naive
//! cycle where everyone dumps all remaining members. The output is the full
//! union, read off the board.

use bci_blackboard::board::Board;
use bci_encoding::approx::approx_binomial_code_len;
use bci_encoding::bitio::{BitReader, BitWriter};
use bci_encoding::bitset::BitSet;
use bci_encoding::combinadic::SubsetCodec;

/// The reference function: the union of the players' sets.
///
/// # Panics
///
/// Panics if `inputs` is empty or capacities mismatch.
pub fn union_function(inputs: &[BitSet]) -> BitSet {
    assert!(!inputs.is_empty(), "union needs at least one player");
    let mut u = inputs[0].clone();
    for x in &inputs[1..] {
        u.union_with(x);
    }
    u
}

/// Result of running a union protocol.
#[derive(Debug, Clone)]
pub struct UnionRun {
    /// The final board.
    pub board: Board,
    /// Total bits written.
    pub bits: usize,
    /// The computed union.
    pub output: BitSet,
    /// Cycles executed.
    pub cycles: usize,
}

fn check_inputs(n: usize, inputs: &[BitSet]) {
    assert!(!inputs.is_empty(), "need at least one player");
    assert!(
        inputs.iter().all(|x| x.capacity() == n),
        "all inputs must share a universe"
    );
}

fn index_width(z: usize) -> u32 {
    if z <= 1 {
        0
    } else {
        usize::BITS - (z - 1).leading_zeros()
    }
}

/// The naive union protocol: one cycle; each player writes its not-yet-
/// published members as `1`+`⌈log₂ n⌉`-bit records, then a terminating `0`.
pub mod naive {
    use super::*;

    /// Runs the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or capacities mismatch.
    pub fn run(inputs: &[BitSet]) -> UnionRun {
        let n = inputs.first().map_or(0, BitSet::capacity);
        check_inputs(n, inputs);
        let width = index_width(n);
        let mut board = Board::new();
        let mut published = BitSet::new(n);
        for (player, x) in inputs.iter().enumerate() {
            let mut w = BitWriter::new();
            for j in x.difference(&published).iter() {
                w.write_bit(true);
                w.write_bits(j as u64, width);
                published.insert(j);
            }
            w.write_bit(false);
            board.write(player, w.into_bits());
        }
        let bits = board.total_bits();
        UnionRun {
            board,
            bits,
            output: published,
            cycles: 1,
        }
    }

    /// Replays a finished board without inputs.
    ///
    /// # Panics
    ///
    /// Panics on a malformed board.
    pub fn decode(n: usize, k: usize, board: &Board) -> BitSet {
        let width = index_width(n);
        let mut published = BitSet::new(n);
        assert_eq!(board.messages().len(), k, "one turn per player");
        for (turn, msg) in board.messages().iter().enumerate() {
            assert_eq!(msg.speaker, turn, "players speak in order");
            let mut r = BitReader::new(&msg.bits);
            while r.read_bit().expect("truncated turn") {
                let j = r.read_bits(width).expect("truncated index") as usize;
                assert!(published.insert(j), "member {j} repeated");
            }
            assert_eq!(r.remaining(), 0, "trailing bits");
        }
        published
    }
}

/// The batched union protocol: Theorem 2's packing applied to members.
pub mod batched {
    use super::*;

    /// Runs the protocol.
    ///
    /// Fat cycles (while `z ≥ k²`): a player with at least `⌈z/k⌉` new
    /// members writes exactly that many as a subset code over the
    /// cycle-start unpublished set; otherwise it passes (1 bit). An all-pass
    /// fat cycle, or `z < k²`, triggers one final naive cycle in which every
    /// player dumps all remaining members as indices into the unpublished
    /// set; the protocol then halts (early if the whole universe is
    /// published).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or capacities mismatch.
    pub fn run(inputs: &[BitSet]) -> UnionRun {
        let n = inputs.first().map_or(0, BitSet::capacity);
        check_inputs(n, inputs);
        let k = inputs.len();
        let mut board = Board::new();
        let mut published = BitSet::new(n);
        let mut cycles = 0usize;
        loop {
            if published.len() == n {
                break;
            }
            cycles += 1;
            let z_list: Vec<usize> = published.complement().iter().collect();
            let z = z_list.len();
            let mut pos = vec![usize::MAX; n];
            for (idx, &j) in z_list.iter().enumerate() {
                pos[j] = idx;
            }
            if z >= k * k {
                let b = z.div_ceil(k);
                let codec = SubsetCodec::new(z as u64, b as u64);
                let mut all_passed = true;
                for (player, x) in inputs.iter().enumerate() {
                    let fresh: Vec<usize> = x.difference(&published).iter().collect();
                    let mut w = BitWriter::new();
                    if fresh.len() >= b {
                        let chosen = &fresh[..b];
                        let indices: Vec<u64> = chosen.iter().map(|&j| pos[j] as u64).collect();
                        w.write_bit(true);
                        codec.encode(&indices, &mut w);
                        for &j in chosen {
                            published.insert(j);
                        }
                        all_passed = false;
                    } else {
                        w.write_bit(false);
                    }
                    board.write(player, w.into_bits());
                    if published.len() == n {
                        break;
                    }
                }
                if all_passed || published.len() == n {
                    if published.len() == n {
                        break;
                    }
                    // Final naive cycle over the remaining universe.
                    final_naive_cycle(inputs, &mut board, &mut published);
                    cycles += 1;
                    break;
                }
            } else {
                final_naive_cycle(inputs, &mut board, &mut published);
                break;
            }
        }
        let bits = board.total_bits();
        UnionRun {
            board,
            bits,
            output: published,
            cycles,
        }
    }

    fn final_naive_cycle(inputs: &[BitSet], board: &mut Board, published: &mut BitSet) {
        let n = published.capacity();
        let z_list: Vec<usize> = published.complement().iter().collect();
        let z = z_list.len();
        let width = index_width(z);
        let mut pos = vec![usize::MAX; n];
        for (idx, &j) in z_list.iter().enumerate() {
            pos[j] = idx;
        }
        for (player, x) in inputs.iter().enumerate() {
            let mut w = BitWriter::new();
            for j in x.difference(published).iter() {
                w.write_bit(true);
                w.write_bits(pos[j] as u64, width);
                published.insert(j);
            }
            w.write_bit(false);
            board.write(player, w.into_bits());
        }
    }

    /// Estimated bits of the same schedule without big-integer encoding
    /// (bit-identical to [`run`] up to float rounding of the code length).
    pub fn cost(inputs: &[BitSet]) -> usize {
        let n = inputs.first().map_or(0, BitSet::capacity);
        check_inputs(n, inputs);
        let k = inputs.len();
        let mut published = BitSet::new(n);
        let mut bits = 0usize;
        loop {
            if published.len() == n {
                return bits;
            }
            let z = n - published.len();
            if z >= k * k {
                let b = z.div_ceil(k);
                let code = 1 + approx_binomial_code_len(z as u64, b as u64) as usize;
                let mut all_passed = true;
                for x in inputs {
                    let fresh: Vec<usize> = x.difference(&published).iter().collect();
                    if fresh.len() >= b {
                        bits += code;
                        for &j in &fresh[..b] {
                            published.insert(j);
                        }
                        all_passed = false;
                    } else {
                        bits += 1;
                    }
                    if published.len() == n {
                        break;
                    }
                }
                if all_passed || published.len() == n {
                    if published.len() == n {
                        return bits;
                    }
                    return bits + naive_tail_cost(inputs, &mut published);
                }
            } else {
                return bits + naive_tail_cost(inputs, &mut published);
            }
        }
    }

    fn naive_tail_cost(inputs: &[BitSet], published: &mut BitSet) -> usize {
        let n = published.capacity();
        let z = n - published.len();
        let width = index_width(z) as usize;
        let mut bits = 0;
        for x in inputs {
            let fresh: Vec<usize> = x.difference(published).iter().collect();
            bits += fresh.len() * (1 + width) + 1;
            for j in fresh {
                published.insert(j);
            }
        }
        bits
    }

    /// Replays a finished board without inputs, recovering the union.
    ///
    /// # Panics
    ///
    /// Panics on a malformed board.
    pub fn decode(n: usize, k: usize, board: &Board) -> BitSet {
        let mut published = BitSet::new(n);
        let mut msgs = board.messages().iter().peekable();
        'outer: while published.len() < n {
            let z_list: Vec<usize> = published.complement().iter().collect();
            let z = z_list.len();
            if z >= k * k {
                let b = z.div_ceil(k);
                let codec = SubsetCodec::new(z as u64, b as u64);
                let mut all_passed = true;
                for player in 0..k {
                    let Some(msg) = msgs.next() else {
                        break 'outer; // board ended exactly at the halt
                    };
                    assert_eq!(msg.speaker, player, "unexpected speaker");
                    let mut r = BitReader::new(&msg.bits);
                    if r.read_bit().expect("empty turn") {
                        for idx in codec.decode(&mut r) {
                            let j = z_list[idx as usize];
                            assert!(published.insert(j), "member {j} repeated");
                        }
                        all_passed = false;
                    }
                    assert_eq!(r.remaining(), 0, "trailing bits");
                    if published.len() == n {
                        break 'outer;
                    }
                }
                if all_passed {
                    decode_naive_cycle(n, k, &mut msgs, &mut published);
                    break;
                }
            } else {
                decode_naive_cycle(n, k, &mut msgs, &mut published);
                break;
            }
        }
        assert!(msgs.next().is_none(), "board has extra messages");
        published
    }

    fn decode_naive_cycle<'a, I: Iterator<Item = &'a bci_blackboard::board::Message>>(
        _n: usize,
        k: usize,
        msgs: &mut I,
        published: &mut BitSet,
    ) {
        let z_list: Vec<usize> = published.complement().iter().collect();
        let width = index_width(z_list.len());
        for player in 0..k {
            let msg = msgs.next().expect("naive cycle has one turn per player");
            assert_eq!(msg.speaker, player, "unexpected speaker");
            let mut r = BitReader::new(&msg.bits);
            while r.read_bit().expect("truncated turn") {
                let idx = r.read_bits(width).expect("truncated index") as usize;
                let j = z_list[idx];
                assert!(published.insert(j), "member {j} repeated");
            }
            assert_eq!(r.remaining(), 0, "trailing bits");
        }
    }

    /// The fat-cycle per-member bound, identical to Theorem 2's:
    /// `log₂(e·k)` bits.
    pub fn per_member_bound(k: usize) -> f64 {
        (std::f64::consts::E * k as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn both_protocols_compute_the_union() {
        let mut r = rng(1);
        for trial in 0..25 {
            let n = 30 + trial * 23;
            let k = 2 + trial % 7;
            let inputs = workload::random_sets(n, k, 0.4, &mut r);
            let expect = union_function(&inputs);
            assert_eq!(naive::run(&inputs).output, expect, "naive trial {trial}");
            assert_eq!(
                batched::run(&inputs).output,
                expect,
                "batched trial {trial}"
            );
        }
    }

    #[test]
    fn boards_decode_without_inputs() {
        let mut r = rng(2);
        for trial in 0..10 {
            let n = 200 + trial * 60;
            let k = 3 + trial % 5;
            let inputs = workload::random_sets(n, k, 0.6, &mut r);
            let nv = naive::run(&inputs);
            assert_eq!(naive::decode(n, k, &nv.board), nv.output);
            let bt = batched::run(&inputs);
            assert_eq!(batched::decode(n, k, &bt.board), bt.output, "trial {trial}");
        }
    }

    #[test]
    fn cost_model_matches_exact_bits() {
        let mut r = rng(3);
        for trial in 0..10 {
            let n = 128 + trial * 100;
            let k = 2 + trial % 6;
            let inputs = workload::random_sets(n, k, 0.7, &mut r);
            let exact = batched::run(&inputs);
            assert_eq!(batched::cost(&inputs), exact.bits, "trial {trial}");
        }
    }

    #[test]
    fn batched_beats_naive_on_dense_replicated_unions() {
        // Every coordinate is a member of ~half the players: plenty of
        // batching opportunities, union = [n].
        let mut r = rng(4);
        let n = 2048;
        let k = 8;
        let inputs = workload::random_sets(n, k, 0.5, &mut r);
        // E[missing coordinates] = n·2⁻ᵏ = 8: the union is essentially [n].
        assert!(union_function(&inputs).len() > n - 30, "union is dense");
        let nv = naive::run(&inputs);
        let bt = batched::run(&inputs);
        assert!(
            (bt.bits as f64) < 0.7 * nv.bits as f64,
            "batched {} vs naive {}",
            bt.bits,
            nv.bits
        );
    }

    #[test]
    fn thin_unions_fall_back_to_naive_costs() {
        // Union is a small fraction of [n] spread one-per-player: the
        // information-theoretic cost is |U|·log(n/|U|) ≈ |U|·log k, but no
        // player ever holds z/k members, so the all-pass path triggers.
        let n = 1024;
        let k = 4;
        let mut inputs = vec![BitSet::new(n); k];
        for j in 0..32 {
            inputs[j % k].insert(j * 31);
        }
        let bt = batched::run(&inputs);
        assert_eq!(bt.output, union_function(&inputs));
        // One all-pass fat cycle (k bits) + naive dump.
        assert!(bt.bits <= k + 32 * (11 + 1) + k, "bits = {}", bt.bits);
    }

    #[test]
    fn empty_and_full_edge_cases() {
        let inputs = vec![BitSet::new(40); 3];
        let bt = batched::run(&inputs);
        assert!(bt.output.is_empty());
        let full = vec![BitSet::full(40); 3];
        let bt = batched::run(&full);
        assert_eq!(bt.output.len(), 40);
        assert_eq!(batched::decode(40, 3, &bt.board), bt.output);
    }

    #[test]
    fn union_early_halt_when_everything_published() {
        // Player 0 holds all of [n]: the first batch cycles publish
        // everything; later players never speak in the final partial cycle.
        let n = 512;
        let k = 4;
        let mut inputs = vec![BitSet::new(n); k];
        inputs[0] = BitSet::full(n);
        let bt = batched::run(&inputs);
        assert_eq!(bt.output.len(), n);
        assert_eq!(batched::decode(n, k, &bt.board), bt.output);
    }
}
