//! `bci` — command-line front end to the broadcast-ic library.
//!
//! ```text
//! bci disj   --n 4096 --k 16 [--workload planted|random|intersect] [--density 0.5] [--seed 1]
//! bci union  --n 4096 --k 16 [--density 0.5] [--seed 1]
//! bci cic    --k 64
//! bci gap    --k 1024
//! bci sample --universe 256 --sharpness 0.5 --trials 200 [--seed 1]
//! bci sparse --n 1048576 --s 128 --trials 20 [--seed 1]
//! bci amortize --k 16 --copies 256 --trials 10 [--seed 1]
//! bci fabric --sessions 1024 --workers 4 --seed 1 [--protocol disj|and] [--n 256] [--k 4]
//! bci trace  --engine fabric|serial [--sessions 8] [--out events.jsonl]
//! bci serve  --port 7701 --players 4 [--protocol disj] [--n 256] [--sessions 1] [--seed 1] [--mux]
//! bci join   --addr 127.0.0.1:7701 --player 0 [--protocol disj]
//! bci netrun [--points 64x4,256x4,256x8] [--sessions 3] [--seed 1] [--json report.json]
//! bci load   --sessions 10000 --players 3 [--inflight 1024] [--compare] [--json BENCH_net.json]
//! bci stat   127.0.0.1:7701 [--json|--prom|--events]
//! bci top    127.0.0.1:7701 [--interval-ms 1000] [--iters 10]
//! bci experiments list
//! bci experiments run e7 [--workers 4] [--seed 5]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use bci_blackboard::runner::monte_carlo_seeded_traced;
use bci_compression::amortized::compress_nfold;
use bci_compression::gap::and_gap;
use bci_compression::sampling::{exchange, lemma7_bound, SamplerConfig};
use bci_core::table::{f, Table};
use bci_fabric::driver::{monte_carlo_fabric, FabricReport};
use bci_fabric::scheduler::SchedulerConfig;
use bci_fabric::session::{FaultKind, FaultPlan, FaultSpec, SessionSelector};
use bci_fabric::transport::{ChannelTransport, InProcessTransport};
use bci_info::divergence::kl;
use bci_lowerbound::cic::cic_hard;
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and::{and_function, SequentialAnd};
use bci_protocols::and_trees::sequential_and;
use bci_protocols::disj::broadcast::BroadcastDisj;
use bci_protocols::disj::{batched, coordinatewise, disj_function, naive};
use bci_protocols::{sparse, union, workload};
use bci_telemetry::Recorder;
use rand::{Rng, RngCore, SeedableRng};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        Diag::default().error(USAGE);
        return ExitCode::FAILURE;
    };
    if cmd == "experiments" {
        // Takes positional subcommands (`list`, `run <id>`), so it parses
        // its own argument tail instead of going through `parse_opts`.
        return match cmd_experiments(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                Diag::default().error(&format!("error: {e}\n\n{USAGE}"));
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "stat" || cmd == "top" {
        // The address is a positional operand and `--json` is a boolean
        // here (it is a value option everywhere else), so these parse
        // their own argument tails too.
        let result = if cmd == "stat" {
            cmd_stat(&args[1..])
        } else {
            cmd_top(&args[1..])
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                Diag::default().error(&format!("error: {e}\n\n{USAGE}"));
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            Diag::default().error(&format!("error: {e}\n\n{USAGE}"));
            return ExitCode::FAILURE;
        }
    };
    let diag = match Diag::from_opts(&opts) {
        Ok(d) => d,
        Err(e) => {
            Diag::default().error(&format!("error: {e}\n\n{USAGE}"));
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "disj" => cmd_disj(&opts),
        "union" => cmd_union(&opts),
        "cic" => cmd_cic(&opts),
        "gap" => cmd_gap(&opts),
        "sample" => cmd_sample(&opts),
        "sparse" => cmd_sparse(&opts),
        "amortize" => cmd_amortize(&opts),
        "fabric" => cmd_fabric(&opts, &diag),
        "trace" => cmd_trace(&opts, &diag),
        "serve" => cmd_serve(&opts, &diag),
        "join" => cmd_join(&opts, &diag),
        "netrun" => cmd_netrun(&opts, &diag),
        "load" => cmd_load(&opts, &diag),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            diag.error(&format!("error: {e}\n\n{USAGE}"));
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "bci — protocols and information costs in the broadcast model

USAGE:
  bci disj     --n <N> --k <K> [--workload planted|random|intersect] [--density D] [--seed S]
  bci union    --n <N> --k <K> [--density D] [--seed S]
  bci cic      --k <K>
  bci gap      --k <K>
  bci sample   --universe <U> --sharpness <P> [--trials T] [--seed S]
  bci sparse   --n <N> --s <S> [--trials T] [--seed S]
  bci amortize --k <K> --copies <N> [--trials T] [--seed S]
  bci fabric   --sessions <N> --workers <W> [--protocol disj|and] [--n N] [--k K] [--seed S]
               [--transport channel|inprocess] [--deadline-ms MS] [--batch B] [--queue Q]
               [--fault none|slow|crash|drop] [--fault-player P] [--fault-every N] [--slow-ms MS]
               [--trace PATH]
  bci trace    [--engine fabric|serial] [--sessions N] [--n N] [--k K] [--seed S] [--workers W]
               [--transport channel|inprocess] [--out PATH]
  bci serve    --port <P> --players <K> [--protocol disj] [--n N] [--sessions N] [--seed S]
               [--density D] [--deadline-ms MS] [--roster-timeout-s SECS] [--mux]
               [--inflight M] [--max-frame-len B] [--miss-limit N] [--max-steps T]
               [--flight N] [--admin-linger-ms MS] [--admin-port P]
  bci join     --addr <HOST:PORT> --player <I> [--protocol disj] [--seed S]
  bci netrun   [--points NxK,NxK,...] [--sessions N] [--seed S] [--json PATH]
  bci load     --sessions <M> --players <K> [--n N] [--density D] [--seed S]
               [--deadline-ms MS] [--inflight M] [--coordinator mux|thread] [--compare]
               [--addr HOST:PORT] [--json PATH] [--no-verify] [--scrape-ms MS]
               [--max-frame-len B] [--miss-limit N] [--max-steps T]
  bci stat     <HOST:PORT> [--json|--prom|--events]
  bci top      <HOST:PORT> [--interval-ms MS] [--iters K]
  bci experiments list
  bci experiments run <id> [--workers W] [--seed S] [--topology blackboard|star|p2p]

GLOBAL FLAGS:
  --quiet      suppress informational diagnostics on stderr
  --verbose    add debug diagnostics on stderr

REPORTS:
  bci fabric --trace PATH writes the run's telemetry event stream as JSON lines;
  bci trace dumps the event stream of one run to stdout (or --out PATH).
  bci netrun --json PATH writes a bci.bench.v1 wire-overhead report.
  Every table_* bench binary accepts --json <path> for a machine-readable report.

NETWORK:
  bci serve binds a coordinator: it owns the blackboard, samples the inputs from
  --seed, and sequences sessions over TCP. bci join connects one player client.
  bci serve --mux swaps in the multiplexed daemon: one reactor thread running up
  to --inflight concurrent sessions over the same k connections (v2 frames).
  bci netrun runs coordinator + players over loopback in one process and checks
  the TCP transcripts are bit-identical to the in-process transport.
  bci load drives M sessions x K synthetic players against a coordinator (an
  in-process one, or a remote bci serve --mux via --addr), reports sessions/sec
  and turn-latency percentiles, verifies transcripts against the in-process
  transport, and with --json writes a bci.bench.v1 report. --compare also runs
  the thread-per-connection baseline on the same workload. --scrape-ms re-runs
  the mux workload with a live admin scraper attached and records the overhead
  in the report's meta. --max-steps caps turns per session (the runaway guard):
  a protocol that has not halted by then is aborted, on either coordinator.

OBSERVABILITY:
  Every coordinator serves a read-only admin stats channel: the mux daemon
  answers Stats frames inline on its own listener; the thread-per-conn
  coordinator uses a dedicated listener (bci serve --admin-port P). bci stat
  scrapes one snapshot and prints JSON (--json, default), Prometheus text
  exposition (--prom), or the flight-recorder ring as JSON lines (--events).
  bci top refreshes a delta-aware sessions/sec + latency-percentile view every
  --interval-ms. bci serve --admin-linger-ms keeps answering scrapes that long
  after the run so one-shot stats can collect the final numbers; --flight N
  sizes the in-memory flight-recorder ring (0 disables it).";

/// Option keys that are boolean flags: present means on, they take no value.
const FLAGS: [&str; 5] = ["quiet", "verbose", "mux", "compare", "no-verify"];

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got '{key}'"))?;
        if FLAGS.contains(&key) {
            map.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    Ok(map)
}

/// Diagnostic verbosity, controlled by `--quiet` / `--verbose`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Verbosity {
    Quiet,
    #[default]
    Normal,
    Verbose,
}

/// The single funnel for stderr diagnostics: errors always print,
/// informational notes respect `--quiet`, debug detail needs `--verbose`.
#[derive(Debug, Default)]
struct Diag {
    level: Verbosity,
}

impl Diag {
    fn from_opts(opts: &HashMap<String, String>) -> Result<Self, String> {
        let quiet = opts.contains_key("quiet");
        let verbose = opts.contains_key("verbose");
        if quiet && verbose {
            return Err("--quiet and --verbose are mutually exclusive".into());
        }
        let level = if quiet {
            Verbosity::Quiet
        } else if verbose {
            Verbosity::Verbose
        } else {
            Verbosity::Normal
        };
        Ok(Diag { level })
    }

    /// Unconditional: errors and usage always reach stderr.
    fn error(&self, msg: &str) {
        eprintln!("{msg}");
    }

    /// Informational progress notes; suppressed by `--quiet`.
    fn info(&self, msg: &str) {
        if self.level != Verbosity::Quiet {
            eprintln!("{msg}");
        }
    }

    /// Debug detail; printed only with `--verbose`.
    fn debug(&self, msg: &str) {
        if self.level == Verbosity::Verbose {
            eprintln!("{msg}");
        }
    }
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match opts.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        None => default.ok_or_else(|| format!("--{key} is required")),
    }
}

fn rng_from(opts: &HashMap<String, String>) -> Result<rand_chacha::ChaCha8Rng, String> {
    Ok(rand_chacha::ChaCha8Rng::seed_from_u64(get(
        opts,
        "seed",
        Some(1u64),
    )?))
}

fn cmd_disj(opts: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = get(opts, "n", None)?;
    let k: usize = get(opts, "k", None)?;
    let density: f64 = get(opts, "density", Some(0.5))?;
    let workload_name = opts.get("workload").map_or("planted", String::as_str);
    let mut rng = rng_from(opts)?;
    let inputs = match workload_name {
        "planted" => workload::planted_zero_cover(n, k, 0.0, &mut rng),
        "random" => workload::random_sets(n, k, density, &mut rng),
        "intersect" => workload::planted_intersection(n, k, 1, density, &mut rng),
        other => return Err(format!("unknown workload '{other}'")),
    };
    let expect = disj_function(&inputs);
    println!("DISJ_{{n={n}, k={k}}} ({workload_name}): disjoint = {expect}\n");
    let mut t = Table::new(["protocol", "bits", "cycles", "bits/n"]);
    let nv = naive::run(&inputs);
    t.row([
        "naive".to_owned(),
        nv.bits.to_string(),
        nv.cycles.to_string(),
        f(nv.bits as f64 / n.max(1) as f64, 2),
    ]);
    let bt = if n <= 8192 {
        batched::run(&inputs)
    } else {
        batched::cost(&inputs)
    };
    t.row([
        "batched (Thm 2)".to_owned(),
        bt.bits.to_string(),
        bt.cycles.to_string(),
        f(bt.bits as f64 / n.max(1) as f64, 2),
    ]);
    let cw = coordinatewise::run(&inputs);
    t.row([
        "coordinate-wise AND".to_owned(),
        cw.bits.to_string(),
        cw.cycles.to_string(),
        f(cw.bits as f64 / n.max(1) as f64, 2),
    ]);
    assert_eq!(nv.output, expect);
    assert_eq!(bt.output, expect);
    assert_eq!(cw.output, expect);
    println!("{}", t.render());
    Ok(())
}

fn cmd_union(opts: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = get(opts, "n", None)?;
    let k: usize = get(opts, "k", None)?;
    let density: f64 = get(opts, "density", Some(0.5))?;
    let mut rng = rng_from(opts)?;
    let inputs = workload::random_sets(n, k, density, &mut rng);
    let u = union::union_function(&inputs);
    println!("UNION_{{n={n}, k={k}}}: |union| = {}\n", u.len());
    let nv = union::naive::run(&inputs);
    let bt = union::batched::run(&inputs);
    let mut t = Table::new(["protocol", "bits", "bits/member"]);
    t.row([
        "naive".to_owned(),
        nv.bits.to_string(),
        f(nv.bits as f64 / u.len().max(1) as f64, 2),
    ]);
    t.row([
        "batched".to_owned(),
        bt.bits.to_string(),
        f(bt.bits as f64 / u.len().max(1) as f64, 2),
    ]);
    println!("{}", t.render());
    Ok(())
}

fn cmd_cic(opts: &HashMap<String, String>) -> Result<(), String> {
    let k: usize = get(opts, "k", None)?;
    if k < 2 {
        return Err("--k must be at least 2".into());
    }
    let cic = cic_hard(&sequential_and(k), &HardDist::new(k));
    println!("CIC_mu(sequential AND_{k}) = {cic:.4} bits");
    println!(
        "CIC / log2(k)              = {:.4}",
        cic / (k as f64).log2()
    );
    println!("worst-case communication   = {k} bits");
    Ok(())
}

fn cmd_gap(opts: &HashMap<String, String>) -> Result<(), String> {
    let k: usize = get(opts, "k", None)?;
    let rep = and_gap(k, 0.05, 0.1);
    println!("AND_{k}: information vs communication (eps=0.05, eps'=0.1)");
    println!("  external information : {:.3} bits", rep.ic_bits);
    println!("  communication bound  : {:.1} bits", rep.cc_lower_bound);
    println!(
        "  gap                  : {:.2}  (k/log2 k = {:.2})",
        rep.ratio(),
        k as f64 / (k as f64).log2()
    );
    Ok(())
}

fn cmd_sample(opts: &HashMap<String, String>) -> Result<(), String> {
    let u: usize = get(opts, "universe", None)?;
    let sharp: f64 = get(opts, "sharpness", None)?;
    let trials: u64 = get(opts, "trials", Some(200u64))?;
    let seed: u64 = get(opts, "seed", Some(1u64))?;
    if u < 2 || !(0.0..1.0).contains(&sharp) {
        return Err("need --universe ≥ 2 and --sharpness in [0,1)".into());
    }
    let rest = (1.0 - sharp) / (u as f64 - 1.0);
    let mut probs = vec![rest; u];
    probs[0] = sharp;
    let eta = bci_info::dist::Dist::new(probs).map_err(|e| e.to_string())?;
    let nu = bci_info::dist::Dist::uniform(u);
    let d = kl(&eta, &nu);
    let config = SamplerConfig::default();
    let mut bits = 0usize;
    let mut agreed = 0u64;
    for t in 0..trials {
        let e = exchange(&eta, &nu, &config, seed.wrapping_add(t * 104_729));
        bits += e.bits;
        agreed += u64::from(e.agreed());
    }
    println!("Lemma 7 sampling over |U| = {u}, D(eta||nu) = {d:.3} bits:");
    println!("  mean bits     = {:.2}", bits as f64 / trials as f64);
    println!("  Lemma 7 curve = {:.2}", lemma7_bound(d));
    println!("  naive cost    = {:.1} (log2 |U|)", (u as f64).log2());
    println!("  agreement     = {}/{trials}", agreed);
    Ok(())
}

fn cmd_sparse(opts: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = get(opts, "n", None)?;
    let s: usize = get(opts, "s", None)?;
    let trials: u64 = get(opts, "trials", Some(20u64))?;
    if 2 * s > n {
        return Err("need 2s ≤ n".into());
    }
    let mut rng = rng_from(opts)?;
    let mut bits = 0.0;
    for _ in 0..trials {
        let mut x = bci_encoding::bitset::BitSet::new(n);
        let mut y = bci_encoding::bitset::BitSet::new(n);
        while x.len() < s {
            x.insert(rng.random_range(0..n));
        }
        while y.len() < s {
            let e = rng.random_range(0..n);
            if !x.contains(e) {
                y.insert(e);
            }
        }
        let out = sparse::run(&x, &y, &mut rng);
        bits += out.bits;
    }
    println!("Hastad-Wigderson sparse disjointness, |X| = |Y| = {s}, n = {n}:");
    println!(
        "  mean bits = {:.1}  ({:.2} per element)",
        bits / trials as f64,
        bits / trials as f64 / s as f64
    );
    println!(
        "  naive     = {:.0}  (send the set)",
        sparse::naive_bits(n, s)
    );
    Ok(())
}

fn cmd_amortize(opts: &HashMap<String, String>) -> Result<(), String> {
    let k: usize = get(opts, "k", None)?;
    let copies: usize = get(opts, "copies", None)?;
    let trials: usize = get(opts, "trials", Some(10usize))?;
    if k < 1 || copies < 1 {
        return Err("need --k ≥ 1 and --copies ≥ 1".into());
    }
    let mut rng = rng_from(opts)?;
    let tree = sequential_and(k);
    let priors = vec![1.0 - 1.0 / k as f64; k];
    let rep = compress_nfold(&tree, &priors, copies, trials, &mut rng);
    println!("Theorem 3: {copies} parallel copies of sequential AND_{k}:");
    println!("  per-copy raw        = {:.2} bits", rep.per_copy_raw());
    println!(
        "  per-copy compressed = {:.2} bits",
        rep.per_copy_compressed()
    );
    println!("  information cost    = {:.2} bits", rep.ic_per_copy);
    Ok(())
}

fn cmd_fabric(opts: &HashMap<String, String>, diag: &Diag) -> Result<(), String> {
    use std::time::Duration;

    let sessions: u64 = get(opts, "sessions", Some(1024u64))?;
    let workers: usize = get(opts, "workers", Some(4usize))?;
    let seed: u64 = get(opts, "seed", Some(1u64))?;
    let n: usize = get(opts, "n", Some(256usize))?;
    let k: usize = get(opts, "k", Some(4usize))?;
    let density: f64 = get(opts, "density", Some(0.7))?;
    let deadline_ms: u64 = get(opts, "deadline-ms", Some(5000u64))?;
    let batch: usize = get(opts, "batch", Some(32usize))?;
    let queue: usize = get(opts, "queue", Some(8usize))?;
    let protocol_name = opts.get("protocol").map_or("disj", String::as_str);
    let transport_name = opts.get("transport").map_or("channel", String::as_str);
    let fault_name = opts.get("fault").map_or("none", String::as_str);
    let fault_player: usize = get(opts, "fault-player", Some(0usize))?;
    let fault_every: u64 = get(opts, "fault-every", Some(10u64))?;
    let slow_ms: u64 = get(opts, "slow-ms", Some(10u64))?;
    if workers == 0 || batch == 0 || queue == 0 {
        return Err("--workers, --batch, and --queue must be positive".into());
    }
    if k == 0 {
        return Err("--k must be positive".into());
    }
    if fault_name != "none" && fault_player >= k {
        return Err(format!(
            "--fault-player {fault_player} out of range for k = {k}"
        ));
    }

    let trace_path = opts.get("trace").cloned();
    let recorder = if trace_path.is_some() {
        Recorder::new()
    } else {
        Recorder::disabled()
    };
    let config = SchedulerConfig {
        workers,
        batch_size: batch,
        queue_capacity: queue,
        deadline: Some(Duration::from_millis(deadline_ms)),
        keep_transcripts: false,
        recorder: recorder.clone(),
    };
    let selector = SessionSelector::EveryNth(fault_every);
    let plan = match fault_name {
        "none" => FaultPlan::new(),
        "slow" => FaultPlan::new().with(FaultSpec {
            kind: FaultKind::SlowPlayer(Duration::from_millis(slow_ms)),
            player: fault_player,
            sessions: selector,
        }),
        "crash" => FaultPlan::new().with(FaultSpec {
            kind: FaultKind::CrashedPlayer,
            player: fault_player,
            sessions: selector,
        }),
        "drop" => FaultPlan::new().with(FaultSpec {
            kind: FaultKind::DroppedWakeup,
            player: fault_player,
            sessions: selector,
        }),
        other => return Err(format!("unknown fault '{other}'")),
    };

    println!(
        "fabric: {sessions} sessions of {protocol_name} (n={n}, k={k}) on {workers} workers, \
         {transport_name} transport, seed {seed}, fault {fault_name}\n"
    );
    match protocol_name {
        "disj" => {
            let proto = BroadcastDisj::new(n, k);
            let sample = move |rng: &mut dyn RngCore| workload::random_sets(n, k, density, rng);
            let report = run_fabric(
                transport_name,
                &proto,
                &sample,
                &|inputs: &[_]| disj_function(inputs),
                sessions,
                seed,
                &plan,
                &config,
            )?;
            print_fabric_report(&report, &recorder);
        }
        "and" => {
            let proto = SequentialAnd::new(k);
            let sample = move |rng: &mut dyn RngCore| -> Vec<bool> {
                (0..k).map(|_| rng.random_bool(0.9)).collect()
            };
            let report = run_fabric(
                transport_name,
                &proto,
                &sample,
                &|inputs: &[bool]| and_function(inputs),
                sessions,
                seed,
                &plan,
                &config,
            )?;
            print_fabric_report(&report, &recorder);
        }
        other => return Err(format!("unknown protocol '{other}'")),
    }
    if let Some(path) = trace_path {
        let events = recorder.events();
        diag.debug(&format!("captured {} telemetry events", events.len()));
        std::fs::write(&path, recorder.events_jsonl())
            .map_err(|e| format!("cannot write trace to '{path}': {e}"))?;
        diag.info(&format!("wrote {} events to {path}", events.len()));
    }
    Ok(())
}

/// `bci trace` — run one workload with event recording on and dump the
/// JSON-lines event stream to stdout (or `--out PATH`).
fn cmd_trace(opts: &HashMap<String, String>, diag: &Diag) -> Result<(), String> {
    use std::time::Duration;

    let engine = opts.get("engine").map_or("fabric", String::as_str);
    let sessions: u64 = get(opts, "sessions", Some(8u64))?;
    let n: usize = get(opts, "n", Some(64usize))?;
    let k: usize = get(opts, "k", Some(4usize))?;
    let seed: u64 = get(opts, "seed", Some(1u64))?;
    let workers: usize = get(opts, "workers", Some(2usize))?;
    let transport_name = opts.get("transport").map_or("channel", String::as_str);
    if workers == 0 || k == 0 {
        return Err("--workers and --k must be positive".into());
    }

    let recorder = Recorder::new();
    let proto = BroadcastDisj::new(n, k);
    let sample = move |rng: &mut dyn RngCore| workload::random_sets(n, k, 0.7, rng);
    match engine {
        "fabric" => {
            let config = SchedulerConfig {
                workers,
                deadline: Some(Duration::from_millis(5000)),
                recorder: recorder.clone(),
                ..SchedulerConfig::default()
            };
            run_fabric(
                transport_name,
                &proto,
                &sample,
                &|inputs: &[_]| disj_function(inputs),
                sessions,
                seed,
                &FaultPlan::new(),
                &config,
            )?;
        }
        "serial" => {
            monte_carlo_seeded_traced::<_, _, _, rand_chacha::ChaCha8Rng>(
                &proto,
                sample,
                |inputs: &[_]| disj_function(inputs),
                sessions,
                seed,
                &recorder,
            );
        }
        other => return Err(format!("unknown engine '{other}'")),
    }

    let events = recorder.events();
    diag.info(&format!(
        "trace: {engine} engine, {sessions} sessions of disj (n={n}, k={k}), {} events",
        events.len()
    ));
    let snap = recorder.snapshot();
    diag.debug(&format!("telemetry snapshot: {}", snap.to_json()));
    let jsonl = recorder.events_jsonl();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &jsonl)
                .map_err(|e| format!("cannot write trace to '{path}': {e}"))?;
            diag.info(&format!("wrote {} events to {path}", events.len()));
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

/// Builds a [`bci_net::NetConfig`] from the shared `--max-frame-len` /
/// `--miss-limit` / `--max-steps` overrides and rejects unusable values
/// via [`bci_net::NetConfig::validate`].
fn net_config_from(opts: &HashMap<String, String>) -> Result<bci_net::NetConfig, String> {
    let mut config = bci_net::NetConfig::default();
    if let Some(v) = opts.get("max-frame-len") {
        config.max_frame_len = v
            .parse()
            .map_err(|_| format!("--max-frame-len: cannot parse '{v}'"))?;
    }
    if let Some(v) = opts.get("miss-limit") {
        config.miss_limit = v
            .parse()
            .map_err(|_| format!("--miss-limit: cannot parse '{v}'"))?;
    }
    if let Some(v) = opts.get("max-steps") {
        config.max_steps = v
            .parse()
            .map_err(|_| format!("--max-steps: cannot parse '{v}'"))?;
    }
    config.validate()?;
    Ok(config)
}

/// `bci serve` — run the coordinator daemon: bind a TCP port, accept
/// player registrations until the roster is full, then sequence
/// `--sessions` protocol sessions over the wire. The coordinator owns the
/// blackboard and samples the inputs, so the whole run is reproducible
/// from `--seed` alone.
///
/// `--mux` swaps in the multiplexed daemon from `bci-mux`: one reactor
/// thread, the same `k` connections, up to `--inflight` sessions parked
/// and resumed concurrently (v2 session-id frames).
fn cmd_serve(opts: &HashMap<String, String>, diag: &Diag) -> Result<(), String> {
    use bci_blackboard::runner::derive_trial_seed;
    use bci_fabric::transport::SessionContext;
    use bci_net::coordinator::{accept_roster, run_coordinator_session, SessionInfo};
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    let port: u16 = get(opts, "port", None)?;
    let players: usize = get(opts, "players", None)?;
    let n: usize = get(opts, "n", Some(256usize))?;
    let sessions: u32 = get(opts, "sessions", Some(1u32))?;
    let seed: u64 = get(opts, "seed", Some(1u64))?;
    let density: f64 = get(opts, "density", Some(0.7))?;
    let deadline_ms: u64 = get(opts, "deadline-ms", Some(30_000u64))?;
    let roster_secs: u64 = get(opts, "roster-timeout-s", Some(60u64))?;
    let protocol_name = opts.get("protocol").map_or("disj", String::as_str);
    if protocol_name != "disj" {
        return Err(format!(
            "unknown protocol '{protocol_name}' (serve supports: disj)"
        ));
    }
    if players == 0 || sessions == 0 {
        return Err("--players and --sessions must be positive".into());
    }
    let config = net_config_from(opts)?;
    let flight: usize = get(opts, "flight", Some(256usize))?;
    let admin_linger_ms: u64 = get(opts, "admin-linger-ms", Some(0u64))?;
    let recorder = if flight > 0 {
        Recorder::with_flight(flight)
    } else {
        Recorder::metrics_only()
    };

    let listener = TcpListener::bind(("0.0.0.0", port))
        .map_err(|e| format!("cannot bind port {port}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;

    if opts.contains_key("mux") {
        use bci_mux::daemon::{accept_mux_roster, run_mux_daemon_with_admin, MuxOptions};
        let inflight: usize = get(
            opts,
            "inflight",
            Some(bci_mux::daemon::DEFAULT_MAX_INFLIGHT),
        )?;
        if inflight == 0 {
            return Err("--inflight must be positive".into());
        }
        diag.info(&format!(
            "serving {protocol_name} (n={n}, k={players}) on {bound} [mux, inflight={inflight}]: \
             waiting for {players} players (up to {roster_secs}s)"
        ));
        let info = SessionInfo {
            protocol_id: protocol_name.to_string(),
            players: players as u32,
            seed,
            params: vec![n as u64, u64::from(sessions)],
        };
        let conns = accept_mux_roster(
            &listener,
            &info,
            &config,
            Instant::now() + Duration::from_secs(roster_secs),
            &recorder,
        )
        .map_err(|e| e.to_string())?;
        diag.info(&format!(
            "roster complete: {players} players registered; admin stats channel live on {bound}"
        ));
        let proto = BroadcastDisj::new(n, players);
        let mux_opts = MuxOptions {
            deadline: Some(Duration::from_millis(deadline_ms)),
            max_inflight: inflight,
            config: config.clone(),
            dump_flight_on_failure: flight > 0,
        };
        let report = run_mux_daemon_with_admin(
            &proto,
            conns,
            Some(&listener),
            u64::from(sessions),
            seed,
            |_, rng| workload::random_sets(n, players, density, rng),
            &mux_opts,
            &recorder,
        );
        if admin_linger_ms > 0 {
            // Keep answering scrapes after the run, so a one-shot
            // `bci stat` can still collect the final numbers.
            let admin_listener = listener.try_clone().map_err(|e| format!("listener: {e}"))?;
            let server =
                bci_net::admin::AdminServer::spawn(admin_listener, recorder.clone(), config)
                    .map_err(|e| e.to_string())?;
            diag.info(&format!("admin channel lingering {admin_linger_ms}ms"));
            std::thread::sleep(Duration::from_millis(admin_linger_ms));
            server.stop();
        }
        let snap = recorder.snapshot();
        let hist = snap.hist("mux.turn_latency_us");
        let (completed, failed) = (report.completed(), report.failed());
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let mut t = Table::new(["sessions", "completed", "failed", "sessions/sec"]);
        t.row([
            sessions.to_string(),
            completed.to_string(),
            failed.to_string(),
            f(completed as f64 / secs, 1),
        ]);
        println!("{}", t.render());
        if let Some(h) = hist {
            println!(
                "turn latency: p50 {}us  p95 {}us  p99 {}us over {} turns",
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.count()
            );
        }
        println!(
            "wire: {} bytes sent, {} bytes received; transcript fold {:#018x}",
            report.wire.bytes_tx,
            report.wire.bytes_rx,
            report.digest_fold()
        );
        if failed > 0 {
            return Err(format!("{failed} session(s) did not complete"));
        }
        return Ok(());
    }

    // The thread-per-conn coordinator has no mux envelope to ride, so its
    // stats channel is a dedicated listener on `--admin-port`.
    let admin_port: u16 = get(opts, "admin-port", Some(0u16))?;
    let admin = if admin_port > 0 {
        let admin_listener = TcpListener::bind(("0.0.0.0", admin_port))
            .map_err(|e| format!("cannot bind admin port {admin_port}: {e}"))?;
        let admin_addr = admin_listener
            .local_addr()
            .map_err(|e| format!("admin addr: {e}"))?;
        let server =
            bci_net::admin::AdminServer::spawn(admin_listener, recorder.clone(), config.clone())
                .map_err(|e| e.to_string())?;
        diag.info(&format!("admin stats channel on {admin_addr}"));
        Some(server)
    } else {
        None
    };

    diag.info(&format!(
        "serving {protocol_name} (n={n}, k={players}) on {bound}: waiting for {players} players \
         (up to {roster_secs}s)"
    ));
    let info = SessionInfo {
        protocol_id: protocol_name.to_string(),
        players: players as u32,
        seed,
        params: vec![n as u64],
    };
    let mut conns = accept_roster(
        &listener,
        &info,
        &config,
        Instant::now() + Duration::from_secs(roster_secs),
    )
    .map_err(|e| e.to_string())?;
    diag.info(&format!("roster complete: {players} players registered"));

    let proto = BroadcastDisj::new(n, players);
    let mut t = Table::new(["session", "outcome", "output", "bits", "latency"]);
    for s in 0..sessions {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(derive_trial_seed(seed, u64::from(s)));
        let inputs = workload::random_sets(n, players, density, &mut rng);
        let ctx = SessionContext {
            session_id: u64::from(s),
            deadline: Some(Duration::from_millis(deadline_ms)),
            faults: &[],
            recorder: &recorder,
        };
        let result = run_coordinator_session(
            &proto,
            &inputs,
            rng,
            &ctx,
            &mut conns,
            &config,
            s,
            sessions - 1 - s,
        );
        let done = !result.outcome.is_completed();
        t.row([
            s.to_string(),
            result.outcome.label().to_owned(),
            result
                .output
                .map_or_else(|| "-".to_owned(), |o| o.to_string()),
            result.bits_written.to_string(),
            format!("{:?}", result.latency),
        ]);
        if done {
            diag.error(&format!("session {s} did not complete; stopping"));
            break;
        }
    }
    let (mut bytes_tx, mut bytes_rx) = (0u64, 0u64);
    for pc in &conns {
        bytes_tx += pc.conn.bytes_written;
        bytes_rx += pc.conn.bytes_read();
    }
    println!("{}", t.render());
    println!("wire: {bytes_tx} bytes sent, {bytes_rx} bytes received");
    if let Some(server) = admin {
        if admin_linger_ms > 0 {
            diag.info(&format!("admin channel lingering {admin_linger_ms}ms"));
            std::thread::sleep(Duration::from_millis(admin_linger_ms));
        }
        server.stop();
    }
    Ok(())
}

/// `bci join` — connect one player client to a coordinator started with
/// `bci serve`. The protocol parameters (universe size, roster size)
/// arrive in the handshake ack, so the client needs only the address and
/// its player index.
fn cmd_join(opts: &HashMap<String, String>, diag: &Diag) -> Result<(), String> {
    use bci_net::client::{connect_player, run_player, PlayerBehavior};
    use bci_net::NetConfig;
    use std::net::ToSocketAddrs;

    let addr_str: String = get(opts, "addr", None)?;
    let player: usize = get(opts, "player", None)?;
    let seed: u64 = get(opts, "seed", Some(1u64))?;
    let protocol_name = opts.get("protocol").map_or("disj", String::as_str);
    if protocol_name != "disj" {
        return Err(format!(
            "unknown protocol '{protocol_name}' (join supports: disj)"
        ));
    }
    let addr = addr_str
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{addr_str}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{addr_str}' resolved to no address"))?;

    let config = NetConfig::default();
    let (conn, ack, retries) =
        connect_player(addr, player, protocol_name, &config, seed).map_err(|e| e.to_string())?;
    let n = ack.params.first().copied().unwrap_or(0) as usize;
    let k = ack.players as usize;
    diag.info(&format!(
        "joined {addr} as player {player}: {protocol_name} (n={n}, k={k}), seed {}, \
         {retries} connect retries",
        ack.seed
    ));
    let proto = BroadcastDisj::new(n, k);
    let played = run_player(&proto, conn, player, PlayerBehavior::default(), &config)
        .map_err(|e| e.to_string())?;
    println!("player {player}: {played} session(s) finished");
    Ok(())
}

/// `bci load` — the load harness: M sessions × K synthetic players
/// against a coordinator, reporting sessions/sec, turn-latency
/// percentiles, wire accounting, and an end-to-end transcript check
/// against the in-process transport. Exits nonzero if any session fails
/// or any transcript diverges, so CI can gate on it directly.
fn cmd_load(opts: &HashMap<String, String>, diag: &Diag) -> Result<(), String> {
    use bci_mux::load::{bench_document, run_load, run_load_thread_baseline, LoadSpec};
    use bci_mux::LoadReport;
    use std::net::ToSocketAddrs;
    use std::time::Duration;

    let sessions: u64 = get(opts, "sessions", None)?;
    let players: usize = get(opts, "players", None)?;
    if sessions == 0 || players == 0 {
        return Err("--sessions and --players must be positive".into());
    }
    let mut spec = LoadSpec::new(sessions, players);
    spec.n = get(opts, "n", Some(spec.n))?;
    spec.density = get(opts, "density", Some(spec.density))?;
    spec.seed = get(opts, "seed", Some(spec.seed))?;
    spec.max_inflight = get(opts, "inflight", Some(spec.max_inflight))?;
    if spec.max_inflight == 0 {
        return Err("--inflight must be positive".into());
    }
    let deadline_ms: u64 = get(opts, "deadline-ms", Some(30_000u64))?;
    spec.deadline = Some(Duration::from_millis(deadline_ms));
    spec.config = net_config_from(opts)?;
    spec.verify = !opts.contains_key("no-verify");
    if let Some(addr_str) = opts.get("addr") {
        spec.addr = Some(
            addr_str
                .to_socket_addrs()
                .map_err(|e| format!("cannot resolve '{addr_str}': {e}"))?
                .next()
                .ok_or_else(|| format!("'{addr_str}' resolved to no address"))?,
        );
    }
    let scrape_ms: u64 = get(opts, "scrape-ms", Some(0u64))?;
    let coordinator = opts.get("coordinator").map_or("mux", String::as_str);
    let compare = opts.contains_key("compare");
    let (run_mux, run_thread) = match (coordinator, compare) {
        (_, true) => (true, true),
        ("mux", _) => (true, false),
        ("thread", _) => (false, true),
        (other, _) => {
            return Err(format!(
                "unknown coordinator '{other}' (expected mux or thread)"
            ))
        }
    };
    if run_thread && spec.addr.is_some() {
        return Err("--addr drives a remote mux daemon; the thread baseline is in-process".into());
    }

    let mut reports: Vec<LoadReport> = Vec::new();
    if run_mux {
        diag.info(&format!(
            "load: {sessions} session(s) x {players} player(s) against {} (inflight {})",
            spec.addr
                .map_or_else(|| "in-process mux daemon".to_owned(), |a| a.to_string()),
            spec.max_inflight
        ));
        reports.push(run_load(&spec).map_err(|e| e.to_string())?);
        if scrape_ms > 0 {
            // Same workload again with a live admin scraper attached —
            // the report pair becomes the scrape-overhead measurement.
            diag.info(&format!(
                "load: re-running mux with a {scrape_ms}ms admin scraper attached"
            ));
            let mut scraped = spec.clone();
            scraped.scrape_interval = Some(Duration::from_millis(scrape_ms));
            reports.push(run_load(&scraped).map_err(|e| e.to_string())?);
        }
    }
    if run_thread {
        diag.info(&format!(
            "load: {sessions} session(s) x {players} player(s) against thread-per-conn baseline"
        ));
        reports.push(run_load_thread_baseline(&spec).map_err(|e| e.to_string())?);
    }

    let mut t = Table::new([
        "coordinator",
        "sessions",
        "completed",
        "failed",
        "sessions/sec",
        "p50 us",
        "p95 us",
        "p99 us",
        "wire bytes",
        "bits/bit",
        "scrapes",
        "digest",
    ]);
    for r in &reports {
        t.row([
            r.kind.label().to_owned(),
            r.sessions.to_string(),
            r.completed.to_string(),
            r.failed.to_string(),
            f(r.sessions_per_sec(), 1),
            r.turn_latency.percentile(50.0).to_string(),
            r.turn_latency.percentile(95.0).to_string(),
            r.turn_latency.percentile(99.0).to_string(),
            r.wire.bytes_total().to_string(),
            f(r.wire_bits_per_transcript_bit(), 2),
            r.scrapes.to_string(),
            match r.verified() {
                Some(true) => "match".to_owned(),
                Some(false) => "MISMATCH".to_owned(),
                None => format!("{:#018x}", r.digest),
            },
        ]);
    }
    println!(
        "load — {sessions} session(s) x {players} player(s), seed {}\n",
        spec.seed
    );
    println!("{}", t.render());

    if let Some(path) = opts.get("json") {
        // The doc spec carries the scrape interval so the meta's
        // overhead measurement can name it.
        let mut doc_spec = spec.clone();
        if scrape_ms > 0 {
            doc_spec.scrape_interval = Some(Duration::from_millis(scrape_ms));
        }
        let doc = bench_document(&doc_spec, &reports);
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write report to '{path}': {e}"))?;
        diag.info(&format!("wrote bci.bench.v1 report to {path}"));
    }

    for r in &reports {
        if r.failed > 0 {
            return Err(format!(
                "{} failed {} of {} session(s)",
                r.kind.label(),
                r.failed,
                r.sessions
            ));
        }
        if r.verified() == Some(false) {
            return Err(format!(
                "{} transcripts diverged from the in-process transport \
                 ({:#018x} != {:#018x})",
                r.kind.label(),
                r.digest,
                r.digest_inprocess.unwrap_or(0)
            ));
        }
    }
    Ok(())
}

/// `bci stat <addr>` — one-shot scrape of a coordinator's admin stats
/// channel. Prints the live snapshot as JSON (`--json`, the default),
/// Prometheus text exposition (`--prom`), or the flight-recorder ring as
/// JSON lines (`--events`); the flags combine.
fn cmd_stat(args: &[String]) -> Result<(), String> {
    use bci_net::admin::scrape;
    use bci_net::frame::stats_request;

    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("stat needs an address: bci stat <host:port> [--json|--prom|--events]".into());
    };
    let (mut json, mut prom, mut events) = (false, false, false);
    for flag in &args[1..] {
        match flag.as_str() {
            "--json" => json = true,
            "--prom" => prom = true,
            "--events" => events = true,
            other => return Err(format!("unknown stat flag '{other}'")),
        }
    }
    if !json && !prom && !events {
        json = true;
    }
    let mut what = 0u8;
    if json || prom {
        what |= stats_request::SNAPSHOT;
    }
    if events {
        what |= stats_request::EVENTS;
    }
    let config = bci_net::NetConfig::default();
    let reply = scrape(addr, what, &config).map_err(|e| e.to_string())?;
    if json || prom {
        let snap = reply
            .payload
            .into_snapshot()
            .map_err(|e| format!("malformed snapshot from {addr}: {e}"))?;
        if json {
            println!("{}", snap.to_json());
        }
        if prom {
            print!("{}", snap.to_prometheus());
        }
    }
    if events {
        print!("{}", reply.events_jsonl);
    }
    Ok(())
}

/// `bci top <addr>` — refreshing live view of a coordinator: scrapes the
/// admin channel every `--interval-ms` and prints one delta-aware line
/// per tick (sessions/sec and latency percentiles computed over the tick
/// window via histogram deltas, not cumulative totals). `--iters 0`
/// refreshes until interrupted.
fn cmd_top(args: &[String]) -> Result<(), String> {
    use bci_net::admin::AdminClient;
    use bci_telemetry::Snapshot;
    use std::time::Duration;

    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(
            "top needs an address: bci top <host:port> [--interval-ms MS] [--iters K]".into(),
        );
    };
    let opts = parse_opts(&args[1..])?;
    let interval_ms: u64 = get(&opts, "interval-ms", Some(1000u64))?;
    let iters: u64 = get(&opts, "iters", Some(0u64))?;
    if interval_ms == 0 {
        return Err("--interval-ms must be positive".into());
    }
    let config = bci_net::NetConfig::default();
    let mut client = AdminClient::connect(addr, &config).map_err(|e| e.to_string())?;
    let mut prev: Option<Snapshot> = None;
    let mut tick = 0u64;
    loop {
        let snap = client.fetch_snapshot().map_err(|e| e.to_string())?;
        println!("{}", top_line(&snap, prev.as_ref()));
        prev = Some(snap);
        tick += 1;
        if iters != 0 && tick >= iters {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Sessions finished so far, summed across the counter families the
/// coordinators publish (only one family is nonzero per coordinator).
fn sessions_finished(snap: &bci_telemetry::Snapshot) -> u64 {
    ["mux", "net", "fabric"]
        .iter()
        .map(|p| {
            snap.counter(&format!("{p}.sessions_completed"))
                + snap.counter(&format!("{p}.sessions_timed_out"))
                + snap.counter(&format!("{p}.sessions_aborted"))
        })
        .sum()
}

/// One `bci top` output line: uptime, completed sessions with the
/// tick-window rate, inflight/parked gauges, and the window's turn-
/// latency percentiles (from the histogram delta when a previous
/// snapshot exists, else cumulative).
fn top_line(snap: &bci_telemetry::Snapshot, prev: Option<&bci_telemetry::Snapshot>) -> String {
    let finished = sessions_finished(snap);
    let uptime_s = snap.uptime_us as f64 / 1e6;
    let (delta, rate) = match prev {
        Some(p) => {
            let d = finished.saturating_sub(sessions_finished(p));
            let window_s = (snap.uptime_us.saturating_sub(p.uptime_us)) as f64 / 1e6;
            (
                d,
                if window_s > 0.0 {
                    d as f64 / window_s
                } else {
                    0.0
                },
            )
        }
        None => (finished, 0.0),
    };
    let mut line = format!(
        "up {uptime_s:7.1}s  sessions {finished} (+{delta}, {rate:.1}/s)  inflight {}/{}",
        snap.gauge("mux.inflight"),
        snap.gauge("mux.inflight_limit"),
    );
    line.push_str(&format!(
        "  parked {}  remaining {}",
        snap.gauge("mux.sessions_parked"),
        snap.gauge("mux.sessions_remaining"),
    ));
    let lat_name = ["mux.turn_latency_us", "net.hop_rtt_us"]
        .into_iter()
        .find(|name| snap.hist(name).is_some());
    if let Some(name) = lat_name {
        let cur = snap.hist(name).expect("name was found above");
        let window = match prev.and_then(|p| p.hist(name)) {
            Some(old) => cur.delta_since(old),
            None => cur.clone(),
        };
        line.push_str(&format!(
            "  turn p50/p95/p99 {}/{}/{}us ({} turns)",
            window.percentile(50.0),
            window.percentile(95.0),
            window.percentile(99.0),
            window.count(),
        ));
    }
    if let Some(q) = snap.hist("mux.outbound_queue_bytes") {
        line.push_str(&format!("  outq p95 {}B", q.percentile(95.0)));
    }
    line
}

/// Parses `--points` syntax: comma-separated `NxK` pairs.
fn parse_points(spec: &str) -> Result<Vec<(usize, usize)>, String> {
    spec.split(',')
        .map(|p| {
            let (n, k) = p
                .split_once('x')
                .ok_or_else(|| format!("bad point '{p}' (expected NxK, e.g. 256x4)"))?;
            let n: usize = n.parse().map_err(|_| format!("bad n in '{p}'"))?;
            let k: usize = k.parse().map_err(|_| format!("bad k in '{p}'"))?;
            if n == 0 || k == 0 {
                return Err(format!("point '{p}' must have positive n and k"));
            }
            Ok((n, k))
        })
        .collect()
}

/// `bci netrun` — run coordinator + players over loopback TCP in one
/// process for a sweep of `(n, k)` points, measure wire bytes against
/// transcript bits, and verify every TCP transcript digest against the
/// in-process transport. `--json PATH` writes a `bci.bench.v1` report.
fn cmd_netrun(opts: &HashMap<String, String>, diag: &Diag) -> Result<(), String> {
    use bci_net::overhead::overhead_sweep;
    use bci_net::NetConfig;
    use bci_telemetry::{obj, Json};

    let sessions: usize = get(opts, "sessions", Some(3usize))?;
    let seed: u64 = get(opts, "seed", Some(1u64))?;
    let points_spec = opts
        .get("points")
        .map_or("64x4,256x4,256x8", String::as_str);
    let points = parse_points(points_spec)?;
    if sessions == 0 {
        return Err("--sessions must be positive".into());
    }
    let json_path = opts.get("json").cloned();

    diag.info(&format!(
        "netrun: {} point(s) x {sessions} session(s) over loopback TCP, seed {seed}",
        points.len()
    ));
    let config = NetConfig::default();
    let results = overhead_sweep(&points, sessions, seed, &config);

    let mut t = Table::new([
        "n",
        "k",
        "sessions",
        "wire bytes",
        "frames",
        "transcript bits",
        "overhead x",
        "digest",
    ]);
    let mut mismatched = Vec::new();
    for p in &results {
        if !p.digests_match() {
            mismatched.push(format!("{}x{}", p.n, p.k));
        }
        t.row([
            p.n.to_string(),
            p.k.to_string(),
            p.sessions.to_string(),
            p.wire.bytes_total().to_string(),
            (p.wire.frames_tx + p.wire.frames_rx).to_string(),
            p.wire.transcript_bits.to_string(),
            f(p.wire.overhead_ratio(), 2),
            if p.digests_match() {
                "match"
            } else {
                "MISMATCH"
            }
            .to_owned(),
        ]);
    }
    println!("netrun — TCP wire overhead vs in-process transcripts (seed {seed})\n");
    println!("{}", t.render());

    if let Some(path) = json_path {
        let tables = Json::Arr(vec![obj([
            ("label", Json::str("")),
            (
                "columns",
                Json::Arr(t.headers().iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    t.rows()
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(|cell| Json::cell(cell)).collect()))
                        .collect(),
                ),
            ),
        ])]);
        let doc = obj([
            ("schema", Json::str("bci.bench.v1")),
            ("experiment", Json::str("netrun")),
            (
                "title",
                Json::str("netrun — TCP wire overhead vs in-process transcripts"),
            ),
            (
                "notes",
                Json::Arr(vec![Json::str(
                    "(each session runs twice from the same seed: loopback TCP and in-process; \
                     digest column compares the transcripts byte for byte)",
                )]),
            ),
            (
                "meta",
                Json::Obj(vec![
                    ("seed".to_owned(), Json::UInt(seed)),
                    ("sessions".to_owned(), Json::UInt(sessions as u64)),
                    ("points".to_owned(), Json::str(points_spec)),
                ]),
            ),
            ("tables", tables),
        ]);
        let mut text = doc.to_string();
        text.push('\n');
        std::fs::write(&path, text)
            .map_err(|e| format!("cannot write JSON report to '{path}': {e}"))?;
        diag.info(&format!("wrote JSON report to {path}"));
    }

    if !mismatched.is_empty() {
        return Err(format!(
            "transcript digests diverged from the in-process transport at: {}",
            mismatched.join(", ")
        ));
    }
    Ok(())
}

/// `bci experiments list | run <id>` — front end to the experiment
/// registry. `run` executes the sweep on a fabric [`JobPool`]
/// (`--workers`, default 1) and prints the same text the `table_*` bench
/// binaries emit; `--seed` overrides the experiment's canonical master
/// seed; `--topology` restricts a cross-model experiment (see the
/// `model` column of `experiments list`) to one communication model's
/// columns.
///
/// [`JobPool`]: bci_fabric::pool::JobPool
fn cmd_experiments(args: &[String]) -> Result<(), String> {
    use bci_core::experiments::registry::{
        find, registry, render_report, run_grid_pooled, Experiment,
    };
    use bci_fabric::pool::{JobPool, PoolConfig};
    use bci_telemetry::Json;

    /// The experiment's communication model(s), from its `model` meta
    /// key; everything without one is a plain blackboard experiment.
    fn model_of(exp: &dyn Experiment) -> String {
        exp.meta()
            .iter()
            .find_map(|(key, value)| match (key, value) {
                (&"model", Json::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "blackboard".to_owned())
    }

    let Some(sub) = args.first() else {
        return Err("experiments needs a subcommand: list | run <id>".into());
    };
    match sub.as_str() {
        "list" => {
            if let Some(extra) = args.get(1) {
                return Err(format!(
                    "experiments list takes no arguments, got '{extra}'"
                ));
            }
            let mut t = Table::new(["id", "points", "seed", "model", "title"]);
            for exp in registry() {
                t.row([
                    exp.id().to_owned(),
                    exp.grid().len().to_string(),
                    exp.seed().to_string(),
                    model_of(*exp),
                    exp.title().to_owned(),
                ]);
            }
            println!("{}", t.render());
            Ok(())
        }
        "run" => {
            let id = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("experiments run needs an id (try 'bci experiments list')")?;
            let exp = find(id).ok_or_else(|| {
                format!(
                    "unknown experiment '{id}' (known: {})",
                    registry()
                        .iter()
                        .map(|e| e.id())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            let opts = parse_opts(&args[2..])?;
            let restricted: Box<dyn Experiment>;
            let exp: &dyn Experiment = match opts.get("topology") {
                None => exp,
                Some(name) => {
                    if bci_topology::Topology::parse(name).is_none() {
                        return Err(format!(
                            "--topology: unknown model '{name}' (expected blackboard | star | p2p)"
                        ));
                    }
                    restricted = exp.with_topology(name).ok_or_else(|| {
                        format!(
                            "experiment '{id}' has no {name} lane (its models: {})",
                            model_of(exp)
                        )
                    })?;
                    &*restricted
                }
            };
            let workers: usize = get(&opts, "workers", Some(1usize))?;
            if workers == 0 {
                return Err("--workers must be positive".into());
            }
            let seed: u64 = get(&opts, "seed", Some(exp.seed()))?;
            let pool = JobPool::new(PoolConfig {
                workers,
                batch_size: 1,
                queue_capacity: 8,
                metric_prefix: "experiments",
                job_spans: true,
                recorder: Recorder::disabled(),
            });
            let results = run_grid_pooled(exp, &pool, seed);
            print!("{}", render_report(exp, &exp.tables(&results)));
            Ok(())
        }
        other => Err(format!(
            "unknown experiments subcommand '{other}' (expected list | run)"
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_fabric<P, S, F>(
    transport: &str,
    protocol: &P,
    sample: &S,
    reference: &F,
    sessions: u64,
    seed: u64,
    plan: &FaultPlan,
    config: &SchedulerConfig,
) -> Result<FabricReport<P::Output>, String>
where
    P: bci_blackboard::protocol::Protocol + Sync,
    P::Input: Sync + bci_encoding::wire::Wire,
    P::Output: PartialEq + Send + bci_encoding::wire::Wire,
    S: Fn(&mut dyn RngCore) -> Vec<P::Input> + Sync,
    F: Fn(&[P::Input]) -> P::Output + Sync,
{
    match transport {
        "channel" => Ok(monte_carlo_fabric(
            &ChannelTransport,
            protocol,
            sample,
            reference,
            sessions,
            seed,
            plan,
            config,
        )),
        "inprocess" => Ok(monte_carlo_fabric(
            &InProcessTransport,
            protocol,
            sample,
            reference,
            sessions,
            seed,
            plan,
            config,
        )),
        other => Err(format!("unknown transport '{other}'")),
    }
}

fn print_fabric_report<O>(report: &FabricReport<O>, recorder: &Recorder) {
    let m = &report.metrics;
    let mut t = Table::new(["metric", "value"]);
    t.row(["sessions".to_owned(), m.sessions.to_string()]);
    t.row(["completed".to_owned(), m.completed.to_string()]);
    t.row(["timed out".to_owned(), m.timed_out.to_string()]);
    t.row(["aborted".to_owned(), m.aborted.to_string()]);
    t.row(["errors".to_owned(), report.report.errors.to_string()]);
    t.row(["error rate".to_owned(), f(report.report.error_rate(), 4)]);
    t.row(["bits/session mean".to_owned(), f(m.bits.mean(), 2)]);
    t.row(["bits/session stddev".to_owned(), f(m.bits.stddev(), 2)]);
    t.row(["latency p50".to_owned(), format!("{:?}", m.latency_p50())]);
    t.row(["latency p95".to_owned(), format!("{:?}", m.latency_p95())]);
    t.row(["latency p99".to_owned(), format!("{:?}", m.latency_p99())]);
    t.row(["latency max".to_owned(), format!("{:?}", m.latency_max)]);
    t.row([
        "queue depth p50".to_owned(),
        m.queue_depth.percentile(50.0).to_string(),
    ]);
    t.row([
        "queue depth p95".to_owned(),
        m.queue_depth.percentile(95.0).to_string(),
    ]);
    t.row(["max queue depth".to_owned(), m.max_queue_depth.to_string()]);
    t.row(["workers".to_owned(), m.workers.to_string()]);
    t.row(["elapsed".to_owned(), format!("{:?}", m.elapsed)]);
    t.row(["sessions/sec".to_owned(), f(m.sessions_per_sec(), 1)]);
    if recorder.enabled() {
        let snap = recorder.snapshot();
        t.row([
            "backpressure stalls".to_owned(),
            snap.counter("fabric.backpressure_stalls").to_string(),
        ]);
        t.row([
            "telemetry events".to_owned(),
            recorder.events().len().to_string(),
        ]);
    }
    println!("{}", t.render());
}
