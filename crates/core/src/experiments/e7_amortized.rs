//! **E7 — Theorem 3**: amortized compression to external information cost.
//!
//! Compresses the n-fold parallel sequential `AND_k` protocol with the
//! Lemma 7 sampler and sweeps `n`. The claim to reproduce: the per-copy
//! compressed cost falls towards the exact `IC(Π)` as `n` grows (the
//! `r·O(log(n·IC))/n` overhead vanishes), while the uncompressed per-copy
//! cost stays flat.

use bci_compression::amortized::{compress_nfold, AmortizedReport};
use bci_protocols::and_trees::sequential_and;
use rand::SeedableRng;

use crate::table::{f, Table};

/// One `n` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// The compression run.
    pub report: AmortizedReport,
    /// Per-copy overhead above `IC`.
    pub overhead: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Params {
    /// Players per copy.
    pub k: usize,
    /// Monte-Carlo trials per `n`.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 16,
            trials: 12,
            seed: 5,
        }
    }
}

/// The copy counts used in `EXPERIMENTS.md`.
pub fn default_ns() -> Vec<usize> {
    vec![1, 4, 16, 64, 256, 1024]
}

/// Runs the sweep under the natural prior `Pr[Xᵢ = 1] = 1 − 1/k` (the hard
/// distribution's non-special marginal).
pub fn run(params: &Params, ns: &[usize]) -> Vec<Row> {
    let tree = sequential_and(params.k);
    let priors = vec![1.0 - 1.0 / params.k as f64; params.k];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(params.seed);
    ns.iter()
        .map(|&n| {
            let report = compress_nfold(&tree, &priors, n, params.trials, &mut rng);
            let overhead = report.per_copy_compressed() - report.ic_per_copy;
            Row { report, overhead }
        })
        .collect()
}

/// The parameter line printed above the E7 table.
pub fn preamble(params: &Params) -> String {
    format!("k = {}, trials = {}", params.k, params.trials)
}

/// Builds the E7 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n copies",
        "per-copy compressed",
        "IC(pi)",
        "overhead/copy",
        "per-copy raw",
    ]);
    for r in rows {
        t.row([
            r.report.n_copies.to_string(),
            f(r.report.per_copy_compressed(), 3),
            f(r.report.ic_per_copy, 3),
            f(r.overhead, 3),
            f(r.report.per_copy_raw(), 3),
        ]);
    }
    t
}

/// Renders the E7 table with its parameter preamble.
pub fn render(params: &Params, rows: &[Row]) -> String {
    format!("{}\n{}", preamble(params), table(rows).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_vanishes_with_n() {
        let params = Params {
            k: 8,
            trials: 20,
            seed: 2,
        };
        let rows = run(&params, &[1, 16, 256]);
        assert!(
            rows[2].overhead < rows[0].overhead,
            "overhead must shrink: {} → {}",
            rows[0].overhead,
            rows[2].overhead
        );
        assert!(
            rows[2].overhead.abs() < 2.5,
            "n=256 per-copy within a few bits of IC, overhead {}",
            rows[2].overhead
        );
    }

    #[test]
    fn raw_cost_stays_flat_while_compressed_falls() {
        let params = Params {
            k: 8,
            trials: 15,
            seed: 3,
        };
        let rows = run(&params, &[4, 256]);
        let raw_change = (rows[1].report.per_copy_raw() - rows[0].report.per_copy_raw()).abs();
        assert!(raw_change < 1.0, "raw per-copy drifted by {raw_change}");
        assert!(rows[1].report.per_copy_compressed() < rows[0].report.per_copy_compressed());
    }
}
