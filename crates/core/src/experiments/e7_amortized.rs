//! **E7 — Theorem 3**: amortized compression to external information cost.
//!
//! Compresses the n-fold parallel sequential `AND_k` protocol with the
//! Lemma 7 sampler and sweeps `n`. The claim to reproduce: the per-copy
//! compressed cost falls towards the exact `IC(Π)` as `n` grows (the
//! `r·O(log(n·IC))/n` overhead vanishes), while the uncompressed per-copy
//! cost stays flat.
//!
//! Two lanes sweep the same law. The **literal** lane
//! ([`compress_nfold`]) simulates every copy and covers `n ≤ 1024`; the
//! **modeled** lane ([`compress_nfold_modeled`]) tracks only per-node copy
//! counts (multinomial partitions per round, `O(1)` draws per cell) and
//! extends the sweep to `n = 2³⁰`, where the per-copy cost sits on `IC(Π)`
//! to within a hundredth of a bit.

use bci_compression::amortized::{compress_nfold, compress_nfold_modeled, AmortizedReport};
use bci_protocols::and_trees::sequential_and;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `n` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// The compression run.
    pub report: AmortizedReport,
    /// Per-copy overhead above `IC`.
    pub overhead: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Params {
    /// Players per copy.
    pub k: usize,
    /// Monte-Carlo trials per `n`.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 16,
            trials: 12,
            seed: 5,
        }
    }
}

/// The copy counts of the literal lane used in `EXPERIMENTS.md`.
pub fn default_ns() -> Vec<usize> {
    vec![1, 4, 16, 64, 256, 1024]
}

/// The copy counts of the modeled big-`n` lane used in `EXPERIMENTS.md`
/// (count-based sampler; no per-copy state).
pub fn default_modeled_ns() -> Vec<u64> {
    vec![1 << 20, 1 << 25, 1 << 30]
}

/// Runs one `n` point under its own RNG, under the natural prior
/// `Pr[Xᵢ = 1] = 1 − 1/k` (the hard distribution's non-special marginal).
pub fn run_point(params: &Params, &n: &usize, seed: u64) -> Row {
    let tree = sequential_and(params.k);
    let priors = vec![1.0 - 1.0 / params.k as f64; params.k];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let report = compress_nfold(&tree, &priors, n, params.trials, &mut rng);
    let overhead = report.per_copy_compressed() - report.ic_per_copy;
    Row { report, overhead }
}

/// Runs one modeled-lane `n` point under its own RNG — same prior and
/// tree as [`run_point`], count-based sampler.
pub fn run_modeled_point(params: &Params, &n: &u64, seed: u64) -> Row {
    let tree = sequential_and(params.k);
    let priors = vec![1.0 - 1.0 / params.k as f64; params.k];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let report = compress_nfold_modeled(&tree, &priors, n, params.trials, &mut rng);
    let overhead = report.per_copy_compressed() - report.ic_per_copy;
    Row { report, overhead }
}

/// Runs the sweep: point `i` computes under `point_seed(params.seed, i)`
/// (thin wrapper over [`run_point`]).
pub fn run(params: &Params, ns: &[usize]) -> Vec<Row> {
    ns.iter()
        .enumerate()
        .map(|(i, n)| run_point(params, n, point_seed(params.seed, i)))
        .collect()
}

/// The parameter line printed above the E7 table.
pub fn preamble(params: &Params) -> String {
    format!("k = {}, trials = {}", params.k, params.trials)
}

/// Builds the E7 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n copies",
        "per-copy compressed",
        "IC(pi)",
        "overhead/copy",
        "per-copy raw",
    ]);
    for r in rows {
        t.row([
            r.report.n_copies.to_string(),
            f(r.report.per_copy_compressed(), 3),
            f(r.report.ic_per_copy, 3),
            f(r.overhead, 3),
            f(r.report.per_copy_raw(), 3),
        ]);
    }
    t
}

/// Renders the E7 table with its parameter preamble.
pub fn render(params: &Params, rows: &[Row]) -> String {
    format!("{}\n{}", preamble(params), table(rows).render())
}

/// E7 as a registry [`Experiment`].
pub struct E7;

impl Experiment for E7 {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn title(&self) -> &'static str {
        "E7 — Theorem 3: per-copy cost of the compressed n-fold protocol"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(sequential AND_k under the natural prior; converges to IC)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        let params = Params::default();
        vec![
            ("k", Json::UInt(params.k as u64)),
            ("trials", Json::UInt(params.trials as u64)),
            ("seed", Json::UInt(params.seed)),
        ]
    }

    fn seed(&self) -> u64 {
        Params::default().seed
    }

    fn grid(&self) -> Vec<Point> {
        // Literal points keep indices 0..6 (their point seeds, and hence
        // their table bytes, are unchanged); modeled points extend the grid.
        let literal = default_ns()
            .into_iter()
            .enumerate()
            .map(|(i, n)| Point::new(i, format!("n={n}")));
        let offset = default_ns().len();
        let modeled = default_modeled_ns()
            .into_iter()
            .enumerate()
            .map(move |(i, n)| Point::new(offset + i, format!("n={n} (modeled)")));
        literal.chain(modeled).collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        let params = Params::default();
        let i = point.index();
        let literal = default_ns();
        if i < literal.len() {
            PointResult::new(run_point(&params, &literal[i], seed))
        } else {
            PointResult::new(run_modeled_point(
                &params,
                &default_modeled_ns()[i - literal.len()],
                seed,
            ))
        }
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        let (literal, modeled) = rows.split_at(default_ns().len());
        vec![
            (preamble(&Params::default()), table(literal)),
            (
                format!(
                    "modeled big-n lane (count-based sampler), {}",
                    preamble(&Params::default())
                ),
                table(modeled),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_vanishes_with_n() {
        let params = Params {
            k: 8,
            trials: 20,
            seed: 2,
        };
        let rows = run(&params, &[1, 16, 256]);
        assert!(
            rows[2].overhead < rows[0].overhead,
            "overhead must shrink: {} → {}",
            rows[0].overhead,
            rows[2].overhead
        );
        assert!(
            rows[2].overhead.abs() < 2.5,
            "n=256 per-copy within a few bits of IC, overhead {}",
            rows[2].overhead
        );
    }

    #[test]
    fn modeled_points_sit_on_ic_at_huge_n() {
        use super::super::registry::point_seed;
        let params = Params::default();
        let row = run_modeled_point(&params, &(1u64 << 30), point_seed(params.seed, 8));
        assert_eq!(row.report.n_copies, 1usize << 30);
        assert!(
            row.overhead.abs() < 0.01 * row.report.ic_per_copy + 1e-4,
            "overhead {} at n=2^30",
            row.overhead
        );
    }

    #[test]
    fn registry_grid_covers_both_lanes() {
        let e7 = E7;
        use super::super::registry::Experiment;
        let grid = e7.grid();
        assert_eq!(grid.len(), default_ns().len() + default_modeled_ns().len());
        let results: Vec<_> = grid
            .iter()
            .take(7) // all six literal points plus the first modeled one
            .map(|p| e7.run_point(p, point_seed(Params::default().seed, p.index())))
            .collect();
        assert_eq!(results[6].downcast::<Row>().report.n_copies, 1usize << 20);
    }

    #[test]
    fn raw_cost_stays_flat_while_compressed_falls() {
        let params = Params {
            k: 8,
            trials: 15,
            seed: 3,
        };
        let rows = run(&params, &[4, 256]);
        let raw_change = (rows[1].report.per_copy_raw() - rows[0].report.per_copy_raw()).abs();
        assert!(raw_change < 1.0, "raw per-copy drifted by {raw_change}");
        assert!(rows[1].report.per_copy_compressed() < rows[0].report.per_copy_compressed());
    }
}
