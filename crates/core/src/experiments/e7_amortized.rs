//! **E7 — Theorem 3**: amortized compression to external information cost.
//!
//! Compresses the n-fold parallel sequential `AND_k` protocol with the
//! Lemma 7 sampler and sweeps `n`. The claim to reproduce: the per-copy
//! compressed cost falls towards the exact `IC(Π)` as `n` grows (the
//! `r·O(log(n·IC))/n` overhead vanishes), while the uncompressed per-copy
//! cost stays flat.

use bci_compression::amortized::{compress_nfold, AmortizedReport};
use bci_protocols::and_trees::sequential_and;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `n` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// The compression run.
    pub report: AmortizedReport,
    /// Per-copy overhead above `IC`.
    pub overhead: f64,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Params {
    /// Players per copy.
    pub k: usize,
    /// Monte-Carlo trials per `n`.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 16,
            trials: 12,
            seed: 5,
        }
    }
}

/// The copy counts used in `EXPERIMENTS.md`.
pub fn default_ns() -> Vec<usize> {
    vec![1, 4, 16, 64, 256, 1024]
}

/// Runs one `n` point under its own RNG, under the natural prior
/// `Pr[Xᵢ = 1] = 1 − 1/k` (the hard distribution's non-special marginal).
pub fn run_point(params: &Params, &n: &usize, seed: u64) -> Row {
    let tree = sequential_and(params.k);
    let priors = vec![1.0 - 1.0 / params.k as f64; params.k];
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let report = compress_nfold(&tree, &priors, n, params.trials, &mut rng);
    let overhead = report.per_copy_compressed() - report.ic_per_copy;
    Row { report, overhead }
}

/// Runs the sweep: point `i` computes under `point_seed(params.seed, i)`
/// (thin wrapper over [`run_point`]).
pub fn run(params: &Params, ns: &[usize]) -> Vec<Row> {
    ns.iter()
        .enumerate()
        .map(|(i, n)| run_point(params, n, point_seed(params.seed, i)))
        .collect()
}

/// The parameter line printed above the E7 table.
pub fn preamble(params: &Params) -> String {
    format!("k = {}, trials = {}", params.k, params.trials)
}

/// Builds the E7 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n copies",
        "per-copy compressed",
        "IC(pi)",
        "overhead/copy",
        "per-copy raw",
    ]);
    for r in rows {
        t.row([
            r.report.n_copies.to_string(),
            f(r.report.per_copy_compressed(), 3),
            f(r.report.ic_per_copy, 3),
            f(r.overhead, 3),
            f(r.report.per_copy_raw(), 3),
        ]);
    }
    t
}

/// Renders the E7 table with its parameter preamble.
pub fn render(params: &Params, rows: &[Row]) -> String {
    format!("{}\n{}", preamble(params), table(rows).render())
}

/// E7 as a registry [`Experiment`].
pub struct E7;

impl Experiment for E7 {
    fn id(&self) -> &'static str {
        "e7"
    }

    fn title(&self) -> &'static str {
        "E7 — Theorem 3: per-copy cost of the compressed n-fold protocol"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(sequential AND_k under the natural prior; converges to IC)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        let params = Params::default();
        vec![
            ("k", Json::UInt(params.k as u64)),
            ("trials", Json::UInt(params.trials as u64)),
            ("seed", Json::UInt(params.seed)),
        ]
    }

    fn seed(&self) -> u64 {
        Params::default().seed
    }

    fn grid(&self) -> Vec<Point> {
        default_ns()
            .iter()
            .enumerate()
            .map(|(i, n)| Point::new(i, format!("n={n}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        let params = Params::default();
        PointResult::new(run_point(&params, &default_ns()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(preamble(&Params::default()), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_vanishes_with_n() {
        let params = Params {
            k: 8,
            trials: 20,
            seed: 2,
        };
        let rows = run(&params, &[1, 16, 256]);
        assert!(
            rows[2].overhead < rows[0].overhead,
            "overhead must shrink: {} → {}",
            rows[0].overhead,
            rows[2].overhead
        );
        assert!(
            rows[2].overhead.abs() < 2.5,
            "n=256 per-copy within a few bits of IC, overhead {}",
            rows[2].overhead
        );
    }

    #[test]
    fn raw_cost_stays_flat_while_compressed_falls() {
        let params = Params {
            k: 8,
            trials: 15,
            seed: 3,
        };
        let rows = run(&params, &[4, 256]);
        let raw_change = (rows[1].report.per_copy_raw() - rows[0].report.per_copy_raw()).abs();
        assert!(raw_change < 1.0, "raw per-copy drifted by {raw_change}");
        assert!(rows[1].report.per_copy_compressed() < rows[0].report.per_copy_compressed());
    }
}
