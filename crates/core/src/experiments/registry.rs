//! The [`Experiment`] trait and the registry of all 20 paper experiments.
//!
//! Every `e*_*` module implements [`Experiment`]: a stable id, a title and
//! context notes, a grid of opaque sweep [`Point`]s, a pure
//! [`run_point`](Experiment::run_point) producing one type-erased
//! [`PointResult`] per point, and a [`tables`](Experiment::tables) step
//! assembling the rendered tables from the results. Because points are
//! independent and each receives its own derived seed
//! ([`point_seed`]), a sweep can run on any executor — the serial loop in
//! [`run_grid`], the parallel `JobPool` in `bci-fabric`, or anything else —
//! and produce byte-identical tables as long as results are assembled in
//! point order.
//!
//! The seed scheme mirrors the fabric's session-seed derivation
//! (`derive_trial_seed`-style splitting): point `i` of an experiment with
//! master seed `s` computes with `point_seed(s, i)`, so no point's
//! randomness depends on how many points ran before it. Deterministic
//! experiments simply ignore the seed.
//!
//! Consumers: `bci-bench`'s `report_for` builds one machine-readable
//! report per experiment from this interface, and the `bci experiments`
//! CLI lists and runs registry entries directly.

use std::any::Any;
use std::ops::Range;

use bci_blackboard::runner::derive_trial_seed;
use bci_fabric::pool::JobPool;
use bci_telemetry::Json;

use crate::table::Table;

use super::*;

/// One opaque sweep point: its position in the experiment's grid plus a
/// human-readable label (`"n=1024, k=16"`). The experiment itself maps the
/// index back to its typed parameters, so executors never need to know
/// what a point means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Point {
    index: usize,
    label: String,
}

impl Point {
    /// Creates a point at `index` with a display `label`.
    pub fn new(index: usize, label: impl Into<String>) -> Point {
        Point {
            index,
            label: label.into(),
        }
    }

    /// The point's position in the experiment's grid.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The human-readable parameter description.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The type-erased output of one sweep point (one `Row`, a `Vec<Row>`, a
/// `Profile`, ... — whatever the experiment's typed driver produces).
#[derive(Debug)]
pub struct PointResult(Box<dyn Any + Send>);

impl PointResult {
    /// Wraps a typed per-point output.
    pub fn new<T: Any + Send>(value: T) -> PointResult {
        PointResult(Box::new(value))
    }

    /// Borrows the typed output.
    ///
    /// # Panics
    ///
    /// Panics if the result holds a different type — that is a bug in the
    /// experiment implementation (its `tables` must match its `run_point`),
    /// never a data-dependent condition.
    pub fn downcast<T: Any>(&self) -> &T {
        self.0
            .downcast_ref::<T>()
            .expect("PointResult type mismatch between run_point and tables")
    }
}

/// A rendered table with the preamble line printed above it (empty label =
/// no preamble).
pub type LabeledTable = (String, Table);

/// One paper experiment: identity, sweep grid, per-point computation, and
/// table assembly.
///
/// Implementations must keep `run_point` **pure per point**: the output may
/// depend only on the point and the seed handed in, never on which other
/// points ran or in what order. That property is what lets the suite run
/// grids in parallel with output byte-identical to the serial order.
pub trait Experiment: Sync {
    /// Short stable id (`"e1"` … `"e20"`), also the registry key.
    fn id(&self) -> &'static str;

    /// The headline printed above the tables.
    fn title(&self) -> &'static str;

    /// Free-form context lines printed under the title.
    fn notes(&self) -> Vec<String> {
        Vec::new()
    }

    /// Parameter metadata (seeds, trial counts, …), insertion-ordered.
    fn meta(&self) -> Vec<(&'static str, Json)> {
        Vec::new()
    }

    /// The experiment's canonical master seed (`EXPERIMENTS.md`
    /// parameters). Deterministic experiments keep the default.
    fn seed(&self) -> u64 {
        0
    }

    /// The default sweep grid as opaque points.
    fn grid(&self) -> Vec<Point>;

    /// Computes one point. `seed` is already split per point (see
    /// [`point_seed`]); deterministic experiments ignore it.
    fn run_point(&self, point: &Point, seed: u64) -> PointResult;

    /// Assembles the rendered tables from the per-point results, in point
    /// order.
    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable>;

    /// A variant of this experiment restricted to one communication
    /// model (`"blackboard"`, `"star"`, `"p2p"`), or `None` when the
    /// experiment has no lane for that model. Cross-model experiments
    /// (e19, e20) override this so `bci experiments run --topology`
    /// can emit a single model's columns; single-model experiments keep
    /// the default.
    fn with_topology(&self, _topology: &str) -> Option<Box<dyn Experiment>> {
        None
    }

    /// The trial-splitting hook: experiments whose points are Monte-Carlo
    /// aggregates over independent trials return `Some(self)` so executors
    /// can split a single heavy point across workers (see [`TrialSplit`]
    /// and [`run_grid_pooled`]). The default — indivisible points — is
    /// right for deterministic experiments and for randomized ones whose
    /// trials share one RNG stream.
    fn splitter(&self) -> Option<&dyn TrialSplit> {
        None
    }
}

/// Trial-level splitting for Monte-Carlo experiments: the contract that
/// lets one grid point's trials run on several workers without the output
/// depending on the split.
///
/// Implementations must derive trial `t`'s randomness from
/// `(point_seed, t)` **alone** (typically `derive_trial_seed(point_seed,
/// t)`, but any pure per-trial derivation qualifies) — never from which
/// other trials ran in the same chunk — and [`merge`](TrialSplit::merge)
/// must reassemble partial results in trial order into exactly the
/// [`PointResult`] that a whole-point
/// [`run_point`](Experiment::run_point) produces. Under that contract
/// every partition of `0..trials` yields byte-identical tables, so
/// executors are free to pick any fixed chunking (see
/// [`chunk`](TrialSplit::chunk)).
pub trait TrialSplit: Sync {
    /// The number of independent trials at `point`.
    fn trials(&self, point: &Point) -> u64;

    /// Trials per sub-job when an executor splits a point. Must be a fixed
    /// property of the experiment — **never derived from the worker
    /// count** — so the chunking, and therefore the merged output, is
    /// identical for every pool shape (CI byte-diffs `--workers 4` against
    /// `--workers 1`). The default [`TRIAL_CHUNK`] suits points whose
    /// per-trial work is substantial (e12's HW rounds); experiments with
    /// tens of thousands of cheap trials (e4) override it so per-job
    /// dispatch overhead doesn't swamp the trial work.
    fn chunk(&self) -> u64 {
        TRIAL_CHUNK
    }

    /// Runs trials `range` of `point`. Trial `t` computes under a seed
    /// derived from `(point_seed, t)` alone.
    fn run_range(&self, point: &Point, point_seed: u64, range: Range<u64>) -> PointResult;

    /// Merges [`run_range`](TrialSplit::run_range) partials — handed in
    /// covering `0..trials` in order, without gaps — into the point's
    /// result.
    fn merge(&self, point: &Point, parts: Vec<PointResult>) -> PointResult;
}

/// Default trials per sub-job for [`TrialSplit::chunk`]. Fixed — never
/// derived from the worker count — so the chunking, and therefore the
/// merged output, is identical for every pool shape (CI byte-diffs
/// `--workers 4` against `--workers 1`).
pub const TRIAL_CHUNK: u64 = 8;

/// The seed for point `index` of a sweep with master seed `master_seed` —
/// the same SplitMix-style derivation the fabric uses for session seeds,
/// so points are independent of execution order.
pub fn point_seed(master_seed: u64, index: usize) -> u64 {
    derive_trial_seed(master_seed, index as u64)
}

/// Runs an experiment's full default grid serially and assembles its
/// tables. The reference executor: any parallel executor must produce
/// byte-identical tables.
pub fn run_grid(exp: &dyn Experiment) -> Vec<LabeledTable> {
    let master = exp.seed();
    let results: Vec<PointResult> = exp
        .grid()
        .iter()
        .enumerate()
        .map(|(i, point)| exp.run_point(point, point_seed(master, i)))
        .collect();
    exp.tables(&results)
}

/// Runs an experiment's full default grid on a fabric [`JobPool`] and
/// returns the per-point results in point order.
///
/// Indivisible points run one job each (exactly what
/// [`report_for`]-style executors did before); experiments exposing a
/// [`TrialSplit`] hook additionally split every point into
/// [`chunk`](TrialSplit::chunk)-trial sub-jobs, so the suite's largest
/// single point no longer bounds the achievable speedup. Either way the assembled results
/// are byte-identical to the serial [`run_grid`] for any worker count.
///
/// [`report_for`]: ../../../bci_bench/suite/fn.report_for.html
pub fn run_grid_pooled(exp: &dyn Experiment, pool: &JobPool, master_seed: u64) -> Vec<PointResult> {
    let grid = exp.grid();
    match exp.splitter() {
        None => {
            pool.run(&grid, master_seed, &|seed, point| {
                exp.run_point(point, seed)
            })
            .outputs
        }
        Some(split) => {
            let chunk_size = split.chunk();
            pool.run_chunked(
                &grid,
                master_seed,
                &|_, point| split.trials(point).div_ceil(chunk_size).max(1) as usize,
                &|point_seed, point, chunk| {
                    let trials = split.trials(point);
                    let lo = chunk as u64 * chunk_size;
                    let hi = (lo + chunk_size).min(trials);
                    split.run_range(point, point_seed, lo..hi)
                },
                &|_, point, parts| split.merge(point, parts),
            )
            .outputs
        }
    }
}

/// Renders an experiment's header (title + notes) and every table from
/// [`run_grid`]-shaped output as plain text.
pub fn render_report(exp: &dyn Experiment, tables: &[LabeledTable]) -> String {
    let mut out = String::new();
    out.push_str(exp.title());
    out.push('\n');
    for note in exp.notes() {
        out.push_str(&note);
        out.push('\n');
    }
    for (label, table) in tables {
        out.push('\n');
        if !label.is_empty() {
            out.push_str(label);
            out.push('\n');
        }
        out.push_str(&table.render());
    }
    out
}

/// Every experiment, in `EXPERIMENTS.md` order.
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 20] = [
        &e1_disj_upper::E1,
        &e2_and_cic::E2,
        &e3_pointing::E3,
        &e4_omega_k::E4,
        &e5_gap::E5,
        &e6_sampling::E6,
        &e7_amortized::E7,
        &e8_direct_sum::E8,
        &e9_divergence::E9,
        &e10_union::E10,
        &e11_internal::E11,
        &e12_sparse::E12,
        &e13_huffman::E13,
        &e14_one_shot::E14,
        &e15_block_coding::E15,
        &e16_profile::E16,
        &e17_error_tradeoff::E17,
        &e18_promise::E18,
        &e19_topology::E19::ALL,
        &e20_nih_and::E20::ALL,
    ];
    &REGISTRY
}

/// Looks an experiment up by id (`"e7"`).
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_in_experiments_order() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        let expected: Vec<String> = (1..=20).map(|i| format!("e{i}")).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn find_resolves_every_id_and_rejects_unknowns() {
        for exp in registry() {
            assert_eq!(find(exp.id()).map(|e| e.id()), Some(exp.id()));
        }
        assert!(find("e21").is_none());
        assert!(find("fabric").is_none());
    }

    #[test]
    fn every_grid_is_nonempty_with_dense_indices() {
        for exp in registry() {
            let grid = exp.grid();
            assert!(!grid.is_empty(), "{}", exp.id());
            for (i, p) in grid.iter().enumerate() {
                assert_eq!(p.index(), i, "{}", exp.id());
                assert!(!p.label().is_empty(), "{}", exp.id());
            }
        }
    }

    #[test]
    fn pooled_grid_matches_serial_including_trial_splits() {
        use bci_fabric::pool::PoolConfig;
        // e12, e4, and e6 expose the TrialSplit hook (points fan out into
        // chunk()-trial sub-jobs — e4 and e6 override the default chunk);
        // e16 does not (one job per point). All must render byte-identically
        // to the serial reference for any worker count.
        for id in ["e12", "e4", "e6", "e16"] {
            let exp = find(id).expect("registered");
            let serial = render_report(exp, &run_grid(exp));
            for workers in [1usize, 3] {
                let pool = JobPool::new(PoolConfig {
                    workers,
                    batch_size: 1,
                    ..PoolConfig::default()
                });
                let results = run_grid_pooled(exp, &pool, exp.seed());
                let pooled = render_report(exp, &exp.tables(&results));
                assert_eq!(serial, pooled, "{id} with {workers} workers");
            }
        }
    }

    #[test]
    fn point_seeds_split_like_fabric_sessions() {
        assert_eq!(point_seed(7, 0), derive_trial_seed(7, 0));
        assert_ne!(point_seed(7, 0), point_seed(7, 1));
        assert_ne!(point_seed(7, 0), point_seed(8, 0));
    }
}
