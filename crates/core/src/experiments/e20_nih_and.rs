//! **E20 (extension) — `AND_k` information cost: blackboard vs star**.
//!
//! The e2 lane shows the broadcast model solves `AND_k` with
//! `CIC_μ = Θ(log k)` under the hard distribution. In the
//! message-passing world there is no free blackboard: the natural star
//! protocol ([`StarAnd`]) ships every spoke's bit to the hub, and its
//! *external* information cost is the full entropy of the spokes'
//! inputs — `Θ(log k)` too in absolute terms here (the hard
//! distribution is heavily skewed), but paid for with `2(k−1)` bits of
//! communication against the blackboard witness's `k`, and computed by
//! a completely different mechanism (revealing inputs verbatim instead
//! of Theorem 1's square-root–loss accounting). This is the Gronemeier
//! number-in-hand calibration point next to BEOPV's coordinator model.
//!
//! Everything here is exact and deterministic:
//!
//! * **broadcast CIC** — `cic_hard(sequential_and(k), μ)`, the e2 lane;
//! * **star ext IC** — closed form. The star transcript is the spokes'
//!   inputs `X_V` (`V` = non-hub players) followed by downlinks that are
//!   identically 0 under `μ` (the support always contains a zero), so
//!   `I(X; Π) = H(X_V)`. Under `μ` with `q = 1/k`, a spoke vector with
//!   `m` zeros has probability `p_m = (1/k)·q^{m−1}(1−q)^{K−m}(q+m)`
//!   (`K = k−1`), hence `H(X_V) = −Σ_m C(K,m)·p_m·log₂ p_m`, evaluated
//!   in the log domain.

use bci_lowerbound::cic::cic_hard;
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::sequential_and;
use bci_protocols::msgpass::StarAnd;
use bci_telemetry::Json;

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of players.
    pub k: usize,
    /// Exact `CIC_μ` of the sequential blackboard witness (the e2 lane).
    pub broadcast_cic: f64,
    /// Exact external information cost of the star protocol: `H(X_V)`.
    pub star_ic: f64,
    /// `star_ic / broadcast_cic`.
    pub ratio: f64,
    /// Blackboard witness communication (`= k`).
    pub cc_broadcast: usize,
    /// Star communication (`= 2(k−1)`).
    pub cc_star: usize,
}

/// The sweep used in `EXPERIMENTS.md` (same `k`s as e2).
pub fn default_ks() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64, 128, 256, 512]
}

/// `H(X_V)`: the exact entropy of the `k−1` non-hub inputs under the
/// hard distribution — the star protocol's external information cost.
///
/// Evaluated per zero-count class in the log domain, so it is stable out
/// to `k = 512` and beyond.
pub fn star_information_cost(k: usize) -> f64 {
    assert!(k >= 2, "the star needs a hub and at least one spoke");
    let big_k = k - 1; // spokes
    let q = 1.0 / k as f64;
    // ln C(K, m) via a ln-factorial table.
    let mut ln_fact = vec![0.0f64; big_k + 1];
    for i in 1..=big_k {
        ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
    }
    let ln2 = std::f64::consts::LN_2;
    let mut h = 0.0;
    for m in 0..=big_k {
        // ln p_m = −ln k + (m−1)·ln q + (K−m)·ln(1−q) + ln(q + m).
        let ln_pm = -(k as f64).ln()
            + (m as f64 - 1.0) * q.ln()
            + ((big_k - m) as f64) * (1.0 - q).ln()
            + (q + m as f64).ln();
        let ln_class = ln_fact[big_k] - ln_fact[m] - ln_fact[big_k - m] + ln_pm;
        h -= ln_class.exp() * (ln_pm / ln2);
    }
    h
}

/// Computes one `k` point (fully deterministic — everything is exact).
pub fn run_point(&k: &usize) -> Row {
    let broadcast_cic = cic_hard(&sequential_and(k), &HardDist::new(k));
    let star_ic = star_information_cost(k);
    Row {
        k,
        broadcast_cic,
        star_ic,
        ratio: star_ic / broadcast_cic,
        cc_broadcast: k,
        cc_star: StarAnd::worst_case_bits(k),
    }
}

/// Runs the sweep (thin wrapper over [`run_point`]).
pub fn run(ks: &[usize]) -> Vec<Row> {
    ks.iter().map(run_point).collect()
}

/// Which model columns a table should carry.
fn wants(only: Option<&str>, model: &str) -> bool {
    only.is_none_or(|m| m == model)
}

/// Builds the E20 table, optionally restricted to one model's columns.
pub fn table_restricted(rows: &[Row], only: Option<&str>) -> Table {
    let mut header: Vec<&str> = vec!["k"];
    if wants(only, "blackboard") {
        header.extend(["CIC(seq AND)", "CC bb"]);
    }
    if wants(only, "star") {
        header.extend(["star ext IC", "CC star"]);
    }
    if only.is_none() {
        header.push("star/bb IC");
    }
    let mut t = Table::new(header);
    for r in rows {
        let mut row = vec![r.k.to_string()];
        if wants(only, "blackboard") {
            row.extend([f(r.broadcast_cic, 4), r.cc_broadcast.to_string()]);
        }
        if wants(only, "star") {
            row.extend([f(r.star_ic, 4), r.cc_star.to_string()]);
        }
        if only.is_none() {
            row.push(f(r.ratio, 4));
        }
        t.row(row);
    }
    t
}

/// Builds the full (both-models) E20 table.
pub fn table(rows: &[Row]) -> Table {
    table_restricted(rows, None)
}

/// Renders the E20 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E20 as a registry [`Experiment`]; [`E20::ALL`] carries both models,
/// `with_topology` yields single-model restrictions.
pub struct E20 {
    only: Option<&'static str>,
}

impl E20 {
    /// The registry instance: blackboard and star side by side.
    pub const ALL: E20 = E20 { only: None };
}

impl Experiment for E20 {
    fn id(&self) -> &'static str {
        "e20"
    }

    fn title(&self) -> &'static str {
        "E20 — AND_k information cost: blackboard CIC vs star (number-in-hand) external IC"
    }

    fn notes(&self) -> Vec<String> {
        let mut notes = vec![
            "(hard distribution; star transcript reveals the spokes' inputs, so its \
             external IC is H(X_V) exactly — the Gronemeier NIH calibration next to \
             BEOPV's coordinator model)"
                .into(),
        ];
        if let Some(m) = self.only {
            notes.push(format!("(restricted to the {m} model)"));
        }
        notes
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("model", Json::str(self.only.unwrap_or("blackboard+star")))]
    }

    fn grid(&self) -> Vec<Point> {
        default_ks()
            .iter()
            .enumerate()
            .map(|(i, k)| Point::new(i, format!("k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_ks()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table_restricted(&rows, self.only))]
    }

    fn with_topology(&self, topology: &str) -> Option<Box<dyn Experiment>> {
        match topology {
            "blackboard" => Some(Box::new(E20 {
                only: Some("blackboard"),
            })),
            "star" => Some(Box::new(E20 { only: Some("star") })),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_two_entropy_is_the_binary_entropy_of_one_quarter() {
        // One spoke, Pr[X₁ = 0] = 1/4 (z hits the spoke w.p. 1/2, else
        // Bernoulli(1/2)): H = h(1/4).
        let h = star_information_cost(2);
        let expect = -(0.25f64.log2() * 0.25 + 0.75f64.log2() * 0.75);
        assert!((h - expect).abs() < 1e-12, "{h} vs {expect}");
    }

    #[test]
    fn closed_form_matches_brute_force_enumeration() {
        // Enumerate the spoke marginal by summing the full HardDist
        // marginal over the hub's bit.
        for k in [3usize, 4, 6] {
            let mu = HardDist::new(k);
            let spokes = k - 1;
            let mut h = 0.0;
            for v in 0..(1u32 << spokes) {
                let mut p = 0.0;
                for hub in [false, true] {
                    let mut x = vec![hub];
                    x.extend((0..spokes).map(|i| v >> i & 1 == 1));
                    p += mu.prob(&x);
                }
                if p > 0.0 {
                    h -= p * p.log2();
                }
            }
            let closed = star_information_cost(k);
            assert!((h - closed).abs() < 1e-10, "k={k}: {h} vs {closed}");
        }
    }

    #[test]
    fn star_ic_scales_like_log_k_and_dominates_broadcast_cic() {
        let rows = run(&[4, 64, 512]);
        for r in &rows {
            // The spokes' entropy: K spokes, each ≈ h(1/k) ≈ (log k)/k
            // bits, plus the shared zero — Θ(log k) total here.
            assert!(r.star_ic > 0.0);
            assert!(
                r.star_ic > r.broadcast_cic,
                "k={}: star {} vs broadcast {}",
                r.k,
                r.star_ic,
                r.broadcast_cic
            );
        }
        // The ratio is bounded (both sides are Θ(log k)).
        assert!(rows[2].ratio < 10.0 * rows[0].ratio.max(1.0));
    }

    #[test]
    fn restricted_tables_drop_the_other_model() {
        let rows = run(&[4]);
        let all = table_restricted(&rows, None).render();
        let star = table_restricted(&rows, Some("star")).render();
        assert!(all.contains("star ext IC") && all.contains("CIC(seq AND)"));
        assert!(star.contains("star ext IC") && !star.contains("CIC(seq AND)"));
    }

    #[test]
    fn with_topology_supports_blackboard_and_star_only() {
        let exp = E20::ALL;
        assert!(exp.with_topology("blackboard").is_some());
        assert!(exp.with_topology("star").is_some());
        assert!(exp.with_topology("p2p").is_none());
    }
}
