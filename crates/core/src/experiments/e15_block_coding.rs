//! **E15 (extension) — Shannon's amortized limit on transcript streams**.
//!
//! The introduction's other classical baseline: block coding many iid
//! messages drives the per-message cost to `H(X)` (Shannon), while
//! symbol-by-symbol Huffman is stuck at up to one extra bit each. This
//! experiment block-codes streams of `AND_k` transcripts with the
//! arithmetic coder and watches the per-transcript cost converge to the
//! exact transcript entropy — the one-way analogue of Theorem 3's
//! amortization (E7), with the same "amortization kills the per-item tax"
//! shape.

use bci_encoding::arithmetic::{decode_sequence, encode_sequence, ArithmeticModel};
use bci_encoding::huffman::HuffmanCode;
use bci_protocols::and_trees::sequential_and;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One block-size sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Block size `m` (transcripts coded jointly).
    pub m: usize,
    /// Arithmetic-coded bits per transcript (mean over trials).
    pub arithmetic_per_symbol: f64,
    /// Huffman bits per transcript (same streams).
    pub huffman_per_symbol: f64,
    /// Exact transcript entropy `H(Π)`.
    pub entropy: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone)]
pub struct Params {
    /// Players per instance.
    pub k: usize,
    /// `Pr[Xᵢ = 1]` — near 1 makes transcripts skewed and `H` small.
    pub prior: f64,
    /// Trials averaged per block size.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 16,
            prior: 0.999,
            trials: 50,
            seed: 15,
        }
    }
}

/// The block sizes used in `EXPERIMENTS.md`.
pub fn default_ms() -> Vec<usize> {
    vec![1, 4, 16, 64, 256, 2048]
}

/// Runs one block-size point under its own RNG.
pub fn run_point(params: &Params, &m: &usize, seed: u64) -> Row {
    let tree = sequential_and(params.k);
    let priors = vec![params.prior; params.k];
    // Exact transcript distribution over leaves.
    let leaf_probs: Vec<f64> = tree
        .leaves()
        .iter()
        .map(|l| l.prob_under_product(&priors))
        .collect();
    let entropy = bci_info::entropy::entropy(&leaf_probs);
    let model = ArithmeticModel::from_probs(&leaf_probs);
    let huffman = HuffmanCode::from_probs(&leaf_probs);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut arith_bits = 0usize;
    let mut huff_bits = 0usize;
    for _ in 0..params.trials {
        let symbols: Vec<usize> = (0..m)
            .map(|_| {
                let x: Vec<bool> = priors
                    .iter()
                    .map(|&p| rand::Rng::random_bool(&mut rng, p))
                    .collect();
                tree.simulate(&x, &mut rng).0
            })
            .collect();
        let bits = encode_sequence(&model, &symbols);
        debug_assert_eq!(decode_sequence(&model, &bits, symbols.len()), symbols);
        arith_bits += bits.len();
        huff_bits += symbols.iter().map(|&s| huffman.code_len(s)).sum::<usize>();
    }
    let denom = (m * params.trials) as f64;
    Row {
        m,
        arithmetic_per_symbol: arith_bits as f64 / denom,
        huffman_per_symbol: huff_bits as f64 / denom,
        entropy,
    }
}

/// Runs the sweep: point `i` computes under `point_seed(params.seed, i)`
/// (thin wrapper over [`run_point`]).
pub fn run(params: &Params, ms: &[usize]) -> Vec<Row> {
    ms.iter()
        .enumerate()
        .map(|(i, m)| run_point(params, m, point_seed(params.seed, i)))
        .collect()
}

/// The parameter line printed above the E15 table.
pub fn preamble(params: &Params) -> String {
    format!(
        "k = {}, Pr[X_i = 1] = {} (skewed transcripts)",
        params.k, params.prior
    )
}

/// Builds the E15 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "block m",
        "arithmetic b/transcript",
        "Huffman b/transcript",
        "H(transcript)",
    ]);
    for r in rows {
        t.row([
            r.m.to_string(),
            f(r.arithmetic_per_symbol, 3),
            f(r.huffman_per_symbol, 3),
            f(r.entropy, 3),
        ]);
    }
    t
}

/// Renders the E15 table with its parameter preamble.
pub fn render(params: &Params, rows: &[Row]) -> String {
    format!("{}\n{}", preamble(params), table(rows).render())
}

/// E15 as a registry [`Experiment`].
pub struct E15;

impl Experiment for E15 {
    fn id(&self) -> &'static str {
        "e15"
    }

    fn title(&self) -> &'static str {
        "E15 — block coding transcript streams to the Shannon limit"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(arithmetic coder vs per-symbol Huffman vs H)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        let params = Params::default();
        vec![
            ("k", Json::UInt(params.k as u64)),
            ("trials", Json::UInt(params.trials as u64)),
            ("seed", Json::UInt(params.seed)),
        ]
    }

    fn seed(&self) -> u64 {
        Params::default().seed
    }

    fn grid(&self) -> Vec<Point> {
        default_ms()
            .iter()
            .enumerate()
            .map(|(i, m)| Point::new(i, format!("m={m}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        let params = Params::default();
        PointResult::new(run_point(&params, &default_ms()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(preamble(&Params::default()), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_coding_converges_to_entropy() {
        let params = Params {
            trials: 20,
            ..Params::default()
        };
        let rows = run(&params, &[1, 1024]);
        // Large blocks land within 10% + a few hundredths of H.
        let big = &rows[1];
        assert!(
            big.arithmetic_per_symbol < big.entropy * 1.1 + 0.05,
            "per-symbol {} vs H {}",
            big.arithmetic_per_symbol,
            big.entropy
        );
        // Small blocks pay the termination overhead.
        assert!(rows[0].arithmetic_per_symbol > big.arithmetic_per_symbol);
        // Huffman is stuck ≥ 1 bit/transcript on this sub-bit source.
        assert!(big.huffman_per_symbol >= 1.0 - 1e-9);
        assert!(big.entropy < 1.0, "the source really is sub-bit");
    }
}
