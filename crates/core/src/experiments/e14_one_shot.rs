//! **E14 (extension) — why single-shot compression fails: the round tax**.
//!
//! Section 6 shows the `Ω(k/log k)` gap abstractly; this experiment shows
//! the *mechanism*. Apply the Lemma 7 sampler round-by-round to a **single**
//! instance of sequential `AND_k` (i.e. [`compress_nfold`] with `n = 1`):
//! every round pays an `O(1)`-bit floor (block index + γ(s+1) codewords)
//! even when it reveals almost no information, and the protocol has `Θ(k)`
//! rounds — so the compressed cost grows *linearly in `k`* while the
//! information content stays `Θ(log k)`. One-shot round-by-round
//! compression cannot beat the Lemma 6 `Ω(k)` floor; only amortizing many
//! copies (E7) dilutes the round tax.

use bci_compression::amortized::compress_nfold;
use bci_protocols::and_trees::sequential_and;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// Canonical trials per point (`EXPERIMENTS.md` parameters).
pub const TRIALS: usize = 40;
/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE14;

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Players.
    pub k: usize,
    /// Exact information cost of the protocol.
    pub ic: f64,
    /// Mean single-shot compressed cost (n = 1).
    pub one_shot_bits: f64,
    /// Mean raw (uncompressed) cost.
    pub raw_bits: f64,
    /// Per-copy cost when 256 copies are amortized, for contrast.
    pub amortized_per_copy: f64,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![4, 8, 16, 32, 64]
}

/// Runs one `k` point under its own RNG.
pub fn run_point(&k: &usize, trials: usize, seed: u64) -> Row {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let tree = sequential_and(k);
    let priors = vec![1.0 - 1.0 / k as f64; k];
    let single = compress_nfold(&tree, &priors, 1, trials, &mut rng);
    let many = compress_nfold(&tree, &priors, 256, trials.div_ceil(4), &mut rng);
    Row {
        k,
        ic: single.ic_per_copy,
        one_shot_bits: single.mean_compressed_bits,
        raw_bits: single.mean_raw_bits,
        amortized_per_copy: many.per_copy_compressed(),
    }
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(ks: &[usize], trials: usize, seed: u64) -> Vec<Row> {
    ks.iter()
        .enumerate()
        .map(|(i, k)| run_point(k, trials, point_seed(seed, i)))
        .collect()
}

/// Builds the E14 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "IC",
        "one-shot compressed",
        "raw",
        "amortized (n=256)",
        "one-shot/k",
    ]);
    for r in rows {
        t.row([
            r.k.to_string(),
            f(r.ic, 3),
            f(r.one_shot_bits, 2),
            f(r.raw_bits, 2),
            f(r.amortized_per_copy, 2),
            f(r.one_shot_bits / r.k as f64, 2),
        ]);
    }
    t
}

/// Renders the E14 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E14 as a registry [`Experiment`].
pub struct E14;

impl Experiment for E14 {
    fn id(&self) -> &'static str {
        "e14"
    }

    fn title(&self) -> &'static str {
        "E14 — single-shot round-by-round compression pays Theta(k), not IC"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!("(sequential AND_k; {TRIALS} trials per point)")]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("trials", Json::UInt(TRIALS as u64)),
            ("seed", Json::UInt(SEED)),
        ]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_ks()
            .iter()
            .enumerate()
            .map(|(i, k)| Point::new(i, format!("k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_ks()[point.index()], TRIALS, seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_cost_is_linear_in_k_not_logarithmic() {
        let rows = run(&[8, 64], 30, 1);
        let growth = rows[1].one_shot_bits / rows[0].one_shot_bits;
        // k grew 8×; a log-scaling cost would grow ≈ 1.5×. The round tax
        // makes it grow nearly linearly.
        assert!(growth > 4.0, "growth {growth}");
        // While the information only grows logarithmically.
        assert!(rows[1].ic / rows[0].ic < 2.0);
        // And amortization recovers the information scaling.
        assert!(rows[1].amortized_per_copy < 3.0 * rows[1].ic);
    }

    #[test]
    fn one_shot_never_beats_information() {
        for r in run(&[16], 40, 2) {
            assert!(r.one_shot_bits > r.ic);
        }
    }
}
