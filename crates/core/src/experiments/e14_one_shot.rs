//! **E14 (extension) — why single-shot compression fails: the round tax**.
//!
//! Section 6 shows the `Ω(k/log k)` gap abstractly; this experiment shows
//! the *mechanism*. Apply the Lemma 7 sampler round-by-round to a **single**
//! instance of sequential `AND_k` (i.e. [`compress_nfold`] with `n = 1`):
//! every round pays an `O(1)`-bit floor (block index + γ(s+1) codewords)
//! even when it reveals almost no information, and the protocol has `Θ(k)`
//! rounds — so the compressed cost grows *linearly in `k`* while the
//! information content stays `Θ(log k)`. One-shot round-by-round
//! compression cannot beat the Lemma 6 `Ω(k)` floor; only amortizing many
//! copies (E7) dilutes the round tax.

use bci_compression::amortized::compress_nfold;
use bci_protocols::and_trees::sequential_and;
use rand::SeedableRng;

use crate::table::{f, Table};

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Players.
    pub k: usize,
    /// Exact information cost of the protocol.
    pub ic: f64,
    /// Mean single-shot compressed cost (n = 1).
    pub one_shot_bits: f64,
    /// Mean raw (uncompressed) cost.
    pub raw_bits: f64,
    /// Per-copy cost when 256 copies are amortized, for contrast.
    pub amortized_per_copy: f64,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![4, 8, 16, 32, 64]
}

/// Runs the sweep.
pub fn run(ks: &[usize], trials: usize, seed: u64) -> Vec<Row> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    ks.iter()
        .map(|&k| {
            let tree = sequential_and(k);
            let priors = vec![1.0 - 1.0 / k as f64; k];
            let single = compress_nfold(&tree, &priors, 1, trials, &mut rng);
            let many = compress_nfold(&tree, &priors, 256, trials.div_ceil(4), &mut rng);
            Row {
                k,
                ic: single.ic_per_copy,
                one_shot_bits: single.mean_compressed_bits,
                raw_bits: single.mean_raw_bits,
                amortized_per_copy: many.per_copy_compressed(),
            }
        })
        .collect()
}

/// Builds the E14 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "IC",
        "one-shot compressed",
        "raw",
        "amortized (n=256)",
        "one-shot/k",
    ]);
    for r in rows {
        t.row([
            r.k.to_string(),
            f(r.ic, 3),
            f(r.one_shot_bits, 2),
            f(r.raw_bits, 2),
            f(r.amortized_per_copy, 2),
            f(r.one_shot_bits / r.k as f64, 2),
        ]);
    }
    t
}

/// Renders the E14 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_cost_is_linear_in_k_not_logarithmic() {
        let rows = run(&[8, 64], 30, 1);
        let growth = rows[1].one_shot_bits / rows[0].one_shot_bits;
        // k grew 8×; a log-scaling cost would grow ≈ 1.5×. The round tax
        // makes it grow nearly linearly.
        assert!(growth > 4.0, "growth {growth}");
        // While the information only grows logarithmically.
        assert!(rows[1].ic / rows[0].ic < 2.0);
        // And amortization recovers the information scaling.
        assert!(rows[1].amortized_per_copy < 3.0 * rows[1].ic);
    }

    #[test]
    fn one_shot_never_beats_information() {
        for r in run(&[16], 40, 2) {
            assert!(r.one_shot_bits > r.ic);
        }
    }
}
