//! **E18 (extension) — promise disjointness instances**.
//!
//! The promise version of set disjointness (either the sets share exactly
//! one element or they are pairwise disjoint) is the form that drives the
//! streaming lower bounds the paper cites ([1, 2, 17]). This experiment
//! runs the Theorem 2 protocol on promise instances across set sizes and
//! records how its cost adapts: the protocol must still certify *all* `n`
//! coordinates, so the promise does not make the upper bound cheaper — the
//! `Ω(n/k)`-per-player hardness of the promise problem lives below the
//! general `Ω(n log k)` bound, and the measured costs sit between them.

use bci_protocols::disj::{batched, naive};
use bci_protocols::workload;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::Table;

/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE18;

/// One promise-instance sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size.
    pub n: usize,
    /// Players.
    pub k: usize,
    /// Per-player set size.
    pub set_size: usize,
    /// Whether the instance has the unique intersection.
    pub intersecting: bool,
    /// Batched protocol bits.
    pub batched_bits: usize,
    /// Naive protocol bits.
    pub naive_bits: usize,
    /// Protocol output (false = found the intersection).
    pub output: bool,
}

/// Runs one `(n, k, set_size)` point under its own RNG, producing both
/// promise cases (two rows).
pub fn run_point(&(n, k, set_size): &(usize, usize, usize), seed: u64) -> Vec<Row> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let (with, _) = workload::unique_intersection(n, k, set_size, &mut rng);
    let b = batched::run(&with);
    let nv = naive::run(&with);
    assert!(!b.output && !nv.output);
    rows.push(Row {
        n,
        k,
        set_size,
        intersecting: true,
        batched_bits: b.bits,
        naive_bits: nv.bits,
        output: b.output,
    });
    let without = workload::pairwise_disjoint(n, k, set_size, &mut rng);
    let b = batched::run(&without);
    let nv = naive::run(&without);
    assert!(b.output && nv.output);
    rows.push(Row {
        n,
        k,
        set_size,
        intersecting: false,
        batched_bits: b.bits,
        naive_bits: nv.bits,
        output: b.output,
    });
    rows
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(grid: &[(usize, usize, usize)], seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .flat_map(|(i, p)| run_point(p, point_seed(seed, i)))
        .collect()
}

/// The grid used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (2048, 8, 16),
        (2048, 8, 128),
        (2048, 8, 255),
        (8192, 16, 256),
    ]
}

/// Builds the E18 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n",
        "k",
        "set size",
        "promise case",
        "batched bits",
        "naive bits",
        "decided",
    ]);
    for r in rows {
        t.row([
            r.n.to_string(),
            r.k.to_string(),
            r.set_size.to_string(),
            if r.intersecting {
                "unique intersection"
            } else {
                "pairwise disjoint"
            }
            .to_owned(),
            r.batched_bits.to_string(),
            r.naive_bits.to_string(),
            if r.output { "disjoint" } else { "non-disjoint" }.to_owned(),
        ]);
    }
    t
}

/// The interpretive note printed under the E18 table.
pub fn note() -> &'static str {
    "(batched/naive costs are dominated by certifying the n coordinates;\n\
     the promise changes the answer, not the certification work)"
}

/// Renders the E18 table as text, with the trailing note.
pub fn render(rows: &[Row]) -> String {
    format!("{}\n{}\n", table(rows).render(), note())
}

/// E18 as a registry [`Experiment`]. Each point yields two rows (both
/// promise cases).
pub struct E18;

impl Experiment for E18 {
    fn id(&self) -> &'static str {
        "e18"
    }

    fn title(&self) -> &'static str {
        "E18 — promise (unique-intersection vs pairwise-disjoint) instances"
    }

    fn notes(&self) -> Vec<String> {
        vec![
            "(the streaming-hard promise from [1,2,17]; Theorem 2 protocol)".into(),
            note().into(),
        ]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(n, k, s))| Point::new(i, format!("n={n}, k={k}, set size={s}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .flat_map(|r| r.downcast::<Vec<Row>>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_promise_cases_are_decided_correctly() {
        let rows = run(&[(512, 4, 32)], 7);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].output, "unique intersection detected");
        assert!(rows[1].output, "pairwise disjoint certified");
    }

    #[test]
    fn costs_track_certification_not_the_promise() {
        // Sparse sets → most coordinates are zeros for everyone → both
        // cases publish ~n coordinates; the costs are within 25%.
        let rows = run(&[(1024, 8, 16)], 9);
        let ratio = rows[0].batched_bits as f64 / rows[1].batched_bits as f64;
        assert!((0.75..1.33).contains(&ratio), "ratio {ratio}");
    }
}
