//! **E13 (extension) — the one-way baseline: Huffman's `H + 1`**.
//!
//! The paper's introduction frames interactive compression against the
//! classical one-way facts (Shannon `H`, Huffman `H + 1`). This experiment
//! makes the contrast concrete on `AND_k`: the sequential protocol's
//! transcript has entropy `H(Π) ≈ log₂ k` under `μ′`, and an *external
//! recoder* (who sees the whole transcript) can Huffman-code it into
//! `< H + 1` bits — yet Section 6 proves no *interactive protocol* can get
//! below `Ω(k)`. One-way compression ≠ interactive compression, which is
//! exactly why the `Ω(k/log k)` gap (E5) is interesting.

use bci_encoding::huffman::HuffmanCode;
use bci_lowerbound::counting::FoolingDist;
use bci_protocols::and_trees::sequential_and;

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Players.
    pub k: usize,
    /// Transcript entropy `H(Π)` under `μ′`.
    pub entropy: f64,
    /// Expected Huffman codeword length of the transcript.
    pub huffman: f64,
    /// The interactive lower bound (Lemma 6) in bits.
    pub interactive_lb: f64,
    /// The protocol's worst-case communication.
    pub cc: usize,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![8, 32, 128, 512, 2048]
}

/// Lower-bound parameters (match E5).
pub const EPS: f64 = 0.05;
/// See [`EPS`].
pub const EPS_PRIME: f64 = 0.1;

/// Computes one `k` point (exact; no randomness).
pub fn run_point(&k: &usize) -> Row {
    let tree = sequential_and(k);
    let mu = FoolingDist::new(k, EPS_PRIME);
    // Transcript distribution under μ′: the support is k+1 inputs, each
    // deterministically reaching one leaf, so the sparse O(depth) walk
    // (`transcript_support_given_input`) replaces the dense all-leaves
    // evaluation that made this point cubic in k. On this deterministic
    // tree every walk returns a single (leaf, 1.0) pair, so the
    // accumulated leaf_probs are bit-identical to the dense path's.
    let mut leaf_probs = vec![0.0f64; tree.num_leaves()];
    let all_ones = vec![true; k];
    let add = |probs: &mut Vec<f64>, x: &[bool], w: f64, tree: &bci_blackboard::ProtocolTree| {
        for (leaf, p) in tree.transcript_support_given_input(x) {
            probs[leaf] += w * p;
        }
    };
    add(&mut leaf_probs, &all_ones, EPS_PRIME, &tree);
    let w = (1.0 - EPS_PRIME) / k as f64;
    for z in 0..k {
        let mut x = all_ones.clone();
        x[z] = false;
        add(&mut leaf_probs, &x, w, &tree);
    }
    let entropy = bci_info::entropy::entropy(&leaf_probs);
    let code = HuffmanCode::from_probs(&leaf_probs);
    Row {
        k,
        entropy,
        huffman: code.expected_len(&leaf_probs),
        interactive_lb: mu.speaker_threshold(EPS),
        cc: k,
    }
}

/// Runs the sweep (thin wrapper over [`run_point`]).
pub fn run(ks: &[usize]) -> Vec<Row> {
    ks.iter().map(run_point).collect()
}

/// Builds the E13 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "H(transcript)",
        "Huffman E[len]",
        "H+1",
        "interactive LB",
        "CC",
    ]);
    for r in rows {
        t.row([
            r.k.to_string(),
            f(r.entropy, 3),
            f(r.huffman, 3),
            f(r.entropy + 1.0, 3),
            f(r.interactive_lb, 1),
            r.cc.to_string(),
        ]);
    }
    t
}

/// Renders the E13 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E13 as a registry [`Experiment`].
pub struct E13;

impl Experiment for E13 {
    fn id(&self) -> &'static str {
        "e13"
    }

    fn title(&self) -> &'static str {
        "E13 — one-way vs interactive compression of AND_k transcripts"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(Huffman recoding reaches H+1; no protocol can go below Omega(k))".into()]
    }

    fn grid(&self) -> Vec<Point> {
        default_ks()
            .iter()
            .enumerate()
            .map(|(i, k)| Point::new(i, format!("k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_ks()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffman_sits_in_the_shannon_window() {
        for r in run(&[8, 128, 512]) {
            assert!(r.huffman >= r.entropy - 1e-9, "k={}", r.k);
            assert!(r.huffman < r.entropy + 1.0, "k={}", r.k);
        }
    }

    #[test]
    fn one_way_beats_interactive_bound_by_k_over_log_k() {
        for r in run(&[128, 2048]) {
            assert!(
                r.interactive_lb > 10.0 * r.huffman,
                "k={}: interactive {} vs one-way {}",
                r.k,
                r.interactive_lb,
                r.huffman
            );
        }
    }
}
