//! **E8 — Lemma 1 / Theorem 4**: direct sum by brute-force enumeration.
//!
//! Verifies, with no additivity assumption, that the information cost of the
//! n-fold coordinate-wise protocol equals `n ×` the single-copy cost — for
//! both the unconditional `IC` on product distributions (Theorem 4's
//! equality) and the conditional `CIC` under the n-fold hard distribution
//! (the equality case of Lemma 1). Everything is full joint enumeration
//! over `(D, X, Π)`, exact to float precision.

use bci_lowerbound::cic::cic_hard;
use bci_lowerbound::direct_sum::{nfold_cic_bruteforce, nfold_ic_bruteforce};
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::{noisy_sequential_and, sequential_and};
use bci_protocols::disj_trees::{and_cic_exact, disj_cic_exact};

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One verification row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human-readable protocol name.
    pub protocol: String,
    /// Which quantity: "IC (product μ)" or "CIC (hard μ)".
    pub quantity: &'static str,
    /// Copies `n`.
    pub n: usize,
    /// The brute-forced n-fold value.
    pub nfold: f64,
    /// `n ×` the exact single-copy value.
    pub n_times_single: f64,
}

impl Row {
    /// Relative additivity error.
    pub fn rel_error(&self) -> f64 {
        (self.nfold - self.n_times_single).abs() / self.n_times_single.max(1e-12)
    }
}

/// One independent verification case of the fixed E8 suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// Theorem 4 equality: `IC` of n-fold sequential `AND_k` on product μ.
    SeqIc {
        /// Players per copy.
        k: usize,
        /// Copies.
        n: usize,
    },
    /// Theorem 4 equality on the noisy `AND_2` (flip 0.15) witness.
    NoisyIc {
        /// Copies.
        n: usize,
    },
    /// Lemma 1 equality: `CIC` of n-fold sequential `AND_k` under hard μ.
    SeqCic {
        /// Players per copy.
        k: usize,
        /// Copies.
        n: usize,
    },
    /// The same equality on the full `DISJ_{n,k}` tree over set-valued
    /// inputs (general-alphabet machinery; an entirely separate code path
    /// from the joint enumeration).
    Disj {
        /// Coordinates (copies).
        n: usize,
        /// Players.
        k: usize,
    },
}

impl Case {
    /// Human-readable case description (also the sweep-point label).
    pub fn label(&self) -> String {
        match *self {
            Case::SeqIc { k, n } => format!("IC(product mu), sequential AND_{k}, n={n}"),
            Case::NoisyIc { n } => format!("IC(product mu), noisy AND_2, n={n}"),
            Case::SeqCic { k, n } => format!("CIC(hard mu), sequential AND_{k}, n={n}"),
            Case::Disj { n, k } => format!("CIC(hard mu^n), DISJ_{{n={n},k={k}}}"),
        }
    }
}

/// The verification cases, in table order.
pub fn default_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for n in [1usize, 2, 3, 4] {
        cases.push(Case::SeqIc { k: 3, n });
    }
    for n in [2usize, 3] {
        cases.push(Case::NoisyIc { n });
    }
    for n in [1usize, 2, 3] {
        cases.push(Case::SeqCic { k: 3, n });
    }
    for (n, k) in [(2usize, 3usize), (3, 3), (2, 4)] {
        cases.push(Case::Disj { n, k });
    }
    cases
}

/// Runs one verification case (deterministic; exact to float precision).
pub fn run_case(&case: &Case) -> Row {
    match case {
        Case::SeqIc { k, n } => {
            let tree = sequential_and(k);
            let priors = vec![1.0 - 1.0 / k as f64; k];
            Row {
                protocol: format!("sequential AND_{k}"),
                quantity: "IC (product mu)",
                n,
                nfold: nfold_ic_bruteforce(&tree, &priors, n),
                n_times_single: n as f64 * tree.information_cost_product(&priors),
            }
        }
        Case::NoisyIc { n } => {
            let noisy = noisy_sequential_and(2, 0.15);
            let priors = vec![0.75; 2];
            Row {
                protocol: "noisy AND_2 (eps=0.15)".to_owned(),
                quantity: "IC (product mu)",
                n,
                nfold: nfold_ic_bruteforce(&noisy, &priors, n),
                n_times_single: n as f64 * noisy.information_cost_product(&priors),
            }
        }
        Case::SeqCic { k, n } => {
            let tree = sequential_and(k);
            let mu = HardDist::new(k);
            Row {
                protocol: format!("sequential AND_{k}"),
                quantity: "CIC (hard mu)",
                n,
                nfold: nfold_cic_bruteforce(&tree, &mu, n),
                n_times_single: n as f64 * cic_hard(&tree, &mu),
            }
        }
        Case::Disj { n, k } => Row {
            protocol: format!("coordinate-wise DISJ_{{n={n},k={k}}}"),
            quantity: "CIC (hard mu^n)",
            n,
            nfold: disj_cic_exact(n, k),
            n_times_single: n as f64 * and_cic_exact(k),
        },
    }
}

/// Runs the full verification suite (thin wrapper over [`run_case`]).
pub fn run() -> Vec<Row> {
    default_cases().iter().map(run_case).collect()
}

/// Builds the E8 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "protocol",
        "quantity",
        "n",
        "n-fold (brute force)",
        "n x single",
        "rel. error",
    ]);
    for r in rows {
        t.row([
            r.protocol.clone(),
            r.quantity.to_owned(),
            r.n.to_string(),
            f(r.nfold, 8),
            f(r.n_times_single, 8),
            format!("{:.1e}", r.rel_error()),
        ]);
    }
    t
}

/// Renders the E8 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E8 as a registry [`Experiment`].
pub struct E8;

impl Experiment for E8 {
    fn id(&self) -> &'static str {
        "e8"
    }

    fn title(&self) -> &'static str {
        "E8 — Lemma 1 / Theorem 4: information is additive across copies"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(full joint enumeration; no additivity assumption)".into()]
    }

    fn grid(&self) -> Vec<Point> {
        default_cases()
            .iter()
            .enumerate()
            .map(|(i, case)| Point::new(i, case.label()))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_case(&default_cases()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additivity_holds_to_float_precision() {
        for r in run() {
            assert!(
                r.rel_error() < 1e-9,
                "{} {} n={}: {} vs {}",
                r.protocol,
                r.quantity,
                r.n,
                r.nfold,
                r.n_times_single
            );
        }
    }
}
