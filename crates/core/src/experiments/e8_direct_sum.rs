//! **E8 — Lemma 1 / Theorem 4**: direct sum by brute-force enumeration.
//!
//! Verifies, with no additivity assumption, that the information cost of the
//! n-fold coordinate-wise protocol equals `n ×` the single-copy cost — for
//! both the unconditional `IC` on product distributions (Theorem 4's
//! equality) and the conditional `CIC` under the n-fold hard distribution
//! (the equality case of Lemma 1). Everything is full joint enumeration
//! over `(D, X, Π)`, exact to float precision.

use bci_lowerbound::cic::cic_hard;
use bci_lowerbound::direct_sum::{nfold_cic_bruteforce, nfold_ic_bruteforce};
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::{noisy_sequential_and, sequential_and};

use crate::table::{f, Table};

/// One verification row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Human-readable protocol name.
    pub protocol: String,
    /// Which quantity: "IC (product μ)" or "CIC (hard μ)".
    pub quantity: &'static str,
    /// Copies `n`.
    pub n: usize,
    /// The brute-forced n-fold value.
    pub nfold: f64,
    /// `n ×` the exact single-copy value.
    pub n_times_single: f64,
}

impl Row {
    /// Relative additivity error.
    pub fn rel_error(&self) -> f64 {
        (self.nfold - self.n_times_single).abs() / self.n_times_single.max(1e-12)
    }
}

/// Runs the full verification suite (deterministic).
pub fn run() -> Vec<Row> {
    let mut rows = Vec::new();

    // Theorem 4 equality on product distributions.
    let k = 3;
    let tree = sequential_and(k);
    let priors = vec![1.0 - 1.0 / k as f64; k];
    let single = tree.information_cost_product(&priors);
    for n in [1usize, 2, 3, 4] {
        rows.push(Row {
            protocol: format!("sequential AND_{k}"),
            quantity: "IC (product mu)",
            n,
            nfold: nfold_ic_bruteforce(&tree, &priors, n),
            n_times_single: n as f64 * single,
        });
    }
    let noisy = noisy_sequential_and(2, 0.15);
    let priors2 = vec![0.75; 2];
    let single2 = noisy.information_cost_product(&priors2);
    for n in [2usize, 3] {
        rows.push(Row {
            protocol: "noisy AND_2 (eps=0.15)".to_owned(),
            quantity: "IC (product mu)",
            n,
            nfold: nfold_ic_bruteforce(&noisy, &priors2, n),
            n_times_single: n as f64 * single2,
        });
    }

    // Lemma 1 equality case under the hard distribution.
    let mu = HardDist::new(k);
    let single_cic = cic_hard(&tree, &mu);
    for n in [1usize, 2, 3] {
        rows.push(Row {
            protocol: format!("sequential AND_{k}"),
            quantity: "CIC (hard mu)",
            n,
            nfold: nfold_cic_bruteforce(&tree, &mu, n),
            n_times_single: n as f64 * single_cic,
        });
    }

    // The same equality on the *full* DISJ_{n,k} protocol tree over
    // set-valued inputs (general-alphabet machinery; an entirely separate
    // code path from the joint enumeration above).
    use bci_protocols::disj_trees::{and_cic_exact, disj_cic_exact};
    for (n, k) in [(2usize, 3usize), (3, 3), (2, 4)] {
        rows.push(Row {
            protocol: format!("coordinate-wise DISJ_{{n={n},k={k}}}"),
            quantity: "CIC (hard mu^n)",
            n,
            nfold: disj_cic_exact(n, k),
            n_times_single: n as f64 * and_cic_exact(k),
        });
    }
    rows
}

/// Builds the E8 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "protocol",
        "quantity",
        "n",
        "n-fold (brute force)",
        "n x single",
        "rel. error",
    ]);
    for r in rows {
        t.row([
            r.protocol.clone(),
            r.quantity.to_owned(),
            r.n.to_string(),
            f(r.nfold, 8),
            f(r.n_times_single, 8),
            format!("{:.1e}", r.rel_error()),
        ]);
    }
    t
}

/// Renders the E8 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additivity_holds_to_float_precision() {
        for r in run() {
            assert!(
                r.rel_error() < 1e-9,
                "{} {} n={}: {} vs {}",
                r.protocol,
                r.quantity,
                r.n,
                r.nfold,
                r.n_times_single
            );
        }
    }
}
