//! **E1 — Theorem 2**: set disjointness upper bound `O(n log k + k)`.
//!
//! Sweeps `(n, k)` on the hardest disjoint instances (every coordinate has
//! exactly one zero holder, so all `n` coordinates must be published) and
//! measures the naive and batched protocols' exact communication. The claim
//! to reproduce: the batched protocol pays `≈ log₂(e·k)` bits per coordinate
//! against the naive `≈ log₂ n + 1`, so it wins by a factor approaching
//! `log n / log k`, and both have an additive `Θ(k)` term.

use bci_protocols::disj::{batched, naive};
use bci_protocols::workload;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE1;

/// One `(n, k)` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size.
    pub n: usize,
    /// Number of players.
    pub k: usize,
    /// Exact bits of the naive protocol.
    pub naive_bits: usize,
    /// Exact bits of the batched (Theorem 2) protocol.
    pub batched_bits: usize,
    /// Batched cycles executed.
    pub cycles: usize,
    /// naive / batched.
    pub ratio: f64,
    /// Batched bits per coordinate published.
    pub batched_per_coord: f64,
    /// The Theorem 2 accounting bound `log₂(e·k)` per coordinate.
    pub per_coord_bound: f64,
    /// Naive bits per coordinate (`≈ log₂ n + 1`).
    pub naive_per_coord: f64,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, usize)> {
    let mut grid = Vec::new();
    for &n in &[256usize, 1024, 4096, 16384] {
        for &k in &[4usize, 16, 64, 256] {
            grid.push((n, k));
        }
    }
    grid
}

/// Runs one `(n, k)` point under its own RNG. Instances are
/// `planted_zero_cover(·, ·, 0.0)` — disjoint with exactly one zero per
/// coordinate. Uses the real bit-producing protocol up to `n ≤ 4096` and
/// the (bit-identical, validated) cost model beyond.
pub fn run_point(&(n, k): &(usize, usize), seed: u64) -> Row {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let inputs = workload::planted_zero_cover(n, k, 0.0, &mut rng);
    let b = if n <= 4096 {
        batched::run(&inputs)
    } else {
        batched::cost(&inputs)
    };
    let nv = naive::run(&inputs);
    assert!(b.output && nv.output, "instances are disjoint");
    Row {
        n,
        k,
        naive_bits: nv.bits,
        batched_bits: b.bits,
        cycles: b.cycles,
        ratio: nv.bits as f64 / b.bits as f64,
        batched_per_coord: b.bits as f64 / n as f64,
        per_coord_bound: batched::per_coordinate_bound(k),
        naive_per_coord: nv.bits as f64 / n as f64,
    }
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)`, so rows
/// are independent of grid order (thin wrapper over [`run_point`]).
pub fn run(grid: &[(usize, usize)], seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, point_seed(seed, i)))
        .collect()
}

/// Builds the E1 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n",
        "k",
        "naive bits",
        "batched bits",
        "cycles",
        "naive/batched",
        "batched b/coord",
        "log2(ek)",
        "naive b/coord",
    ]);
    for r in rows {
        t.row([
            r.n.to_string(),
            r.k.to_string(),
            r.naive_bits.to_string(),
            r.batched_bits.to_string(),
            r.cycles.to_string(),
            f(r.ratio, 2),
            f(r.batched_per_coord, 2),
            f(r.per_coord_bound, 2),
            f(r.naive_per_coord, 2),
        ]);
    }
    t
}

/// Renders the E1 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E1 as a registry [`Experiment`].
pub struct E1;

impl Experiment for E1 {
    fn id(&self) -> &'static str {
        "e1"
    }

    fn title(&self) -> &'static str {
        "E1 — Theorem 2: set disjointness communication, naive vs batched"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(hard disjoint instances: one zero holder per coordinate)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(n, k))| Point::new(i, format!("n={n}, k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_reproduces_the_shape() {
        let rows = run(&[(1024, 4), (1024, 64), (4096, 4)], 7);
        // Batched wins when log k ≪ log n.
        let r = &rows[0]; // n=1024, k=4
        assert!(r.ratio > 1.5, "n=1024,k=4: ratio {}", r.ratio);
        // Per-coordinate cost in the batched protocol tracks log₂(ek),
        // remaining below naive's log₂ n + 1.
        assert!(r.batched_per_coord < r.naive_per_coord);
        // With k close to √n the advantage shrinks (k=64, k²=4096 > 1024:
        // straight to the naive tail cycle, per-coordinate ≈ log₂ z ≈ log n).
        let r2 = &rows[1];
        assert!(r2.ratio < r.ratio);
        // Growing n at fixed k grows the advantage.
        let r3 = &rows[2];
        assert!(r3.ratio > r.ratio);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run(&[(256, 4)], 1);
        let s = render(&rows);
        assert!(s.contains("256"));
        assert!(s.contains("naive/batched"));
    }
}
