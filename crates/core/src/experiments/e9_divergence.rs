//! **E9 — Equations (3)–(4)**: the pointing divergence bound.
//!
//! For a posterior that assigns probability `p` to `Xᵢ = 0` against the
//! prior `Pr[Xᵢ = 0] = 1/k`, the paper lower-bounds the KL divergence by
//! `p·log₂ k − H(p) ≥ p·log₂ k − 1`. This experiment computes the exact
//! divergence across `(k, p)` and checks the bound chain, including the
//! `k ≥ 2^{2/p}` regime where the final form `(p/2)·log₂ k` kicks in.

use bci_info::dist::Dist;
use bci_info::divergence::{kl, pointing_divergence_bound};

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `(k, p)` grid point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Prior parameter: `Pr[Xᵢ = 0] = 1/k`.
    pub k: usize,
    /// Posterior probability of zero.
    pub p: f64,
    /// Exact `D(posterior ‖ prior)`.
    pub exact: f64,
    /// The middle bound `p·log₂ k − H(p)`.
    pub bound_mid: f64,
    /// The final bound `p·log₂ k − 1`.
    pub bound_final: f64,
    /// The Eq. (8) form `(p/2)·log₂ k`, valid when `k ≥ 2^{2/p}`.
    pub bound_eq8: Option<f64>,
}

/// The grid used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, f64)> {
    let mut g = Vec::new();
    for &k in &[16usize, 256, 4096, 65536] {
        for &p in &[0.1, 0.25, 0.5, 0.75, 0.95] {
            g.push((k, p));
        }
    }
    g
}

/// Computes one `(k, p)` point (exact; no randomness).
///
/// # Panics
///
/// If `k < 1` or `p` is outside `[0, 1]` — the point must describe a real
/// posterior probability.
pub fn run_point(&(k, p): &(usize, f64)) -> Row {
    assert!(k >= 1, "k = {k} must be at least 1");
    assert!((0.0..=1.0).contains(&p), "p = {p} must be a probability");
    // Infallible after the asserts: both arguments are now in [0, 1].
    let prior = Dist::bernoulli(1.0 - 1.0 / k as f64).expect("valid prior");
    let posterior = Dist::bernoulli(1.0 - p).expect("valid posterior");
    let eq8_valid = (k as f64) >= 2f64.powf(2.0 / p);
    Row {
        k,
        p,
        exact: kl(&posterior, &prior),
        bound_mid: pointing_divergence_bound(p, k),
        bound_final: p * (k as f64).log2() - 1.0,
        bound_eq8: eq8_valid.then(|| 0.5 * p * (k as f64).log2()),
    }
}

/// Runs the grid (thin wrapper over [`run_point`]).
pub fn run(grid: &[(usize, f64)]) -> Vec<Row> {
    grid.iter().map(run_point).collect()
}

/// Builds the E9 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "p",
        "exact D",
        "p*log k - H(p)",
        "p*log k - 1",
        "(p/2)*log k",
    ]);
    for r in rows {
        t.row([
            r.k.to_string(),
            f(r.p, 2),
            f(r.exact, 3),
            f(r.bound_mid, 3),
            f(r.bound_final, 3),
            r.bound_eq8.map_or("n/a".to_owned(), |b| f(b, 3)),
        ]);
    }
    t
}

/// Renders the E9 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E9 as a registry [`Experiment`].
pub struct E9;

impl Experiment for E9 {
    fn id(&self) -> &'static str {
        "e9"
    }

    fn title(&self) -> &'static str {
        "E9 — Eq. (3)-(4): exact KL vs p*log k - H(p) vs p*log k - 1"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(posterior Bern with Pr[0]=p against the 1/k prior)".into()]
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(k, p))| Point::new(i, format!("k={k}, p={p}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_chain_holds_everywhere() {
        for r in run(&default_grid()) {
            assert!(
                r.exact >= r.bound_mid - 1e-9,
                "k={} p={}: exact {} < mid {}",
                r.k,
                r.p,
                r.exact,
                r.bound_mid
            );
            assert!(r.bound_mid >= r.bound_final - 1e-9);
            if let Some(eq8) = r.bound_eq8 {
                assert!(
                    r.exact >= eq8 - 1e-9,
                    "k={} p={}: exact {} < eq8 {}",
                    r.k,
                    r.p,
                    r.exact,
                    eq8
                );
            }
        }
    }

    #[test]
    fn eq8_regime_is_gated_on_k() {
        // p = 0.1 needs k ≥ 2^20; only k = 65536 misses it... 2^20 > 65536,
        // so no row qualifies at p = 0.1.
        let rows = run(&[(65536, 0.1), (65536, 0.5)]);
        assert!(rows[0].bound_eq8.is_none());
        assert!(rows[1].bound_eq8.is_some());
    }
}
