//! **E12 (extension) — Håstad–Wigderson sparse disjointness**.
//!
//! The introduction's example of a vanishing log factor: two players with
//! `|X| = |Y| = s` decide disjointness in `O(s)` bits, not `O(s log n)`.
//! This experiment sweeps `s` at fixed `n` (cost should grow linearly in
//! `s`) and sweeps `n` at fixed `s` (cost should not move), against the
//! naive send-the-set baseline.

use bci_encoding::bitset::BitSet;
use bci_protocols::sparse::{naive_bits, run as hw_run};
use bci_telemetry::Json;
use rand::{Rng, SeedableRng};

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// Canonical trials per point (`EXPERIMENTS.md` parameters).
pub const TRIALS: u64 = 40;
/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE12;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size.
    pub n: usize,
    /// Set size `s`.
    pub s: usize,
    /// Mean Håstad–Wigderson bits over the trials.
    pub hw_bits: f64,
    /// Mean bits per element (`≈ constant`).
    pub per_element: f64,
    /// The naive baseline `s·⌈log₂ n⌉`.
    pub naive: f64,
    /// Fraction of runs ending in the explicit fallback.
    pub fallback_rate: f64,
}

fn disjoint_pair<R: Rng + ?Sized>(n: usize, s: usize, rng: &mut R) -> (BitSet, BitSet) {
    let mut x = BitSet::new(n);
    let mut y = BitSet::new(n);
    while x.len() < s {
        x.insert(rng.random_range(0..n));
    }
    while y.len() < s {
        let e = rng.random_range(0..n);
        if !x.contains(e) {
            y.insert(e);
        }
    }
    (x, y)
}

/// Runs one `(n, s)` point under its own RNG, on disjoint pairs (the
/// expensive case — intersecting pairs terminate early).
pub fn run_point(&(n, s): &(usize, usize), trials: u64, seed: u64) -> Row {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut bits = 0.0;
    let mut fallbacks = 0u64;
    for _ in 0..trials {
        let (x, y) = disjoint_pair(n, s, &mut rng);
        let out = hw_run(&x, &y, &mut rng);
        assert!(out.output, "disjoint instances");
        bits += out.bits;
        fallbacks += u64::from(out.fallback);
    }
    let hw = bits / trials as f64;
    Row {
        n,
        s,
        hw_bits: hw,
        per_element: hw / s as f64,
        naive: naive_bits(n, s),
        fallback_rate: fallbacks as f64 / trials as f64,
    }
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(grid: &[(usize, usize)], trials: u64, seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, trials, point_seed(seed, i)))
        .collect()
}

/// The grid used in `EXPERIMENTS.md`: an `s`-sweep at `n = 2²⁰` and an
/// `n`-sweep at `s = 128`.
pub fn default_grid() -> Vec<(usize, usize)> {
    let mut g: Vec<(usize, usize)> = [32usize, 64, 128, 256, 512]
        .iter()
        .map(|&s| (1usize << 20, s))
        .collect();
    g.extend([(1usize << 12, 128), (1 << 16, 128), (1 << 24, 128)]);
    g
}

/// Builds the E12 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n",
        "s",
        "HW bits",
        "bits/element",
        "naive s*log2(n)",
        "fallback rate",
    ]);
    for r in rows {
        t.row([
            r.n.to_string(),
            r.s.to_string(),
            f(r.hw_bits, 1),
            f(r.per_element, 2),
            f(r.naive, 0),
            f(r.fallback_rate, 3),
        ]);
    }
    t
}

/// Renders the E12 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E12 as a registry [`Experiment`].
pub struct E12;

impl Experiment for E12 {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "E12 — Hastad-Wigderson O(s) sparse set disjointness (2 players)"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!("(disjoint pairs; {TRIALS} trials per point)")]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("trials", Json::UInt(TRIALS)), ("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(n, s))| Point::new(i, format!("n=2^{}, s={s}", n.ilog2())))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], TRIALS, seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_s_flat_in_n() {
        let rows = run(&[(1 << 16, 64), (1 << 16, 256), (1 << 12, 64)], 15, 3);
        // s quadrupled: cost within [2.5x, 6x].
        let growth = rows[1].hw_bits / rows[0].hw_bits;
        assert!((2.5..6.0).contains(&growth), "growth {growth}");
        // n shrank 16x at fixed s: cost within 25%.
        let drift = (rows[2].hw_bits - rows[0].hw_bits).abs() / rows[0].hw_bits;
        assert!(drift < 0.25, "drift {drift}");
        // Beats naive at these sizes.
        assert!(rows[1].hw_bits < rows[1].naive);
    }
}
