//! **E12 (extension) — Håstad–Wigderson sparse disjointness**.
//!
//! The introduction's example of a vanishing log factor: two players with
//! `|X| = |Y| = s` decide disjointness in `O(s)` bits, not `O(s log n)`.
//! This experiment sweeps `s` at fixed `n` (cost should grow linearly in
//! `s`) and sweeps `n` at fixed `s` (cost should not move), against the
//! naive send-the-set baseline.
//!
//! Two performance properties of this module matter to the whole suite:
//!
//! * every trial runs on the **sparse** protocol lane
//!   ([`bci_protocols::sparse::run_sparse`]): each pruning round costs
//!   `O(s)` instead of `O(n)`, which is what makes the `n = 2²⁴` point
//!   cheap;
//! * trial `t` of a point computes under `derive_trial_seed(point_seed, t)`
//!   **alone**, so the registry's [`TrialSplit`] hook can scatter one
//!   point's trials across pool workers and merge them back
//!   byte-identically (the merge concatenates per-trial outcomes in trial
//!   order before folding with [`fold_trials`], so no floating-point sum
//!   depends on the chunking).

use bci_blackboard::runner::derive_trial_seed;
use bci_encoding::bitset::SparseBitSet;
use bci_protocols::sparse::{naive_bits, run_sparse};
use bci_telemetry::Json;
use rand::{Rng, SeedableRng};
use std::ops::Range;

use super::registry::{Experiment, LabeledTable, Point, PointResult, TrialSplit};
use crate::table::{f, Table};

/// Canonical trials per point (`EXPERIMENTS.md` parameters).
pub const TRIALS: u64 = 40;
/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE12;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size.
    pub n: usize,
    /// Set size `s`.
    pub s: usize,
    /// Mean Håstad–Wigderson bits over the trials.
    pub hw_bits: f64,
    /// Mean bits per element (`≈ constant`).
    pub per_element: f64,
    /// The naive baseline `s·⌈log₂ n⌉`.
    pub naive: f64,
    /// Fraction of runs ending in the explicit fallback.
    pub fallback_rate: f64,
}

/// The outcome of one trial — kept individually (not pre-summed) so that
/// partial results merge into exactly the same `f64` fold regardless of
/// how trials were chunked across workers.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// Communication of this run.
    pub bits: f64,
    /// Whether the explicit fallback fired.
    pub fallback: bool,
}

/// Per-trial outcomes for a contiguous trial range: the mergeable partial
/// behind the registry's [`TrialSplit`] hook.
pub type Partial = Vec<Trial>;

/// Two random disjoint `s`-subsets of `[n]`, sparse-represented.
///
/// # Panics
///
/// Panics if `2·s > n`: two disjoint `s`-subsets cannot fit in `[n]`, and
/// the rejection loop below would never terminate.
fn disjoint_pair<R: Rng + ?Sized>(n: usize, s: usize, rng: &mut R) -> (SparseBitSet, SparseBitSet) {
    assert!(
        2 * s <= n,
        "disjoint_pair needs 2*s <= n (got s = {s}, n = {n}): \
         two disjoint s-subsets cannot fit in the universe"
    );
    let mut x = SparseBitSet::new(n);
    let mut y = SparseBitSet::new(n);
    while x.len() < s {
        x.insert(rng.random_range(0..n));
    }
    while y.len() < s {
        let e = rng.random_range(0..n);
        if !x.contains(e) {
            y.insert(e);
        }
    }
    (x, y)
}

/// Runs one trial under its own seed, on a disjoint pair (the expensive
/// case — intersecting pairs terminate early).
fn run_trial(n: usize, s: usize, trial_seed: u64) -> Trial {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(trial_seed);
    let (x, y) = disjoint_pair(n, s, &mut rng);
    let out = run_sparse(&x, &y, &mut rng);
    assert!(out.output, "disjoint instances");
    Trial {
        bits: out.bits,
        fallback: out.fallback,
    }
}

/// Runs trials `range` of one `(n, s)` point; trial `t` computes under
/// `derive_trial_seed(seed, t)`, so any partition of `0..trials` covers
/// the same work.
pub fn run_trial_range(&(n, s): &(usize, usize), seed: u64, range: Range<u64>) -> Partial {
    range
        .map(|t| run_trial(n, s, derive_trial_seed(seed, t)))
        .collect()
}

/// Folds per-trial outcomes (all trials of the point, in trial order)
/// into the point's row.
pub fn fold_trials(&(n, s): &(usize, usize), trials: &[Trial]) -> Row {
    let bits: f64 = trials.iter().map(|t| t.bits).sum();
    let fallbacks = trials.iter().filter(|t| t.fallback).count();
    let hw = bits / trials.len() as f64;
    Row {
        n,
        s,
        hw_bits: hw,
        per_element: hw / s as f64,
        naive: naive_bits(n, s),
        fallback_rate: fallbacks as f64 / trials.len() as f64,
    }
}

/// Runs one `(n, s)` point: `trials` independent trials under per-trial
/// derived seeds, folded into the row.
pub fn run_point(p: &(usize, usize), trials: u64, seed: u64) -> Row {
    fold_trials(p, &run_trial_range(p, seed, 0..trials))
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(grid: &[(usize, usize)], trials: u64, seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, trials, super::registry::point_seed(seed, i)))
        .collect()
}

/// The grid used in `EXPERIMENTS.md`: an `s`-sweep at `n = 2²⁰` and an
/// `n`-sweep at `s = 128`.
pub fn default_grid() -> Vec<(usize, usize)> {
    let mut g: Vec<(usize, usize)> = [32usize, 64, 128, 256, 512]
        .iter()
        .map(|&s| (1usize << 20, s))
        .collect();
    g.extend([(1usize << 12, 128), (1 << 16, 128), (1 << 24, 128)]);
    g
}

/// Builds the E12 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n",
        "s",
        "HW bits",
        "bits/element",
        "naive s*log2(n)",
        "fallback rate",
    ]);
    for r in rows {
        t.row([
            r.n.to_string(),
            r.s.to_string(),
            f(r.hw_bits, 1),
            f(r.per_element, 2),
            f(r.naive, 0),
            f(r.fallback_rate, 3),
        ]);
    }
    t
}

/// Renders the E12 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E12 as a registry [`Experiment`].
pub struct E12;

impl Experiment for E12 {
    fn id(&self) -> &'static str {
        "e12"
    }

    fn title(&self) -> &'static str {
        "E12 — Hastad-Wigderson O(s) sparse set disjointness (2 players)"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!(
            "(disjoint pairs; {TRIALS} trials per point, one derived seed per trial)"
        )]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("trials", Json::UInt(TRIALS)), ("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(n, s))| Point::new(i, format!("n=2^{}, s={s}", n.ilog2())))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], TRIALS, seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }

    fn splitter(&self) -> Option<&dyn TrialSplit> {
        Some(self)
    }
}

impl TrialSplit for E12 {
    fn trials(&self, _point: &Point) -> u64 {
        TRIALS
    }

    fn run_range(&self, point: &Point, point_seed: u64, range: Range<u64>) -> PointResult {
        PointResult::new(run_trial_range(
            &default_grid()[point.index()],
            point_seed,
            range,
        ))
    }

    fn merge(&self, point: &Point, parts: Vec<PointResult>) -> PointResult {
        let trials: Vec<Trial> = parts
            .iter()
            .flat_map(|p| p.downcast::<Partial>().iter().copied())
            .collect();
        PointResult::new(fold_trials(&default_grid()[point.index()], &trials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::registry::point_seed;

    #[test]
    fn linear_in_s_flat_in_n() {
        let rows = run(&[(1 << 16, 64), (1 << 16, 256), (1 << 12, 64)], 15, 3);
        // s quadrupled: cost within [2.5x, 6x].
        let growth = rows[1].hw_bits / rows[0].hw_bits;
        assert!((2.5..6.0).contains(&growth), "growth {growth}");
        // n shrank 16x at fixed s: cost within 25%.
        let drift = (rows[2].hw_bits - rows[0].hw_bits).abs() / rows[0].hw_bits;
        assert!(drift < 0.25, "drift {drift}");
        // Beats naive at these sizes.
        assert!(rows[1].hw_bits < rows[1].naive);
    }

    #[test]
    fn split_trials_merge_back_to_the_whole_point() {
        // Any partition of the trial range must reproduce run_point exactly
        // (bit-for-bit): per-trial outcomes are concatenated before the
        // fold, so the f64 sums are identical.
        let exp = E12;
        let point = &exp.grid()[1];
        let seed = point_seed(SEED, 1);
        let whole = exp.run_point(point, seed);
        for chunk in [1u64, 7, 8, 40] {
            let mut parts = Vec::new();
            let mut lo = 0;
            while lo < TRIALS {
                let hi = (lo + chunk).min(TRIALS);
                parts.push(exp.run_range(point, seed, lo..hi));
                lo = hi;
            }
            let merged = exp.merge(point, parts);
            let (w, m) = (whole.downcast::<Row>(), merged.downcast::<Row>());
            assert!(w.hw_bits == m.hw_bits, "chunk {chunk}");
            assert!(w.fallback_rate == m.fallback_rate, "chunk {chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "2*s <= n")]
    fn disjoint_pair_rejects_overfull_universe() {
        // 2s > n would make the rejection loop spin forever; it must panic
        // with a clear message instead.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let _ = disjoint_pair(100, 51, &mut rng);
    }
}
