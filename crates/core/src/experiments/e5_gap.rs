//! **E5 — Section 6**: the `Ω(k / log k)` information-vs-communication gap.
//!
//! For each `k`, computes the exact external information cost of `AND_k`'s
//! sequential witness under `μ′` (an upper bound on `inf_Π IC`, logarithmic)
//! and the Lemma 6 communication lower bound (linear). Their ratio is the
//! measured gap; the reference curve is `k / log₂ k`.

use bci_compression::gap::{and_gap, GapReport};

use crate::table::{f, Table};

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// The two sides and their parameters.
    pub report: GapReport,
    /// The `k / log₂ k` reference value.
    pub reference: f64,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![16, 64, 256, 1024, 4096, 16384, 65536]
}

/// Lower-bound parameters used throughout: `ε = 0.05`, `ε′ = 0.1`.
pub const EPS: f64 = 0.05;
/// See [`EPS`].
pub const EPS_PRIME: f64 = 0.1;

/// Runs the sweep (exact; no randomness).
pub fn run(ks: &[usize]) -> Vec<Row> {
    ks.iter()
        .map(|&k| Row {
            report: and_gap(k, EPS, EPS_PRIME),
            reference: k as f64 / (k as f64).log2(),
        })
        .collect()
}

/// Builds the E5 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "IC (bits)",
        "CC lower bound",
        "gap = CC/IC",
        "k/log2 k",
        "gap/(k/log k)",
    ]);
    for r in rows {
        t.row([
            r.report.k.to_string(),
            f(r.report.ic_bits, 3),
            f(r.report.cc_lower_bound, 1),
            f(r.report.ratio(), 2),
            f(r.reference, 2),
            f(r.report.ratio() / r.reference, 3),
        ]);
    }
    t
}

/// Renders the E5 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_tracks_k_over_log_k_with_flat_constant() {
        let rows = run(&[64, 1024, 16384]);
        let constants: Vec<f64> = rows
            .iter()
            .map(|r| r.report.ratio() / r.reference)
            .collect();
        for w in constants.windows(2) {
            assert!(
                w[1] / w[0] < 1.5 && w[0] / w[1] < 1.5,
                "constants {constants:?} drift"
            );
        }
    }

    #[test]
    fn information_stays_logarithmic_communication_linear() {
        let rows = run(&[256, 65536]);
        let (a, b) = (&rows[0], &rows[1]);
        // k grew 256×; IC grew by ≈ log(256) = 8 additive bits.
        assert!(b.report.ic_bits - a.report.ic_bits < 9.0);
        // CC bound grew by the same 256× factor.
        assert!((b.report.cc_lower_bound / a.report.cc_lower_bound - 256.0).abs() < 1.0);
    }
}
