//! **E5 — Section 6**: the `Ω(k / log k)` information-vs-communication gap.
//!
//! For each `k`, computes the exact external information cost of `AND_k`'s
//! sequential witness under `μ′` (an upper bound on `inf_Π IC`, logarithmic)
//! and the Lemma 6 communication lower bound (linear). Their ratio is the
//! measured gap; the reference curve is `k / log₂ k`.

use bci_compression::gap::{and_gap, GapReport};

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// The two sides and their parameters.
    pub report: GapReport,
    /// The `k / log₂ k` reference value.
    pub reference: f64,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![16, 64, 256, 1024, 4096, 16384, 65536]
}

/// Lower-bound parameters used throughout: `ε = 0.05`, `ε′ = 0.1`.
pub const EPS: f64 = 0.05;
/// See [`EPS`].
pub const EPS_PRIME: f64 = 0.1;

/// Computes one `k` point (exact; no randomness).
pub fn run_point(&k: &usize) -> Row {
    Row {
        report: and_gap(k, EPS, EPS_PRIME),
        reference: k as f64 / (k as f64).log2(),
    }
}

/// Runs the sweep (thin wrapper over [`run_point`]).
pub fn run(ks: &[usize]) -> Vec<Row> {
    ks.iter().map(run_point).collect()
}

/// Builds the E5 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "IC (bits)",
        "CC lower bound",
        "gap = CC/IC",
        "k/log2 k",
        "gap/(k/log k)",
    ]);
    for r in rows {
        t.row([
            r.report.k.to_string(),
            f(r.report.ic_bits, 3),
            f(r.report.cc_lower_bound, 1),
            f(r.report.ratio(), 2),
            f(r.reference, 2),
            f(r.report.ratio() / r.reference, 3),
        ]);
    }
    t
}

/// Renders the E5 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E5 as a registry [`Experiment`].
pub struct E5;

impl Experiment for E5 {
    fn id(&self) -> &'static str {
        "e5"
    }

    fn title(&self) -> &'static str {
        "E5 — Section 6: information vs communication for AND_k"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!(
            "(eps = {EPS}, eps' = {EPS_PRIME}; gap should track k/log2 k)"
        )]
    }

    fn grid(&self) -> Vec<Point> {
        default_ks()
            .iter()
            .enumerate()
            .map(|(i, k)| Point::new(i, format!("k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_ks()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_tracks_k_over_log_k_with_flat_constant() {
        let rows = run(&[64, 1024, 16384]);
        let constants: Vec<f64> = rows
            .iter()
            .map(|r| r.report.ratio() / r.reference)
            .collect();
        for w in constants.windows(2) {
            assert!(
                w[1] / w[0] < 1.5 && w[0] / w[1] < 1.5,
                "constants {constants:?} drift"
            );
        }
    }

    #[test]
    fn information_stays_logarithmic_communication_linear() {
        let rows = run(&[256, 65536]);
        let (a, b) = (&rows[0], &rows[1]);
        // k grew 256×; IC grew by ≈ log(256) = 8 additive bits.
        assert!(b.report.ic_bits - a.report.ic_bits < 9.0);
        // CC bound grew by the same 256× factor.
        assert!((b.report.cc_lower_bound / a.report.cc_lower_bound - 256.0).abs() < 1.0);
    }
}
