//! **E19 (extension) — broadcast vs. message-passing `DISJ` cost**.
//!
//! The separation the paper leads with, made executable: in the
//! message-passing world (BEOPV's coordinator model, or any
//! point-to-point wiring) `DISJ_{n,k}` costs `Θ(nk)` bits, while the
//! blackboard's Theorem 2 protocol pays `O(n log k + k)`. This
//! experiment sweeps `(n, k)` on disjoint instances and runs all three
//! models side by side:
//!
//! * **blackboard** — the Theorem 2 batched protocol ([`batched::run`]),
//!   averaged over random disjoint instances (its cost is
//!   input-dependent);
//! * **star** — [`StarDisj`] through the routed engine: exactly
//!   `n(k−1) + (k−1)` bits, all of them through the hub;
//! * **p2p** — [`P2pDisj`] (a ring): the same total, but the heaviest
//!   player carries only `Θ(n)` bits.
//!
//! The star and ring lanes are engine-verified on trial 0 of every
//! point (outputs checked against [`disj_function`], accounting against
//! the closed forms); the remaining trials feed the broadcast average.
//! The headline column is `msg-pass / broadcast` — growing with `k` at
//! fixed `n`, the `Θ(nk)` vs `Θ(n log k + k)` gap.

use std::ops::Range;

use bci_blackboard::runner::derive_trial_seed;
use bci_protocols::disj::{batched, disj_function};
use bci_protocols::msgpass::{P2pDisj, StarDisj};
use bci_protocols::workload;
use bci_telemetry::Json;
use bci_topology::run_routed;
use rand::SeedableRng;

use super::registry::{Experiment, LabeledTable, Point, PointResult, TrialSplit};
use crate::table::{f, Table};

/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE19;

/// Monte-Carlo trials per point (the broadcast lane averages over them).
pub const TRIALS: u64 = 16;

/// One `(n, k)` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size.
    pub n: usize,
    /// Players.
    pub k: usize,
    /// Mean Theorem 2 (blackboard) bits over the trials.
    pub broadcast_bits: f64,
    /// Coordinator-star bits: `n(k−1) + (k−1)`, every execution.
    pub star_bits: usize,
    /// Point-to-point ring bits: same total as the star.
    pub p2p_bits: usize,
    /// `star_bits / broadcast_bits` — the `Θ(nk)` vs `Θ(n log k + k)` gap.
    pub ratio: f64,
    /// The star hub's directed load (bits through the coordinator).
    pub hub_bits: usize,
    /// The heaviest ring player's directed load.
    pub p2p_max_player_bits: usize,
}

/// Per-trial outcome: the broadcast cost, plus (trial 0 only) the
/// engine-verified message-passing accounting.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// Theorem 2 bits on this instance.
    pub broadcast_bits: usize,
    /// Engine-measured `(star_total, star_hub, p2p_total, p2p_max_player)`,
    /// present on trial 0.
    pub verified: Option<(usize, usize, usize, usize)>,
}

/// Partial result of a trial range, in trial order.
pub type Partial = Vec<Trial>;

/// The grid used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, usize)> {
    let mut g = Vec::new();
    for &n in &[256usize, 1024, 4096] {
        for &k in &[4usize, 16, 64] {
            g.push((n, k));
        }
    }
    g
}

/// Runs one trial: a fresh disjoint instance, the Theorem 2 protocol on
/// it, and — on trial 0 — the star and ring protocols through the routed
/// engine, outputs and accounting checked.
pub fn run_trial(n: usize, k: usize, t: u64, trial_seed: u64) -> Trial {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(trial_seed);
    let inputs = workload::planted_zero_cover(n, k, 0.0, &mut rng);
    debug_assert!(disj_function(&inputs));
    let bt = batched::run(&inputs);
    assert!(bt.output, "planted instances are disjoint");
    let verified = (t == 0).then(|| {
        let star = run_routed(&StarDisj::new(n, k), &inputs, &rng);
        let ring = run_routed(&P2pDisj::new(n, k), &inputs, &rng);
        assert!(star.output && ring.output, "message-passing lanes agree");
        assert_eq!(star.stats.total_bits, StarDisj::worst_case_bits(n, k));
        assert_eq!(ring.stats.total_bits, P2pDisj::worst_case_bits(n, k));
        (
            star.stats.total_bits,
            star.stats.max_player_bits,
            ring.stats.total_bits,
            ring.stats.max_player_bits,
        )
    });
    Trial {
        broadcast_bits: bt.bits,
        verified,
    }
}

/// Runs trials `range` of one `(n, k)` point; trial `t` computes under
/// `derive_trial_seed(seed, t)` alone.
pub fn run_trial_range(&(n, k): &(usize, usize), seed: u64, range: Range<u64>) -> Partial {
    range
        .map(|t| run_trial(n, k, t, derive_trial_seed(seed, t)))
        .collect()
}

/// Folds per-trial outcomes (all trials of the point, in trial order)
/// into the point's row.
pub fn fold_trials(&(n, k): &(usize, usize), trials: &[Trial]) -> Row {
    let mean = trials.iter().map(|t| t.broadcast_bits).sum::<usize>() as f64 / trials.len() as f64;
    let (star_bits, hub_bits, p2p_bits, p2p_max) = trials
        .iter()
        .find_map(|t| t.verified)
        .expect("trial 0 carries the engine-verified lanes");
    Row {
        n,
        k,
        broadcast_bits: mean,
        star_bits,
        p2p_bits,
        ratio: star_bits as f64 / mean,
        hub_bits,
        p2p_max_player_bits: p2p_max,
    }
}

/// Runs one `(n, k)` point (all trials, folded).
pub fn run_point(p: &(usize, usize), seed: u64) -> Row {
    fold_trials(p, &run_trial_range(p, seed, 0..TRIALS))
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)`.
pub fn run(grid: &[(usize, usize)], seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, super::registry::point_seed(seed, i)))
        .collect()
}

/// Which model columns a table should carry.
fn wants(only: Option<&str>, model: &str) -> bool {
    only.is_none_or(|m| m == model)
}

/// Builds the E19 table, optionally restricted to one model's columns.
pub fn table_restricted(rows: &[Row], only: Option<&str>) -> Table {
    let mut header: Vec<&str> = vec!["n", "k"];
    if wants(only, "blackboard") {
        header.push("bb bits (mean)");
    }
    if wants(only, "star") {
        header.extend(["star bits", "hub bits"]);
    }
    if wants(only, "p2p") {
        header.extend(["p2p bits", "p2p max/player"]);
    }
    if only.is_none() {
        header.push("msg-pass/bb");
    }
    let mut t = Table::new(header);
    for r in rows {
        let mut row = vec![r.n.to_string(), r.k.to_string()];
        if wants(only, "blackboard") {
            row.push(f(r.broadcast_bits, 1));
        }
        if wants(only, "star") {
            row.extend([r.star_bits.to_string(), r.hub_bits.to_string()]);
        }
        if wants(only, "p2p") {
            row.extend([r.p2p_bits.to_string(), r.p2p_max_player_bits.to_string()]);
        }
        if only.is_none() {
            row.push(f(r.ratio, 2));
        }
        t.row(row);
    }
    t
}

/// Builds the full (all-models) E19 table.
pub fn table(rows: &[Row]) -> Table {
    table_restricted(rows, None)
}

/// Renders the E19 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E19 as a registry [`Experiment`]; [`E19::ALL`] carries every model,
/// `with_topology` yields single-model restrictions.
pub struct E19 {
    only: Option<&'static str>,
}

impl E19 {
    /// The registry instance: all three models side by side.
    pub const ALL: E19 = E19 { only: None };
}

impl Experiment for E19 {
    fn id(&self) -> &'static str {
        "e19"
    }

    fn title(&self) -> &'static str {
        "E19 — DISJ across topologies: blackboard vs coordinator-star vs point-to-point"
    }

    fn notes(&self) -> Vec<String> {
        let mut notes = vec![format!(
            "(disjoint instances; blackboard = Theorem 2 batched, mean over {TRIALS} trials; \
             star/p2p = exact n(k-1)+(k-1), engine-verified)"
        )];
        if let Some(m) = self.only {
            notes.push(format!("(restricted to the {m} model)"));
        }
        notes
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("trials", Json::UInt(TRIALS)),
            ("seed", Json::UInt(SEED)),
            (
                "model",
                Json::str(self.only.unwrap_or("blackboard+star+p2p")),
            ),
        ]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(n, k))| Point::new(i, format!("n={n}, k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table_restricted(&rows, self.only))]
    }

    fn splitter(&self) -> Option<&dyn TrialSplit> {
        Some(self)
    }

    fn with_topology(&self, topology: &str) -> Option<Box<dyn Experiment>> {
        match topology {
            "blackboard" => Some(Box::new(E19 {
                only: Some("blackboard"),
            })),
            "star" => Some(Box::new(E19 { only: Some("star") })),
            "p2p" => Some(Box::new(E19 { only: Some("p2p") })),
            _ => None,
        }
    }
}

impl TrialSplit for E19 {
    fn trials(&self, _point: &Point) -> u64 {
        TRIALS
    }

    fn chunk(&self) -> u64 {
        4
    }

    fn run_range(&self, point: &Point, point_seed: u64, range: Range<u64>) -> PointResult {
        PointResult::new(run_trial_range(
            &default_grid()[point.index()],
            point_seed,
            range,
        ))
    }

    fn merge(&self, point: &Point, parts: Vec<PointResult>) -> PointResult {
        let trials: Vec<Trial> = parts
            .iter()
            .flat_map(|p| p.downcast::<Partial>().iter().copied())
            .collect();
        PointResult::new(fold_trials(&default_grid()[point.index()], &trials))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::registry::point_seed;

    #[test]
    fn message_passing_gap_grows_with_k() {
        let rows = run(&[(1024, 4), (1024, 64)], SEED);
        // Θ(nk) vs Θ(n log k + k): at k=4 the constants still favor the
        // star (log₂(e·4) ≈ 3.4 > k−1 = 3 bits per coordinate); 16x-ing
        // k at fixed n must widen the gap substantially.
        assert!(rows[0].ratio > 0.5, "k=4 ratio {}", rows[0].ratio);
        assert!(
            rows[1].ratio > 3.0 * rows[0].ratio,
            "k=64 ratio {} vs k=4 ratio {}",
            rows[1].ratio,
            rows[0].ratio
        );
        // Star and ring totals are identical; the hub carries everything.
        for r in &rows {
            assert_eq!(r.star_bits, r.p2p_bits);
            assert_eq!(r.hub_bits, r.star_bits);
            assert!(r.p2p_max_player_bits < r.hub_bits || r.k == 2);
        }
    }

    #[test]
    fn split_trials_merge_back_to_the_whole_point() {
        let exp = E19::ALL;
        let point = &exp.grid()[0];
        let seed = point_seed(SEED, 0);
        let whole = exp.run_point(point, seed);
        for chunk in [1u64, 4, 5, 16] {
            let mut parts = Vec::new();
            let mut lo = 0;
            while lo < TRIALS {
                let hi = (lo + chunk).min(TRIALS);
                parts.push(exp.run_range(point, seed, lo..hi));
                lo = hi;
            }
            let merged = exp.merge(point, parts);
            let (w, m) = (whole.downcast::<Row>(), merged.downcast::<Row>());
            assert!(w.broadcast_bits == m.broadcast_bits, "chunk {chunk}");
            assert_eq!(w.star_bits, m.star_bits, "chunk {chunk}");
        }
    }

    #[test]
    fn restricted_tables_drop_the_other_models() {
        let rows = run(&[(256, 4)], SEED);
        let all = table_restricted(&rows, None).render();
        let star = table_restricted(&rows, Some("star")).render();
        let bb = table_restricted(&rows, Some("blackboard")).render();
        assert!(all.contains("star bits") && all.contains("bb bits"));
        assert!(star.contains("star bits") && !star.contains("bb bits"));
        assert!(bb.contains("bb bits") && !bb.contains("star bits"));
    }

    #[test]
    fn with_topology_accepts_the_three_models_only() {
        let exp = E19::ALL;
        for m in ["blackboard", "star", "p2p"] {
            assert!(exp.with_topology(m).is_some(), "{m}");
        }
        assert!(exp.with_topology("mesh").is_none());
    }
}
