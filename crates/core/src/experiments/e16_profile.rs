//! **E16 (extension) — the information profile: where the `log k` leaks**.
//!
//! Section 6's chain rule `IC(Π) = Σⱼ I(Mⱼ; X | M₍<ⱼ₎)` decomposes the
//! information cost over rounds. Under the hard distribution, the
//! sequential `AND_k` witness spreads its `Θ(log k)` bits over a number of
//! rounds that *grows with `k`*: round `d` only contributes if no earlier
//! player pointed (probability `≈ (1−1/k)^d`) *and* the special player sits
//! beyond `d`, so the per-round share decays smoothly rather than being
//! front-loaded into `O(1)` rounds. The protocol genuinely occupies many
//! rounds to deliver few bits — the structural reason the one-shot round
//! tax (E14) is unavoidable for it. This experiment computes the exact
//! per-round profile, averaged over the auxiliary variable `Z`.

use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::sequential_and;
use bci_telemetry::Json;

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// Rounds shown per table (`EXPERIMENTS.md` parameters).
pub const MAX_ROUNDS: usize = 10;

/// The player counts profiled in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![16, 128]
}

/// The exact per-round information profile of a protocol under the hard
/// distribution (averaged over `Z`).
#[derive(Debug, Clone)]
pub struct Profile {
    /// Players.
    pub k: usize,
    /// `per_round[d]` = information revealed by round `d` (bits).
    pub per_round: Vec<f64>,
    /// The total = exact `CIC`.
    pub total: f64,
}

/// Computes the profile for sequential `AND_k`.
pub fn run(k: usize) -> Profile {
    let tree = sequential_and(k);
    let mu = HardDist::new(k);
    let w = 1.0 / k as f64;
    let mut per_round = vec![0.0f64; k];
    for z in 0..k {
        let priors = mu.priors_given_z(z);
        for (d, c) in tree.information_by_depth(&priors).iter().enumerate() {
            per_round[d] += w * c;
        }
    }
    while per_round.last() == Some(&0.0) && per_round.len() > 1 {
        per_round.pop();
    }
    let total = per_round.iter().sum();
    Profile {
        k,
        per_round,
        total,
    }
}

/// The parameter/tail line printed above the E16 table.
pub fn preamble(profile: &Profile, max_rounds: usize) -> String {
    let tail: f64 = profile.per_round.iter().skip(max_rounds).sum();
    format!(
        "k = {}, exact CIC = {:.4} bits; rounds beyond {}: {:.4} bits",
        profile.k, profile.total, max_rounds, tail,
    )
}

/// Builds the E16 table (first `max_rounds` rounds).
pub fn table(profile: &Profile, max_rounds: usize) -> Table {
    let mut t = Table::new(["round", "bits revealed", "cumulative", "share"]);
    let mut cum = 0.0;
    for (d, &c) in profile.per_round.iter().enumerate().take(max_rounds) {
        cum += c;
        t.row([
            d.to_string(),
            f(c, 4),
            f(cum, 4),
            format!("{:.1}%", 100.0 * cum / profile.total),
        ]);
    }
    t
}

/// Renders the E16 table (first `max_rounds` rounds plus a tail line).
pub fn render(profile: &Profile, max_rounds: usize) -> String {
    format!(
        "{}\n{}",
        preamble(profile, max_rounds),
        table(profile, max_rounds).render()
    )
}

/// E16 as a registry [`Experiment`]. One point per `k`; each point's
/// profile renders as its own labeled table.
pub struct E16;

impl Experiment for E16 {
    fn id(&self) -> &'static str {
        "e16"
    }

    fn title(&self) -> &'static str {
        "E16 — chain-rule information profile of sequential AND_k"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(exact, under the hard distribution; Section 6's decomposition)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("max_rounds", Json::UInt(MAX_ROUNDS as u64))]
    }

    fn grid(&self) -> Vec<Point> {
        default_ks()
            .iter()
            .enumerate()
            .map(|(i, k)| Point::new(i, format!("k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run(default_ks()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        results
            .iter()
            .map(|r| {
                let profile = r.downcast::<Profile>();
                (preamble(profile, MAX_ROUNDS), table(profile, MAX_ROUNDS))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bci_lowerbound::cic::cic_hard;

    #[test]
    fn profile_sums_to_exact_cic() {
        for k in [4usize, 16, 64] {
            let p = run(k);
            let cic = cic_hard(&sequential_and(k), &HardDist::new(k));
            assert!((p.total - cic).abs() < 1e-9, "k={k}: {} vs {cic}", p.total);
        }
    }

    #[test]
    fn profile_decays_geometrically_over_theta_k_rounds() {
        let k = 64;
        let p = run(k);
        // Strictly decaying profile...
        for w in p.per_round.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "profile must decay: {w:?}");
        }
        // ...at rate ≈ (1 − 1/k) per round (check the early ratio).
        let ratio = p.per_round[1] / p.per_round[0];
        assert!(
            (ratio - (1.0 - 1.0 / k as f64)).abs() < 0.05,
            "decay ratio {ratio}"
        );
        // Half the information needs a number of rounds growing with k —
        // the profile is not front-loaded into O(1) rounds.
        let half_rounds = |p: &Profile| {
            let mut cum = 0.0;
            p.per_round
                .iter()
                .position(|&c| {
                    cum += c;
                    cum >= p.total / 2.0
                })
                .expect("reaches half")
        };
        let h64 = half_rounds(&p);
        let h16 = half_rounds(&run(16));
        assert!(h16 >= 3, "k=16 half-round {h16}");
        assert!(h64 > h16, "half-round must grow with k: {h16} vs {h64}");
    }
}
