//! **E3 — Lemma 5**: small-error protocols point at a zero-holder.
//!
//! For protocols with error `δ`, the paper's chain bounds
//! `π₂(B₁) ≤ δ/μ(𝒳₂)`, `π₂(B₀) ≤ C·δ`, and concludes that most of `π₂`'s
//! mass lies on transcripts with `max_i α_i ≥ c·k`. This experiment runs the
//! exact accounting on the noisy sequential protocol (per-player flip
//! `δ/k`, total error `≈ δ`) across `k` and `δ`.

use bci_lowerbound::good_transcripts::{analyze, PointingReport};
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::noisy_sequential_and;

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `(k, δ)` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of players.
    pub k: usize,
    /// Target protocol error `δ`.
    pub delta: f64,
    /// The exact Section 4.1 masses.
    pub report: PointingReport,
    /// `δ / μ(𝒳₂)` — the paper's bound on `π₂(B₁)`.
    pub b1_bound: f64,
    /// `C · δ` — the paper's bound on `π₂(B₀)`.
    pub b0_bound: f64,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, f64)> {
    let mut g = Vec::new();
    for &k in &[8usize, 32, 128, 512] {
        for &d in &[1e-3, 1e-2] {
            g.push((k, d));
        }
    }
    g
}

/// The constant `C` of the `L` test and the pointing factor `c` used
/// throughout the experiment.
pub const BIG_C: f64 = 20.0;
/// Pointing threshold factor: transcripts count as pointing when
/// `max α ≥ ALPHA_FACTOR · k`.
pub const ALPHA_FACTOR: f64 = 0.5;

/// Computes one `(k, δ)` point (exact; no randomness).
pub fn run_point(&(k, delta): &(usize, f64)) -> Row {
    let tree = noisy_sequential_and(k, delta / k as f64);
    let report = analyze(&tree, BIG_C, ALPHA_FACTOR);
    let mu = HardDist::new(k);
    Row {
        k,
        delta,
        b1_bound: delta / mu.mass_zero_count(2),
        b0_bound: BIG_C * delta,
        report,
    }
}

/// Runs the sweep (thin wrapper over [`run_point`]).
pub fn run(grid: &[(usize, f64)]) -> Vec<Row> {
    grid.iter().map(run_point).collect()
}

/// Builds the E3 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "k",
        "delta",
        "pi2(L)",
        "pi2(L')",
        "pi2(B0)",
        "C*delta",
        "pi2(B1)",
        "delta/mu(X2)",
        "pointing mass",
    ]);
    for r in rows {
        t.row([
            r.k.to_string(),
            format!("{:.0e}", r.delta),
            f(r.report.pi2_l, 4),
            f(r.report.pi2_lprime, 4),
            f(r.report.pi2_b0, 5),
            f(r.b0_bound, 5),
            f(r.report.pi2_b1, 5),
            f(r.b1_bound, 5),
            f(r.report.pointing_mass, 4),
        ]);
    }
    t
}

/// Renders the E3 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E3 as a registry [`Experiment`].
pub struct E3;

impl Experiment for E3 {
    fn id(&self) -> &'static str {
        "e3"
    }

    fn title(&self) -> &'static str {
        "E3 — Lemma 5: pi_2 masses of L, L', B0, B1 and the pointing mass"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!(
            "(noisy sequential AND with per-player flip delta/k; C = {BIG_C}, alpha >= {ALPHA_FACTOR}k)"
        )]
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(k, d))| Point::new(i, format!("k={k}, delta={d:.0e}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bounds_hold_on_every_row() {
        for r in run(&[(16, 1e-3), (64, 1e-2), (256, 1e-3)]) {
            assert!(
                r.report.pi2_b1 <= r.b1_bound + 1e-9,
                "k={}: π₂(B₁) {} exceeds δ/μ(X₂) {}",
                r.k,
                r.report.pi2_b1,
                r.b1_bound
            );
            assert!(
                r.report.pi2_b0 <= r.b0_bound + 1e-9,
                "k={}: π₂(B₀) {} exceeds C·δ {}",
                r.k,
                r.report.pi2_b0,
                r.b0_bound
            );
            assert!(
                r.report.pointing_mass >= 0.9,
                "k={}: pointing mass {}",
                r.k,
                r.report.pointing_mass
            );
        }
    }

    #[test]
    fn masses_partition_pi2() {
        for r in run(&[(32, 1e-2)]) {
            let total = r.report.pi2_l + r.report.pi2_b0 + r.report.pi2_b1;
            assert!((total - 1.0).abs() < 1e-9, "π₂ partition sums to {total}");
        }
    }
}
