//! **E11 (extension) — internal vs external information (Section 6
//! footnote)**.
//!
//! For two players the paper remarks that external information dominates
//! internal, so its amortized-compression result doesn't improve on
//! Braverman–Rao \[7\] at `k = 2`. This experiment quantifies the
//! relationship exactly:
//!
//! * under **product** priors the two coincide for every broadcast protocol
//!   (the Lemma 3 product posterior kills `I(X;Y|Π)`);
//! * under **correlated** inputs a strict gap `IC^ext − IC^int = I(X;Y|Π)
//!   − I(X;Y) + …` opens up, reaching `H(X)` for perfectly correlated
//!   inputs.

use bci_lowerbound::internal::{external_ic_two_party_joint, internal_ic_two_party_joint};
use bci_protocols::and_trees::{noisy_sequential_and, sequential_and};

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One correlation sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol label.
    pub protocol: &'static str,
    /// Correlation parameter `ρ` (`Pr[X=Y] = ½ + 2ρ`).
    pub rho: f64,
    /// Exact internal cost.
    pub internal: f64,
    /// Exact external cost.
    pub external: f64,
}

impl Row {
    /// The gap `IC^ext − IC^int`.
    pub fn gap(&self) -> f64 {
        self.external - self.internal
    }
}

/// The correlations used in `EXPERIMENTS.md` (`ρ = 0` is the product case,
/// `ρ = 0.25` is `X = Y`).
pub fn default_rhos() -> Vec<f64> {
    vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25]
}

/// The two witness protocols of the sweep, in table order.
pub const PROTOCOL_NAMES: [&str; 2] = ["sequential AND_2", "noisy AND_2 (eps=0.1)"];

/// Computes one `(protocol index, ρ)` point (exact; no randomness).
pub fn run_point(&(protocol, rho): &(usize, f64)) -> Row {
    let tree = match protocol {
        0 => sequential_and(2),
        1 => noisy_sequential_and(2, 0.1),
        _ => panic!("E11 has exactly two witness protocols"),
    };
    let joint = [[0.25 + rho, 0.25 - rho], [0.25 - rho, 0.25 + rho]];
    Row {
        protocol: PROTOCOL_NAMES[protocol],
        rho,
        internal: internal_ic_two_party_joint(&tree, &joint),
        external: external_ic_two_party_joint(&tree, &joint),
    }
}

/// The full `(protocol, ρ)` cross product, protocol-major.
pub fn default_grid() -> Vec<(usize, f64)> {
    let mut g = Vec::new();
    for protocol in 0..PROTOCOL_NAMES.len() {
        for &rho in &default_rhos() {
            g.push((protocol, rho));
        }
    }
    g
}

/// Runs the sweep over both protocols (thin wrapper over [`run_point`]).
pub fn run(rhos: &[f64]) -> Vec<Row> {
    (0..PROTOCOL_NAMES.len())
        .flat_map(|protocol| rhos.iter().map(move |&rho| run_point(&(protocol, rho))))
        .collect()
}

/// Builds the E11 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["protocol", "rho", "internal IC", "external IC", "gap"]);
    for r in rows {
        t.row([
            r.protocol.to_owned(),
            f(r.rho, 2),
            f(r.internal, 4),
            f(r.external, 4),
            f(r.gap(), 4),
        ]);
    }
    t
}

/// Renders the E11 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E11 as a registry [`Experiment`].
pub struct E11;

impl Experiment for E11 {
    fn id(&self) -> &'static str {
        "e11"
    }

    fn title(&self) -> &'static str {
        "E11 — internal vs external information cost, two players"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(joint Pr[X=Y] = 1/2 + 2*rho; rho = 0 is the product case)".into()]
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(protocol, rho))| {
                Point::new(i, format!("{}, rho={rho}", PROTOCOL_NAMES[protocol]))
            })
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_zero_at_product_and_grows_with_correlation() {
        let rows = run(&[0.0, 0.1, 0.25]);
        for chunk in rows.chunks(3) {
            assert!(
                chunk[0].gap().abs() < 1e-9,
                "product case: {}",
                chunk[0].gap()
            );
            assert!(chunk[1].gap() > 1e-6, "correlated case must gap");
            assert!(chunk[2].gap() > chunk[1].gap(), "gap grows with ρ");
        }
    }

    #[test]
    fn internal_never_exceeds_external() {
        for r in run(&default_rhos()) {
            assert!(r.internal <= r.external + 1e-9, "{r:?}");
        }
    }
}
