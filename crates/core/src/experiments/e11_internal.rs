//! **E11 (extension) — internal vs external information (Section 6
//! footnote)**.
//!
//! For two players the paper remarks that external information dominates
//! internal, so its amortized-compression result doesn't improve on
//! Braverman–Rao \[7\] at `k = 2`. This experiment quantifies the
//! relationship exactly:
//!
//! * under **product** priors the two coincide for every broadcast protocol
//!   (the Lemma 3 product posterior kills `I(X;Y|Π)`);
//! * under **correlated** inputs a strict gap `IC^ext − IC^int = I(X;Y|Π)
//!   − I(X;Y) + …` opens up, reaching `H(X)` for perfectly correlated
//!   inputs.

use bci_lowerbound::internal::{external_ic_two_party_joint, internal_ic_two_party_joint};
use bci_protocols::and_trees::{noisy_sequential_and, sequential_and};

use crate::table::{f, Table};

/// One correlation sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Protocol label.
    pub protocol: &'static str,
    /// Correlation parameter `ρ` (`Pr[X=Y] = ½ + 2ρ`).
    pub rho: f64,
    /// Exact internal cost.
    pub internal: f64,
    /// Exact external cost.
    pub external: f64,
}

impl Row {
    /// The gap `IC^ext − IC^int`.
    pub fn gap(&self) -> f64 {
        self.external - self.internal
    }
}

/// The correlations used in `EXPERIMENTS.md` (`ρ = 0` is the product case,
/// `ρ = 0.25` is `X = Y`).
pub fn default_rhos() -> Vec<f64> {
    vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25]
}

/// Runs the sweep (exact; no randomness).
pub fn run(rhos: &[f64]) -> Vec<Row> {
    let mut rows = Vec::new();
    let protocols: [(&'static str, _); 2] = [
        ("sequential AND_2", sequential_and(2)),
        ("noisy AND_2 (eps=0.1)", noisy_sequential_and(2, 0.1)),
    ];
    for (name, tree) in &protocols {
        for &rho in rhos {
            let joint = [[0.25 + rho, 0.25 - rho], [0.25 - rho, 0.25 + rho]];
            rows.push(Row {
                protocol: name,
                rho,
                internal: internal_ic_two_party_joint(tree, &joint),
                external: external_ic_two_party_joint(tree, &joint),
            });
        }
    }
    rows
}

/// Builds the E11 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["protocol", "rho", "internal IC", "external IC", "gap"]);
    for r in rows {
        t.row([
            r.protocol.to_owned(),
            f(r.rho, 2),
            f(r.internal, 4),
            f(r.external, 4),
            f(r.gap(), 4),
        ]);
    }
    t
}

/// Renders the E11 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_zero_at_product_and_grows_with_correlation() {
        let rows = run(&[0.0, 0.1, 0.25]);
        for chunk in rows.chunks(3) {
            assert!(
                chunk[0].gap().abs() < 1e-9,
                "product case: {}",
                chunk[0].gap()
            );
            assert!(chunk[1].gap() > 1e-6, "correlated case must gap");
            assert!(chunk[2].gap() > chunk[1].gap(), "gap grows with ρ");
        }
    }

    #[test]
    fn internal_never_exceeds_external() {
        for r in run(&default_rhos()) {
            assert!(r.internal <= r.external + 1e-9, "{r:?}");
        }
    }
}
