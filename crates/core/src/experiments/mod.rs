//! One driver per paper result; see `EXPERIMENTS.md` for the index.
//!
//! Every module follows the same shape: a `Row` struct, `run(params) ->
//! Vec<Row>` producing the numbers, `render(&[Row]) -> String` producing the
//! table, and `default_*` helpers with the parameters used in
//! `EXPERIMENTS.md`. The `bci-bench` binaries are one-line wrappers.

pub mod e10_union;
pub mod e11_internal;
pub mod e12_sparse;
pub mod e13_huffman;
pub mod e14_one_shot;
pub mod e15_block_coding;
pub mod e16_profile;
pub mod e17_error_tradeoff;
pub mod e18_promise;
pub mod e1_disj_upper;
pub mod e2_and_cic;
pub mod e3_pointing;
pub mod e4_omega_k;
pub mod e5_gap;
pub mod e6_sampling;
pub mod e7_amortized;
pub mod e8_direct_sum;
pub mod e9_divergence;
