//! One driver per paper result; see `EXPERIMENTS.md` for the index.
//!
//! Every module follows the same shape: a `Row` struct, a pure per-point
//! driver (`run_point`-style), `run(params) -> Vec<Row>` as a thin wrapper
//! over it, `table`/`render` producing the output, and `default_*` helpers
//! with the parameters used in `EXPERIMENTS.md`. Each module also exposes a
//! unit struct (`E1` … `E20`) implementing [`registry::Experiment`], the
//! uniform interface the `bci-bench` report generator, the parallel sweep
//! pool, and the `bci experiments` CLI all dispatch through; see
//! [`registry`] for the contract and `docs/experiments.md` for how to add
//! E19+.

pub mod registry;

pub mod e10_union;
pub mod e11_internal;
pub mod e12_sparse;
pub mod e13_huffman;
pub mod e14_one_shot;
pub mod e15_block_coding;
pub mod e16_profile;
pub mod e17_error_tradeoff;
pub mod e18_promise;
pub mod e19_topology;
pub mod e1_disj_upper;
pub mod e20_nih_and;
pub mod e2_and_cic;
pub mod e3_pointing;
pub mod e4_omega_k;
pub mod e5_gap;
pub mod e6_sampling;
pub mod e7_amortized;
pub mod e8_direct_sum;
pub mod e9_divergence;
