//! **E4 — Lemma 6**: `CC_ε(AND_k) = Ω(k)`.
//!
//! Sweeps the number of speakers `ℓ` of the truncated deterministic
//! protocol and measures its error under the two-point distribution `μ′`,
//! three ways: the closed form `(1−ε′)(1−ℓ/k)`, the exact tree computation,
//! and a Monte-Carlo run of the executable protocol. The error crosses `ε`
//! exactly at the lemma's threshold `(1 − ε/(1−ε′))·k` — linear in `k`.

use bci_blackboard::runner::monte_carlo;
use bci_lowerbound::counting::FoolingDist;
use bci_protocols::and::{and_function, TruncatedAnd};
use bci_protocols::and_trees::truncated_and;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One speaker-count sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of players.
    pub k: usize,
    /// Speakers `ℓ`.
    pub speakers: usize,
    /// Closed-form error `(1−ε′)(1−ℓ/k)`.
    pub closed_form: f64,
    /// Exact error from the protocol tree.
    pub exact: f64,
    /// Monte-Carlo error of the executable protocol.
    pub monte_carlo: f64,
    /// Whether the lemma predicts error `> ε` at this `ℓ`.
    pub below_threshold: bool,
}

/// Parameters of the experiment.
#[derive(Debug, Clone)]
pub struct Params {
    /// Players.
    pub k: usize,
    /// Error budget `ε`.
    pub eps: f64,
    /// All-ones weight `ε′`.
    pub eps_prime: f64,
    /// Monte-Carlo trials per point.
    pub trials: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 128,
            eps: 0.1,
            eps_prime: 0.15,
            trials: 20_000,
            seed: 1,
        }
    }
}

/// Runs one speaker-fraction point under its own Monte-Carlo RNG.
pub fn run_point(params: &Params, &frac: &f64, seed: u64) -> Row {
    let d = FoolingDist::new(params.k, params.eps_prime);
    let threshold = d.speaker_threshold(params.eps);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let speakers = ((params.k as f64 * frac).round() as usize).min(params.k);
    let closed_form = d.truncated_error(speakers);
    // error_of_tree enumerates the μ′ support of k+1 inputs
    // directly — no 2^k blowup — so it is exact at any k.
    let exact = d.error_of_tree(&truncated_and(params.k, speakers));
    let protocol = TruncatedAnd::new(params.k, speakers);
    let report = monte_carlo(
        &protocol,
        |rng| d.sample(rng),
        and_function,
        params.trials,
        &mut rng,
    );
    Row {
        k: params.k,
        speakers,
        closed_form,
        exact,
        monte_carlo: report.error_rate(),
        below_threshold: (speakers as f64) < threshold,
    }
}

/// Runs the sweep over `speaker_fracs · k` speakers: point `i` computes
/// under `point_seed(params.seed, i)` (thin wrapper over [`run_point`]).
pub fn run(params: &Params, speaker_fracs: &[f64]) -> Vec<Row> {
    speaker_fracs
        .iter()
        .enumerate()
        .map(|(i, frac)| run_point(params, frac, point_seed(params.seed, i)))
        .collect()
}

/// The default sweep fractions.
pub fn default_fracs() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75, 0.85, 0.9, 0.95, 1.0]
}

/// The parameter line printed above the E4 table.
pub fn preamble(params: &Params) -> String {
    let d = FoolingDist::new(params.k, params.eps_prime);
    format!(
        "k = {}, eps = {}, eps' = {}, Lemma 6 threshold = {:.1} speakers",
        params.k,
        params.eps,
        params.eps_prime,
        d.speaker_threshold(params.eps),
    )
}

/// Builds the E4 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "speakers",
        "closed form",
        "exact (tree)",
        "Monte Carlo",
        "lemma: err>eps?",
    ]);
    for r in rows {
        t.row([
            r.speakers.to_string(),
            f(r.closed_form, 4),
            f(r.exact, 4),
            f(r.monte_carlo, 4),
            if r.below_threshold { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Renders the E4 table with its parameter preamble.
pub fn render(params: &Params, rows: &[Row]) -> String {
    format!("{}\n{}", preamble(params), table(rows).render())
}

/// E4 as a registry [`Experiment`].
pub struct E4;

impl Experiment for E4 {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn title(&self) -> &'static str {
        "E4 — Lemma 6: error of truncated deterministic AND_k under mu'"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(error crosses eps exactly at the lemma's speaker threshold)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("k", Json::UInt(Params::default().k as u64))]
    }

    fn seed(&self) -> u64 {
        Params::default().seed
    }

    fn grid(&self) -> Vec<Point> {
        default_fracs()
            .iter()
            .enumerate()
            .map(|(i, frac)| Point::new(i, format!("speaker frac={frac}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        let params = Params::default();
        PointResult::new(run_point(&params, &default_fracs()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(preamble(&Params::default()), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_measurements_agree() {
        let params = Params {
            k: 64,
            trials: 40_000,
            ..Params::default()
        };
        for r in run(&params, &[0.5, 0.9, 1.0]) {
            assert!(
                (r.closed_form - r.exact).abs() < 1e-12,
                "closed form vs exact at ℓ={}",
                r.speakers
            );
            assert!(
                (r.monte_carlo - r.exact).abs() < 0.02,
                "MC {} vs exact {} at ℓ={}",
                r.monte_carlo,
                r.exact,
                r.speakers
            );
        }
    }

    #[test]
    fn error_crosses_eps_at_the_threshold() {
        let params = Params {
            k: 100,
            trials: 1000,
            ..Params::default()
        };
        for r in run(&params, &[0.2, 0.95, 1.0]) {
            if r.below_threshold {
                assert!(r.exact > params.eps, "ℓ={}: {}", r.speakers, r.exact);
            } else {
                assert!(r.exact <= params.eps + 1e-12);
            }
        }
    }
}
