//! **E4 — Lemma 6**: `CC_ε(AND_k) = Ω(k)`.
//!
//! Sweeps the number of speakers `ℓ` of the truncated deterministic
//! protocol and measures its error under the two-point distribution `μ′`,
//! three ways: the closed form `(1−ε′)(1−ℓ/k)`, the exact tree computation,
//! and a Monte-Carlo estimate. The error crosses `ε` exactly at the lemma's
//! threshold `(1 − ε/(1−ε′))·k` — linear in `k`.
//!
//! The Monte-Carlo lane is the batched fast path: each trial draws its `μ′`
//! input in compressed form ([`FoolingDist::sample_zero`] — just the
//! position of the single zero, no `Vec<bool>` materialization) and applies
//! the truncated protocol's decision rule directly ([`trial_errs`]; the
//! rule is cross-checked against running the executable [`TruncatedAnd`](bci_protocols::and::TruncatedAnd)
//! through the engine in the tests). Trials are seeded per-trial via
//! [`derive_trial_seed`], which is what lets the registry's [`TrialSplit`]
//! hook fan a 20 000-trial point across workers byte-identically.

use std::ops::Range;

use bci_blackboard::runner::derive_trial_seed;
use bci_lowerbound::counting::FoolingDist;
use bci_protocols::and_trees::truncated_and;
use bci_telemetry::Json;
use rand::{Rng, SeedableRng};

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult, TrialSplit};
use crate::table::{f, Table};

/// One speaker-count sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of players.
    pub k: usize,
    /// Speakers `ℓ`.
    pub speakers: usize,
    /// Closed-form error `(1−ε′)(1−ℓ/k)`.
    pub closed_form: f64,
    /// Exact error from the protocol tree.
    pub exact: f64,
    /// Monte-Carlo error of the protocol's decision rule.
    pub monte_carlo: f64,
    /// Whether the lemma predicts error `> ε` at this `ℓ`.
    pub below_threshold: bool,
}

/// Error counts from a contiguous range of Monte-Carlo trials — the
/// [`TrialSplit`] partial. Integer sums, so merging partials in trial
/// order is trivially identical to one whole-point pass.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Trials in the range that erred.
    pub errors: u64,
    /// Trials in the range.
    pub trials: u64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone)]
pub struct Params {
    /// Players.
    pub k: usize,
    /// Error budget `ε`.
    pub eps: f64,
    /// All-ones weight `ε′`.
    pub eps_prime: f64,
    /// Monte-Carlo trials per point.
    pub trials: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 128,
            eps: 0.1,
            eps_prime: 0.15,
            trials: 20_000,
            seed: 1,
        }
    }
}

/// Speakers at sweep fraction `frac`.
fn speakers_for(k: usize, frac: f64) -> usize {
    ((k as f64 * frac).round() as usize).min(k)
}

/// Whether one Monte-Carlo trial errs: draws a `μ′` input in compressed
/// form and applies the truncated protocol's decision rule directly.
///
/// The rule: the protocol announces bits in order, stopping at the first
/// zero or after `speakers` announcements, and outputs 1 iff every
/// announced bit was 1. So it outputs the truth on the all-ones input and
/// is wrong on a single-zero input exactly when the zero is silent
/// (`z ≥ speakers`). The tests cross-check this against running the
/// executable [`TruncatedAnd`](bci_protocols::and::TruncatedAnd) through the engine on every input class.
pub fn trial_errs<R: Rng + ?Sized>(d: &FoolingDist, speakers: usize, rng: &mut R) -> bool {
    match d.sample_zero(rng) {
        // All-ones input: the optimistic output 1 is correct.
        None => false,
        // Single zero at z: truth is 0, output is 0 iff the zero spoke.
        Some(z) => z >= speakers,
    }
}

/// Runs trials `range` of one speaker-fraction point. Trial `t` draws from
/// its own `derive_trial_seed(point_seed, t)` stream, so any partition of
/// `0..trials` reassembles into the same counts.
pub fn run_trial_range(params: &Params, frac: f64, point_seed: u64, range: Range<u64>) -> Partial {
    let d = FoolingDist::new(params.k, params.eps_prime);
    let speakers = speakers_for(params.k, frac);
    let trials = range.end - range.start;
    let mut errors = 0u64;
    for t in range {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(derive_trial_seed(point_seed, t));
        errors += u64::from(trial_errs(&d, speakers, &mut rng));
    }
    Partial { errors, trials }
}

/// Assembles the full [`Row`] for a point from its merged Monte-Carlo
/// counts (the deterministic columns don't depend on the trials).
fn finish_row(params: &Params, frac: f64, mc: Partial) -> Row {
    let d = FoolingDist::new(params.k, params.eps_prime);
    let threshold = d.speaker_threshold(params.eps);
    let speakers = speakers_for(params.k, frac);
    let closed_form = d.truncated_error(speakers);
    // error_of_tree enumerates the μ′ support of k+1 inputs
    // directly — no 2^k blowup — so it is exact at any k.
    let exact = d.error_of_tree(&truncated_and(params.k, speakers));
    Row {
        k: params.k,
        speakers,
        closed_form,
        exact,
        monte_carlo: mc.errors as f64 / mc.trials as f64,
        below_threshold: (speakers as f64) < threshold,
    }
}

/// Runs one speaker-fraction point: Monte-Carlo counts over the full trial
/// range plus the deterministic columns.
pub fn run_point(params: &Params, &frac: &f64, seed: u64) -> Row {
    let mc = run_trial_range(params, frac, seed, 0..params.trials);
    finish_row(params, frac, mc)
}

/// Runs the sweep over `speaker_fracs · k` speakers: point `i` computes
/// under `point_seed(params.seed, i)` (thin wrapper over [`run_point`]).
pub fn run(params: &Params, speaker_fracs: &[f64]) -> Vec<Row> {
    speaker_fracs
        .iter()
        .enumerate()
        .map(|(i, frac)| run_point(params, frac, point_seed(params.seed, i)))
        .collect()
}

/// The default sweep fractions.
pub fn default_fracs() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 0.75, 0.85, 0.9, 0.95, 1.0]
}

/// The parameter line printed above the E4 table.
pub fn preamble(params: &Params) -> String {
    let d = FoolingDist::new(params.k, params.eps_prime);
    format!(
        "k = {}, eps = {}, eps' = {}, Lemma 6 threshold = {:.1} speakers",
        params.k,
        params.eps,
        params.eps_prime,
        d.speaker_threshold(params.eps),
    )
}

/// Builds the E4 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "speakers",
        "closed form",
        "exact (tree)",
        "Monte Carlo",
        "lemma: err>eps?",
    ]);
    for r in rows {
        t.row([
            r.speakers.to_string(),
            f(r.closed_form, 4),
            f(r.exact, 4),
            f(r.monte_carlo, 4),
            if r.below_threshold { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Renders the E4 table with its parameter preamble.
pub fn render(params: &Params, rows: &[Row]) -> String {
    format!("{}\n{}", preamble(params), table(rows).render())
}

/// E4 as a registry [`Experiment`].
pub struct E4;

impl Experiment for E4 {
    fn id(&self) -> &'static str {
        "e4"
    }

    fn title(&self) -> &'static str {
        "E4 — Lemma 6: error of truncated deterministic AND_k under mu'"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(error crosses eps exactly at the lemma's speaker threshold)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("k", Json::UInt(Params::default().k as u64))]
    }

    fn seed(&self) -> u64 {
        Params::default().seed
    }

    fn grid(&self) -> Vec<Point> {
        default_fracs()
            .iter()
            .enumerate()
            .map(|(i, frac)| Point::new(i, format!("speaker frac={frac}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        let params = Params::default();
        PointResult::new(run_point(&params, &default_fracs()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(preamble(&Params::default()), table(&rows))]
    }

    fn splitter(&self) -> Option<&dyn TrialSplit> {
        Some(self)
    }
}

impl TrialSplit for E4 {
    fn trials(&self, _point: &Point) -> u64 {
        Params::default().trials
    }

    fn chunk(&self) -> u64 {
        // Each trial is a ChaCha8 seed + one or two draws (~100 ns); the
        // default 8-trial chunk would make 2 500 sub-jobs per point and
        // drown the work in dispatch. 2 048 trials ≈ 0.2 ms per sub-job,
        // ~10 sub-jobs per point — enough to spread 8 points across any
        // realistic pool.
        2_048
    }

    fn run_range(&self, point: &Point, point_seed: u64, range: Range<u64>) -> PointResult {
        let params = Params::default();
        PointResult::new(run_trial_range(
            &params,
            default_fracs()[point.index()],
            point_seed,
            range,
        ))
    }

    fn merge(&self, point: &Point, parts: Vec<PointResult>) -> PointResult {
        let params = Params::default();
        let mut total = Partial {
            errors: 0,
            trials: 0,
        };
        for part in parts {
            let p = part.downcast::<Partial>();
            total.errors += p.errors;
            total.trials += p.trials;
        }
        PointResult::new(finish_row(&params, default_fracs()[point.index()], total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bci_protocols::and::{and_function, TruncatedAnd};

    #[test]
    fn three_measurements_agree() {
        let params = Params {
            k: 64,
            trials: 40_000,
            ..Params::default()
        };
        for r in run(&params, &[0.5, 0.9, 1.0]) {
            assert!(
                (r.closed_form - r.exact).abs() < 1e-12,
                "closed form vs exact at ℓ={}",
                r.speakers
            );
            assert!(
                (r.monte_carlo - r.exact).abs() < 0.02,
                "MC {} vs exact {} at ℓ={}",
                r.monte_carlo,
                r.exact,
                r.speakers
            );
        }
    }

    #[test]
    fn error_crosses_eps_at_the_threshold() {
        let params = Params {
            k: 100,
            trials: 1000,
            ..Params::default()
        };
        for r in run(&params, &[0.2, 0.95, 1.0]) {
            if r.below_threshold {
                assert!(r.exact > params.eps, "ℓ={}: {}", r.speakers, r.exact);
            } else {
                assert!(r.exact <= params.eps + 1e-12);
            }
        }
    }

    #[test]
    fn decision_rule_matches_engine_execution() {
        // The fast lane's rule — "err iff the zero is silent" — against
        // the executable TruncatedAnd run through the engine, on every
        // input class μ′ can produce, for a spread of (k, speakers).
        for k in [1usize, 2, 5, 9] {
            for speakers in 0..=k {
                let protocol = TruncatedAnd::new(k, speakers);
                let inputs: Vec<Option<usize>> =
                    std::iter::once(None).chain((0..k).map(Some)).collect();
                for zero in inputs {
                    let mut x = vec![true; k];
                    if let Some(z) = zero {
                        x[z] = false;
                    }
                    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
                    let exec = bci_blackboard::protocol::run(&protocol, &x, &mut rng);
                    let engine_errs = exec.output != and_function(&x);
                    let rule_errs = match zero {
                        None => false,
                        Some(z) => z >= speakers,
                    };
                    assert_eq!(
                        rule_errs, engine_errs,
                        "k={k} speakers={speakers} zero={zero:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn trial_errs_consumes_the_same_draws_as_the_materialized_sampler() {
        // The compressed sampler must leave the RNG in the same state as
        // the materialized one, so the fast lane's per-trial streams are
        // interchangeable with protocol-executing ones.
        let d = FoolingDist::new(16, 0.15);
        let mut a = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..100 {
            let x = d.sample(&mut a);
            let z = d.sample_zero(&mut b);
            assert_eq!(z, x.iter().position(|&bit| !bit));
            assert_eq!(a.random::<u64>(), b.random::<u64>(), "RNG streams diverged");
        }
    }

    #[test]
    fn split_trials_merge_back_to_the_whole_point() {
        // Every chunking of the trial range must reassemble into exactly
        // the whole-point counts.
        let params = Params::default();
        let frac = 0.9;
        let seed = point_seed(params.seed, 5);
        let trials = 1_000;
        let whole = run_trial_range(&params, frac, seed, 0..trials);
        for chunk in [1u64, 7, 256, 1_000] {
            let mut errors = 0u64;
            let mut count = 0u64;
            let mut lo = 0;
            while lo < trials {
                let hi = (lo + chunk).min(trials);
                let part = run_trial_range(&params, frac, seed, lo..hi);
                errors += part.errors;
                count += part.trials;
                lo = hi;
            }
            assert_eq!(errors, whole.errors, "chunk {chunk}");
            assert_eq!(count, whole.trials, "chunk {chunk}");
        }
    }
}
