//! **E2 — Theorem 1**: `CIC_μ(AND_k) = Θ(log k)`.
//!
//! Computes the *exact* conditional information cost of the sequential
//! `AND_k` witness under the hard distribution `μ`, for a sweep of `k`. The
//! claim to reproduce: `CIC / log₂ k` is bounded between constants (the
//! protocol witnesses the `O(log k)` side; Theorem 1 says no protocol can do
//! asymptotically better than `Ω(log k)`, so the witness curve and the bound
//! curve bracket a Θ(log k) band).

use bci_lowerbound::cic::{cic_hard, theorem1_bound};
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::sequential_and;

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// One `k` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Number of players.
    pub k: usize,
    /// Exact `CIC_μ` of the sequential witness.
    pub cic: f64,
    /// `CIC / log₂ k` — flat in `k` iff the scaling is `Θ(log k)`.
    pub cic_over_log_k: f64,
    /// The Theorem 1 lower-bound curve `(p/2)·log₂ k` at `p = 1/2`.
    pub theorem1: f64,
    /// The witness's worst-case communication (`= k`).
    pub cc: usize,
}

/// The sweep used in `EXPERIMENTS.md`.
pub fn default_ks() -> Vec<usize> {
    vec![2, 4, 8, 16, 32, 64, 128, 256, 512]
}

/// Computes one `k` point (fully deterministic — everything is exact).
pub fn run_point(&k: &usize) -> Row {
    let cic = cic_hard(&sequential_and(k), &HardDist::new(k));
    Row {
        k,
        cic,
        cic_over_log_k: cic / (k as f64).log2().max(1e-9),
        theorem1: theorem1_bound(k, 0.5),
        cc: k,
    }
}

/// Runs the sweep (thin wrapper over [`run_point`]).
pub fn run(ks: &[usize]) -> Vec<Row> {
    ks.iter().map(run_point).collect()
}

/// Builds the E2 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["k", "CIC(seq AND)", "CIC/log2 k", "(1/4)log2 k", "CC"]);
    for r in rows {
        t.row([
            r.k.to_string(),
            f(r.cic, 4),
            f(r.cic_over_log_k, 4),
            f(r.theorem1, 4),
            r.cc.to_string(),
        ]);
    }
    t
}

/// Renders the E2 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E2 as a registry [`Experiment`].
pub struct E2;

impl Experiment for E2 {
    fn id(&self) -> &'static str {
        "e2"
    }

    fn title(&self) -> &'static str {
        "E2 — Theorem 1: exact CIC of the sequential AND_k witness"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(hard distribution; CIC/log2(k) flat <=> Theta(log k))".into()]
    }

    fn grid(&self) -> Vec<Point> {
        default_ks()
            .iter()
            .enumerate()
            .map(|(i, k)| Point::new(i, format!("k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(&default_ks()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_flat_across_two_orders_of_magnitude() {
        let rows = run(&[4, 64, 512]);
        let ratios: Vec<f64> = rows.iter().map(|r| r.cic_over_log_k).collect();
        for w in ratios.windows(2) {
            assert!(
                (w[0] / w[1]).abs() < 2.0 && (w[1] / w[0]).abs() < 2.0,
                "ratios {ratios:?} not within a constant band"
            );
        }
    }

    #[test]
    fn witness_sits_above_theorem1_curve() {
        for r in run(&[16, 128, 512]) {
            assert!(
                r.cic >= 0.5 * r.theorem1,
                "k={}: witness {} below the bound shape {}",
                r.k,
                r.cic,
                r.theorem1
            );
        }
    }

    #[test]
    fn k_equals_two_is_well_defined() {
        let rows = run(&[2]);
        assert!(rows[0].cic > 0.0);
    }
}
