//! **E10 (extension) — pointwise-OR / set union**.
//!
//! The paper's related-work section: symmetrization proves `Ω(n log k)` for
//! pointwise-OR (the union of the players' sets). The matching upper bound
//! reuses Theorem 2's batching — members instead of zeros. This experiment
//! sweeps `(n, k)` on dense-union instances and measures naive vs batched,
//! mirroring E1.

use bci_protocols::union::{batched, naive, union_function};
use bci_protocols::workload;
use bci_telemetry::Json;
use rand::SeedableRng;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE10;

/// One `(n, k)` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size.
    pub n: usize,
    /// Players.
    pub k: usize,
    /// Union size of the instance.
    pub union_size: usize,
    /// Naive protocol bits.
    pub naive_bits: usize,
    /// Batched protocol bits.
    pub batched_bits: usize,
    /// naive / batched.
    pub ratio: f64,
    /// Batched bits per union element.
    pub per_member: f64,
    /// The fat-cycle bound `log₂(e·k)`.
    pub bound: f64,
}

/// The grid used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, usize)> {
    let mut g = Vec::new();
    for &n in &[1024usize, 4096, 16384] {
        for &k in &[4usize, 16, 64] {
            g.push((n, k));
        }
    }
    g
}

/// Runs one `(n, k)` point under its own RNG, on a 50 %-density iid
/// instance (union ≈ `[n]`, members well replicated — the batching-friendly
/// regime).
pub fn run_point(&(n, k): &(usize, usize), seed: u64) -> Row {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let inputs = workload::random_sets(n, k, 0.5, &mut rng);
    let expect = union_function(&inputs);
    let nv = naive::run(&inputs);
    let bt = if n <= 4096 {
        let r = batched::run(&inputs);
        assert_eq!(r.output, expect);
        r.bits
    } else {
        batched::cost(&inputs)
    };
    assert_eq!(nv.output, expect);
    Row {
        n,
        k,
        union_size: expect.len(),
        naive_bits: nv.bits,
        batched_bits: bt,
        ratio: nv.bits as f64 / bt as f64,
        per_member: bt as f64 / expect.len().max(1) as f64,
        bound: batched::per_member_bound(k),
    }
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(grid: &[(usize, usize)], seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, point_seed(seed, i)))
        .collect()
}

/// Builds the E10 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "n",
        "k",
        "|union|",
        "naive bits",
        "batched bits",
        "naive/batched",
        "b/member",
        "log2(ek)",
    ]);
    for r in rows {
        t.row([
            r.n.to_string(),
            r.k.to_string(),
            r.union_size.to_string(),
            r.naive_bits.to_string(),
            r.batched_bits.to_string(),
            f(r.ratio, 2),
            f(r.per_member, 2),
            f(r.bound, 2),
        ]);
    }
    t
}

/// Renders the E10 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E10 as a registry [`Experiment`].
pub struct E10;

impl Experiment for E10 {
    fn id(&self) -> &'static str {
        "e10"
    }

    fn title(&self) -> &'static str {
        "E10 — pointwise-OR (set union): naive vs batched member publishing"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(iid 50%-density sets; union ≈ [n])".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(n, k))| Point::new(i, format!("n={n}, k={k}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_wins_in_the_low_k_regime() {
        let rows = run(&[(2048, 4), (2048, 64)], 11);
        assert!(rows[0].ratio > 1.8, "n=2048,k=4: ratio {}", rows[0].ratio);
        assert!(
            rows[0].per_member < rows[0].bound + 1.0,
            "per-member {} vs bound {}",
            rows[0].per_member,
            rows[0].bound
        );
        // k² ≥ n kills the advantage, as in E1.
        assert!(rows[1].ratio < rows[0].ratio);
    }
}
