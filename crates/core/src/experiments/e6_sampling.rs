//! **E6 — Lemma 7 / Figure 1**: the one-round sampling protocol.
//!
//! Sweeps `(η, ν)` pairs with controlled divergence and measures the literal
//! protocol's communication and correctness. The claims to reproduce:
//! receivers decode the sender's sample (agreement `≥ 1 − ε`), the output
//! law is `η`, and the mean cost is `D(η‖ν) + O(log D + log 1/ε)` — far
//! below the naive `log₂ |U|` when `ν` is close to `η`.

use bci_compression::sampling::{exchange, lemma7_bound, SamplerConfig};
use bci_info::dist::Dist;
use bci_info::divergence::kl;
use bci_telemetry::Json;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// Canonical trials per point (`EXPERIMENTS.md` parameters).
pub const TRIALS: u64 = 400;
/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE6;

/// One `(universe, sharpness)` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size `|U|`.
    pub universe: usize,
    /// Exact `D(η‖ν)` of the pair.
    pub divergence: f64,
    /// Mean bits over the trials.
    pub mean_bits: f64,
    /// Fraction of runs where all parties agreed.
    pub agreement: f64,
    /// The Lemma 7 reference curve.
    pub bound: f64,
    /// The naive cost `log₂ |U|` the protocol replaces.
    pub naive_bits: f64,
}

/// Builds an `(η, ν)` pair over `universe` outcomes whose divergence grows
/// with `sharpness ∈ [0, 1)`: `ν` uniform, `η` puts mass `sharpness` on one
/// outcome and spreads the rest.
pub fn controlled_pair(universe: usize, sharpness: f64) -> (Dist, Dist) {
    assert!(universe >= 2);
    assert!((0.0..1.0).contains(&sharpness));
    let rest = (1.0 - sharpness) / (universe as f64 - 1.0);
    let mut probs = vec![rest; universe];
    probs[0] = sharpness;
    (
        Dist::new(probs).expect("constructed to normalize"),
        Dist::uniform(universe),
    )
}

/// Runs one `(universe, sharpness)` point: `trials` independent protocol
/// executions with distinct public seeds derived from `seed`.
pub fn run_point(&(universe, sharpness): &(usize, f64), trials: u64, seed: u64) -> Row {
    let config = SamplerConfig::default();
    let (eta, nu) = controlled_pair(universe, sharpness);
    let d = kl(&eta, &nu);
    let mut bits = 0u64;
    let mut agreed = 0u64;
    for t in 0..trials {
        let e = exchange(
            &eta,
            &nu,
            &config,
            seed.wrapping_add(t).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        bits += e.bits as u64;
        agreed += u64::from(e.agreed());
    }
    Row {
        universe,
        divergence: d,
        mean_bits: bits as f64 / trials as f64,
        agreement: agreed as f64 / trials as f64,
        bound: lemma7_bound(d),
        naive_bits: (universe as f64).log2(),
    }
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(grid: &[(usize, f64)], trials: u64, seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, trials, point_seed(seed, i)))
        .collect()
}

/// The grid used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, f64)> {
    let mut g = Vec::new();
    for &u in &[64usize, 512, 4096] {
        for &s in &[1.0 / u as f64, 0.1, 0.5, 0.9, 0.99] {
            g.push((u, s));
        }
    }
    g
}

/// Builds the E6 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "|U|",
        "D(eta||nu)",
        "mean bits",
        "Lemma7 bound",
        "naive log2|U|",
        "agreement",
    ]);
    for r in rows {
        t.row([
            r.universe.to_string(),
            f(r.divergence, 3),
            f(r.mean_bits, 2),
            f(r.bound, 2),
            f(r.naive_bits, 1),
            f(r.agreement, 4),
        ]);
    }
    t
}

/// Renders the E6 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E6 as a registry [`Experiment`].
pub struct E6;

impl Experiment for E6 {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn title(&self) -> &'static str {
        "E6 — Lemma 7: literal one-round sampling protocol"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!(
            "(mean bits vs D(eta||nu) + O(log D); {TRIALS} trials per point)"
        )]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("trials", Json::UInt(TRIALS)), ("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(u, s))| Point::new(i, format!("|U|={u}, sharpness={s:.4}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], TRIALS, seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_bounded_by_lemma7_and_beats_naive_when_close() {
        let rows = run(&[(512, 1.0 / 512.0), (512, 0.9)], 300, 3);
        // ν = η (sharpness = uniform): constant bits ≪ log|U| = 9.
        assert!(rows[0].divergence < 1e-9);
        assert!(rows[0].mean_bits < 8.0, "near-zero divergence case");
        for r in &rows {
            assert!(
                r.mean_bits <= r.bound + 1.0,
                "|U|={} D={}: {} > bound {}",
                r.universe,
                r.divergence,
                r.mean_bits,
                r.bound
            );
            assert!(r.agreement > 0.999, "agreement {}", r.agreement);
        }
    }

    #[test]
    fn cost_grows_with_divergence() {
        let rows = run(&[(1024, 0.01), (1024, 0.5), (1024, 0.99)], 200, 9);
        assert!(rows[0].mean_bits < rows[1].mean_bits);
        assert!(rows[1].mean_bits < rows[2].mean_bits);
    }

    #[test]
    fn controlled_pair_divergence_is_monotone_in_sharpness() {
        let d = |s: f64| {
            let (eta, nu) = controlled_pair(256, s);
            kl(&eta, &nu)
        };
        assert!(d(0.1) < d(0.5));
        assert!(d(0.5) < d(0.95));
    }
}
