//! **E6 — Lemma 7 / Figure 1**: the one-round sampling protocol.
//!
//! Sweeps `(η, ν)` pairs with controlled divergence and measures the literal
//! protocol's communication and correctness. The claims to reproduce:
//! receivers decode the sender's sample (agreement `≥ 1 − ε`), the output
//! law is `η`, and the mean cost is `D(η‖ν) + O(log D + log 1/ε)` — far
//! below the naive `log₂ |U|` when `ν` is close to `η`.
//!
//! The trials run through the batched [`exchange_many`] lane (shared
//! smoothed-ν table, one stream pass per seed) — trial-identical to calling
//! [`exchange`](bci_compression::sampling::exchange) per seed, so the table
//! numbers are unchanged. Per-trial seeds depend only on `(point_seed, t)`,
//! and the accumulators are integer sums, which is what lets the registry's
//! [`TrialSplit`] hook chunk a point across workers byte-identically.

use std::ops::Range;

use bci_compression::sampling::{exchange_many, lemma7_bound, SamplerConfig};
use bci_info::dist::Dist;
use bci_info::divergence::kl;
use bci_telemetry::Json;

use super::registry::{point_seed, Experiment, LabeledTable, Point, PointResult, TrialSplit};
use crate::table::{f, Table};

/// Canonical trials per point (`EXPERIMENTS.md` parameters).
pub const TRIALS: u64 = 400;
/// The canonical master seed (`EXPERIMENTS.md` parameters).
pub const SEED: u64 = 0xE6;

/// One `(universe, sharpness)` sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size `|U|`.
    pub universe: usize,
    /// Exact `D(η‖ν)` of the pair.
    pub divergence: f64,
    /// Mean bits over the trials.
    pub mean_bits: f64,
    /// Fraction of runs where all parties agreed.
    pub agreement: f64,
    /// The Lemma 7 reference curve.
    pub bound: f64,
    /// The naive cost `log₂ |U|` the protocol replaces.
    pub naive_bits: f64,
}

/// Integer accumulators from a contiguous trial range — the [`TrialSplit`]
/// partial. Sums of `u64`s, so any chunking merges back exactly.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Total bits over the range's trials.
    pub bits: u64,
    /// Trials on which all parties agreed.
    pub agreed: u64,
    /// Trials in the range.
    pub trials: u64,
}

/// Builds an `(η, ν)` pair over `universe` outcomes whose divergence grows
/// with `sharpness ∈ [0, 1)`: `ν` uniform, `η` puts mass `sharpness` on one
/// outcome and spreads the rest.
pub fn controlled_pair(universe: usize, sharpness: f64) -> (Dist, Dist) {
    assert!(universe >= 2);
    assert!((0.0..1.0).contains(&sharpness));
    let rest = (1.0 - sharpness) / (universe as f64 - 1.0);
    let mut probs = vec![rest; universe];
    probs[0] = sharpness;
    (
        Dist::new(probs).expect("constructed to normalize"),
        Dist::uniform(universe),
    )
}

/// The public seed of trial `t` under a point's `seed` — a fixed function
/// of `(seed, t)` alone, so trial ranges can run anywhere.
fn trial_public_seed(seed: u64, t: u64) -> u64 {
    seed.wrapping_add(t).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs trials `range` of one `(universe, sharpness)` point through the
/// batched sampler.
pub fn run_trial_range(
    &(universe, sharpness): &(usize, f64),
    seed: u64,
    range: Range<u64>,
) -> Partial {
    let config = SamplerConfig::default();
    let (eta, nu) = controlled_pair(universe, sharpness);
    let seeds: Vec<u64> = range.clone().map(|t| trial_public_seed(seed, t)).collect();
    let mut bits = 0u64;
    let mut agreed = 0u64;
    for e in exchange_many(&eta, &nu, &config, &seeds) {
        bits += e.bits as u64;
        agreed += u64::from(e.agreed());
    }
    Partial {
        bits,
        agreed,
        trials: range.end - range.start,
    }
}

/// Assembles the [`Row`] for a point from its merged trial accumulators.
fn finish_row(&(universe, sharpness): &(usize, f64), mc: Partial) -> Row {
    let (eta, nu) = controlled_pair(universe, sharpness);
    let d = kl(&eta, &nu);
    Row {
        universe,
        divergence: d,
        mean_bits: mc.bits as f64 / mc.trials as f64,
        agreement: mc.agreed as f64 / mc.trials as f64,
        bound: lemma7_bound(d),
        naive_bits: (universe as f64).log2(),
    }
}

/// Runs one `(universe, sharpness)` point: `trials` independent protocol
/// executions with distinct public seeds derived from `seed`.
pub fn run_point(point: &(usize, f64), trials: u64, seed: u64) -> Row {
    finish_row(point, run_trial_range(point, seed, 0..trials))
}

/// Runs the sweep: point `i` computes under `point_seed(seed, i)` (thin
/// wrapper over [`run_point`]).
pub fn run(grid: &[(usize, f64)], trials: u64, seed: u64) -> Vec<Row> {
    grid.iter()
        .enumerate()
        .map(|(i, p)| run_point(p, trials, point_seed(seed, i)))
        .collect()
}

/// The grid used in `EXPERIMENTS.md`.
pub fn default_grid() -> Vec<(usize, f64)> {
    let mut g = Vec::new();
    for &u in &[64usize, 512, 4096] {
        for &s in &[1.0 / u as f64, 0.1, 0.5, 0.9, 0.99] {
            g.push((u, s));
        }
    }
    g
}

/// Builds the E6 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new([
        "|U|",
        "D(eta||nu)",
        "mean bits",
        "Lemma7 bound",
        "naive log2|U|",
        "agreement",
    ]);
    for r in rows {
        t.row([
            r.universe.to_string(),
            f(r.divergence, 3),
            f(r.mean_bits, 2),
            f(r.bound, 2),
            f(r.naive_bits, 1),
            f(r.agreement, 4),
        ]);
    }
    t
}

/// Renders the E6 table as text.
pub fn render(rows: &[Row]) -> String {
    table(rows).render()
}

/// E6 as a registry [`Experiment`].
pub struct E6;

impl Experiment for E6 {
    fn id(&self) -> &'static str {
        "e6"
    }

    fn title(&self) -> &'static str {
        "E6 — Lemma 7: literal one-round sampling protocol"
    }

    fn notes(&self) -> Vec<String> {
        vec![format!(
            "(mean bits vs D(eta||nu) + O(log D); {TRIALS} trials per point)"
        )]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("trials", Json::UInt(TRIALS)), ("seed", Json::UInt(SEED))]
    }

    fn seed(&self) -> u64 {
        SEED
    }

    fn grid(&self) -> Vec<Point> {
        default_grid()
            .iter()
            .enumerate()
            .map(|(i, &(u, s))| Point::new(i, format!("|U|={u}, sharpness={s:.4}")))
            .collect()
    }

    fn run_point(&self, point: &Point, seed: u64) -> PointResult {
        PointResult::new(run_point(&default_grid()[point.index()], TRIALS, seed))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(String::new(), table(&rows))]
    }

    fn splitter(&self) -> Option<&dyn TrialSplit> {
        Some(self)
    }
}

impl TrialSplit for E6 {
    fn trials(&self, _point: &Point) -> u64 {
        TRIALS
    }

    fn chunk(&self) -> u64 {
        // 50-trial sub-jobs: 8 per point — each still big enough to
        // amortize the batch's shared smoothed-ν table.
        50
    }

    fn run_range(&self, point: &Point, point_seed: u64, range: Range<u64>) -> PointResult {
        PointResult::new(run_trial_range(
            &default_grid()[point.index()],
            point_seed,
            range,
        ))
    }

    fn merge(&self, point: &Point, parts: Vec<PointResult>) -> PointResult {
        let mut total = Partial {
            bits: 0,
            agreed: 0,
            trials: 0,
        };
        for part in parts {
            let p = part.downcast::<Partial>();
            total.bits += p.bits;
            total.agreed += p.agreed;
            total.trials += p.trials;
        }
        PointResult::new(finish_row(&default_grid()[point.index()], total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_bounded_by_lemma7_and_beats_naive_when_close() {
        let rows = run(&[(512, 1.0 / 512.0), (512, 0.9)], 300, 3);
        // ν = η (sharpness = uniform): constant bits ≪ log|U| = 9.
        assert!(rows[0].divergence < 1e-9);
        assert!(rows[0].mean_bits < 8.0, "near-zero divergence case");
        for r in &rows {
            assert!(
                r.mean_bits <= r.bound + 1.0,
                "|U|={} D={}: {} > bound {}",
                r.universe,
                r.divergence,
                r.mean_bits,
                r.bound
            );
            assert!(r.agreement > 0.999, "agreement {}", r.agreement);
        }
    }

    #[test]
    fn cost_grows_with_divergence() {
        let rows = run(&[(1024, 0.01), (1024, 0.5), (1024, 0.99)], 200, 9);
        assert!(rows[0].mean_bits < rows[1].mean_bits);
        assert!(rows[1].mean_bits < rows[2].mean_bits);
    }

    #[test]
    fn controlled_pair_divergence_is_monotone_in_sharpness() {
        let d = |s: f64| {
            let (eta, nu) = controlled_pair(256, s);
            kl(&eta, &nu)
        };
        assert!(d(0.1) < d(0.5));
        assert!(d(0.5) < d(0.95));
    }

    #[test]
    fn batched_lane_keeps_the_single_exchange_numbers() {
        // Guards the "numbers must not move" contract: the batched lane's
        // accumulators equal a per-trial loop over the single-seed
        // exchange with the historical seed formula.
        use bci_compression::sampling::exchange;
        let point = (64usize, 0.5f64);
        let seed = point_seed(SEED, 3);
        let config = SamplerConfig::default();
        let (eta, nu) = controlled_pair(point.0, point.1);
        let mut bits = 0u64;
        let mut agreed = 0u64;
        for t in 0..100 {
            let e = exchange(&eta, &nu, &config, trial_public_seed(seed, t));
            bits += e.bits as u64;
            agreed += u64::from(e.agreed());
        }
        let batched = run_trial_range(&point, seed, 0..100);
        assert_eq!(batched.bits, bits);
        assert_eq!(batched.agreed, agreed);
    }

    #[test]
    fn split_trials_merge_back_to_the_whole_point() {
        let point = (512usize, 0.9f64);
        let seed = point_seed(SEED, 8);
        let whole = run_trial_range(&point, seed, 0..200);
        for chunk in [1u64, 50, 64, 200] {
            let mut total = Partial {
                bits: 0,
                agreed: 0,
                trials: 0,
            };
            let mut lo = 0;
            while lo < 200 {
                let hi = (lo + chunk).min(200);
                let part = run_trial_range(&point, seed, lo..hi);
                total.bits += part.bits;
                total.agreed += part.agreed;
                total.trials += part.trials;
                lo = hi;
            }
            assert_eq!(total.bits, whole.bits, "chunk {chunk}");
            assert_eq!(total.agreed, whole.agreed, "chunk {chunk}");
            assert_eq!(total.trials, whole.trials, "chunk {chunk}");
        }
    }
}
