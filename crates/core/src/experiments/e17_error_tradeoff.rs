//! **E17 (extension) — the error–information tradeoff**.
//!
//! Theorem 1 holds "for sufficiently small δ", and the Lemma 5 chain's
//! constants degrade explicitly as the error grows (`π₂(B₀) ≤ C·δ`,
//! `π₂(B₁) ≤ δ/μ(𝒳₂)`). This experiment sweeps the per-player noise of the
//! sequential protocol at fixed `k` and tracks, exactly: the worst-case
//! error, the conditional information cost, and the pointing mass — the
//! quantitative version of "allowing more error buys less information
//! leakage, until the protocol stops pointing at all".

use bci_lowerbound::cic::cic_hard;
use bci_lowerbound::good_transcripts::analyze;
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and::and_function;
use bci_protocols::and_trees::noisy_sequential_and;
use bci_telemetry::Json;

use super::registry::{Experiment, LabeledTable, Point, PointResult};
use crate::table::{f, Table};

/// The player count used in `EXPERIMENTS.md` (enumeration is `2ᵏ`).
pub const K: usize = 14;

/// One noise-level sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Per-player flip probability `ε`.
    pub eps: f64,
    /// Exact worst-case error of the protocol.
    pub error: f64,
    /// Exact `CIC_μ`.
    pub cic: f64,
    /// Lemma 5 pointing mass at threshold `α ≥ k/2`.
    pub pointing_mass: f64,
}

/// The noise levels used in `EXPERIMENTS.md`.
pub fn default_epsilons() -> Vec<f64> {
    vec![0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5]
}

/// Computes one noise level at fixed `k` (exact; no randomness). `k ≤ 20`
/// because the worst-case-error enumeration is `2ᵏ`.
pub fn run_point(k: usize, &eps: &f64) -> Row {
    assert!(k <= 20, "worst-case error enumeration limited to k ≤ 20");
    let mu = HardDist::new(k);
    let tree = noisy_sequential_and(k, eps);
    Row {
        eps,
        error: tree.worst_case_error(|x| usize::from(and_function(x))),
        cic: cic_hard(&tree, &mu),
        pointing_mass: analyze(&tree, 20.0, 0.5).pointing_mass,
    }
}

/// Runs the sweep at fixed `k` (thin wrapper over [`run_point`]).
pub fn run(k: usize, epsilons: &[f64]) -> Vec<Row> {
    epsilons.iter().map(|eps| run_point(k, eps)).collect()
}

/// Builds the E17 table.
pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(["eps", "worst-case error", "CIC", "pointing mass"]);
    for r in rows {
        t.row([
            format!("{:.0e}", r.eps),
            f(r.error, 4),
            f(r.cic, 4),
            f(r.pointing_mass, 4),
        ]);
    }
    t
}

/// Renders the E17 table with its parameter preamble.
pub fn render(k: usize, rows: &[Row]) -> String {
    format!("k = {k}\n{}", table(rows).render())
}

/// E17 as a registry [`Experiment`].
pub struct E17;

impl Experiment for E17 {
    fn id(&self) -> &'static str {
        "e17"
    }

    fn title(&self) -> &'static str {
        "E17 — error vs information vs pointing for noisy AND_k"
    }

    fn notes(&self) -> Vec<String> {
        vec!["(exact worst-case error, exact CIC, Lemma 5 pointing mass)".into()]
    }

    fn meta(&self) -> Vec<(&'static str, Json)> {
        vec![("k", Json::UInt(K as u64))]
    }

    fn grid(&self) -> Vec<Point> {
        default_epsilons()
            .iter()
            .enumerate()
            .map(|(i, eps)| Point::new(i, format!("eps={eps:.0e}")))
            .collect()
    }

    fn run_point(&self, point: &Point, _seed: u64) -> PointResult {
        PointResult::new(run_point(K, &default_epsilons()[point.index()]))
    }

    fn tables(&self, results: &[PointResult]) -> Vec<LabeledTable> {
        let rows: Vec<Row> = results
            .iter()
            .map(|r| r.downcast::<Row>().clone())
            .collect();
        vec![(format!("k = {K}"), table(&rows))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn information_decreases_as_error_grows() {
        let rows = run(12, &[0.0, 0.01, 0.1, 0.5]);
        for w in rows.windows(2) {
            assert!(w[1].error >= w[0].error - 1e-12, "error monotone");
            assert!(w[1].cic <= w[0].cic + 1e-9, "information monotone down");
        }
        // At ε = 1/2 the messages are pure noise.
        let last = rows.last().expect("nonempty");
        assert!(last.cic < 1e-9, "CIC at pure noise: {}", last.cic);
        assert!(last.pointing_mass < 1e-9);
    }

    #[test]
    fn small_error_preserves_pointing() {
        let rows = run(16, &[1e-4, 0.25]);
        assert!(rows[0].pointing_mass > 0.95);
        assert!(rows[1].pointing_mass < rows[0].pointing_mass);
    }

    #[test]
    fn zero_noise_matches_exact_protocol() {
        use bci_protocols::and_trees::sequential_and;
        let rows = run(10, &[0.0]);
        assert_eq!(rows[0].error, 0.0);
        let exact = cic_hard(&sequential_and(10), &HardDist::new(10));
        assert!((rows[0].cic - exact).abs() < 1e-12);
    }
}
