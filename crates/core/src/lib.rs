#![warn(missing_docs)]

//! Umbrella API for the broadcast-model information-complexity library.
//!
//! This crate ties the workspace together:
//!
//! * re-exports of the sub-crates under stable names;
//! * [`table`] — plain-text table rendering used by every experiment binary;
//! * [`experiments`] — one driver per result in the paper, each producing
//!   structured rows *and* a rendered table. The `bci-bench` binaries and
//!   the integration tests both call these drivers, so the numbers in
//!   `EXPERIMENTS.md` are regenerable with one command per table.
//!
//! # Quickstart
//!
//! ```
//! use bci_core::experiments::e2_and_cic;
//!
//! // Regenerate (a small slice of) the AND_k information-cost table.
//! let rows = e2_and_cic::run(&[4, 16, 64]);
//! for r in &rows {
//!     assert!(r.cic > 0.0);
//!     assert!(r.cic_over_log_k > 0.2 && r.cic_over_log_k < 1.5);
//! }
//! println!("{}", e2_and_cic::render(&rows));
//! ```

pub mod experiments;
pub mod table;

pub use bci_blackboard as blackboard;
pub use bci_compression as compression;
pub use bci_encoding as encoding;
pub use bci_info as info;
pub use bci_lowerbound as lowerbound;
pub use bci_protocols as protocols;
