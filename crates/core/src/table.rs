//! Minimal plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A column-aligned text table.
///
/// # Example
///
/// ```
/// use bci_core::table::Table;
///
/// let mut t = Table::new(["k", "CIC", "CIC/log k"]);
/// t.row(["8", "1.95", "0.65"]);
/// t.row(["64", "4.10", "0.68"]);
/// let s = t.render();
/// assert!(s.contains("CIC/log k"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with padded columns and a header rule.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers, &widths);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row, &widths);
        }
        out
    }
}

/// Formats a float with `prec` decimals (shorthand used by every driver).
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["12345", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "rows align with header");
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(-0.5, 3), "-0.500");
    }

    #[test]
    fn accessors_expose_structure() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.rows(), [["1", "2"]]);
    }
}
