//! Integration tests of the `bci` CLI binary: every subcommand runs, prints
//! what it promises, and bad invocations fail with usage help.

use std::process::Command;

fn bci(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bci"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn disj_subcommand_prints_all_three_protocols() {
    let out = bci(&["disj", "--n", "512", "--k", "8", "--seed", "3"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("naive"));
    assert!(stdout.contains("batched (Thm 2)"));
    assert!(stdout.contains("coordinate-wise AND"));
    assert!(stdout.contains("disjoint = true"));
}

#[test]
fn cic_subcommand_reports_the_ratio() {
    let out = bci(&["cic", "--k", "64"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("CIC_mu(sequential AND_64)"));
    assert!(stdout.contains("CIC / log2(k)"));
}

#[test]
fn gap_subcommand_reports_both_sides() {
    let out = bci(&["gap", "--k", "256"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("external information"));
    assert!(stdout.contains("communication bound"));
}

#[test]
fn sample_subcommand_respects_lemma7() {
    let out = bci(&[
        "sample",
        "--universe",
        "64",
        "--sharpness",
        "0.5",
        "--trials",
        "50",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("agreement     = 50/50"), "{stdout}");
}

#[test]
fn sparse_and_amortize_and_union_run() {
    for args in [
        vec!["sparse", "--n", "65536", "--s", "32", "--trials", "5"],
        vec!["amortize", "--k", "8", "--copies", "16", "--trials", "3"],
        vec!["union", "--n", "256", "--k", "4"],
    ] {
        let out = bci(&args);
        assert!(out.status.success(), "{args:?}: {out:?}");
    }
}

#[test]
fn help_prints_usage() {
    let out = bci(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .expect("utf8")
        .contains("USAGE"));
}

#[test]
fn bad_invocations_fail_with_usage() {
    for args in [
        vec![],                                    // no command
        vec!["frobnicate"],                        // unknown command
        vec!["disj"],                              // missing required options
        vec!["disj", "--n", "banana", "--k", "4"], // unparsable value
        vec!["disj", "--n"],                       // dangling option
    ] {
        let out = bci(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("USAGE"), "{args:?}: {stderr}");
    }
}
