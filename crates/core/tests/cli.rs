//! Integration tests of the `bci` CLI binary: every subcommand runs, prints
//! what it promises, and bad invocations fail with usage help.

use std::process::Command;

fn bci(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bci"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn disj_subcommand_prints_all_three_protocols() {
    let out = bci(&["disj", "--n", "512", "--k", "8", "--seed", "3"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("naive"));
    assert!(stdout.contains("batched (Thm 2)"));
    assert!(stdout.contains("coordinate-wise AND"));
    assert!(stdout.contains("disjoint = true"));
}

#[test]
fn cic_subcommand_reports_the_ratio() {
    let out = bci(&["cic", "--k", "64"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("CIC_mu(sequential AND_64)"));
    assert!(stdout.contains("CIC / log2(k)"));
}

#[test]
fn gap_subcommand_reports_both_sides() {
    let out = bci(&["gap", "--k", "256"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("external information"));
    assert!(stdout.contains("communication bound"));
}

#[test]
fn sample_subcommand_respects_lemma7() {
    let out = bci(&[
        "sample",
        "--universe",
        "64",
        "--sharpness",
        "0.5",
        "--trials",
        "50",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("agreement     = 50/50"), "{stdout}");
}

#[test]
fn sparse_and_amortize_and_union_run() {
    for args in [
        vec!["sparse", "--n", "65536", "--s", "32", "--trials", "5"],
        vec!["amortize", "--k", "8", "--copies", "16", "--trials", "3"],
        vec!["union", "--n", "256", "--k", "4"],
    ] {
        let out = bci(&args);
        assert!(out.status.success(), "{args:?}: {out:?}");
    }
}

#[test]
fn help_prints_usage() {
    let out = bci(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .expect("utf8")
        .contains("USAGE"));
}

#[test]
fn zero_workers_is_rejected_with_a_clear_error() {
    // `--workers 0` would deadlock a pool; both pooled entry points must
    // refuse it up front instead of hanging.
    for args in [
        vec!["fabric", "--sessions", "4", "--workers", "0"],
        vec!["experiments", "run", "e2", "--workers", "0"],
        vec!["trace", "--workers", "0"],
    ] {
        let out = bci(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(
            stderr.contains("--workers") && stderr.contains("positive"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn netrun_verifies_transcripts_and_writes_bench_json() {
    let dir = std::env::temp_dir().join(format!("bci-netrun-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("netrun.json");
    let json_path = json.to_str().expect("utf8 path");
    let out = bci(&[
        "netrun",
        "--points",
        "64x3,96x4",
        "--sessions",
        "2",
        "--seed",
        "9",
        "--json",
        json_path,
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("overhead x"), "{stdout}");
    assert!(stdout.contains("match"), "{stdout}");
    assert!(!stdout.contains("MISMATCH"), "{stdout}");
    let doc = std::fs::read_to_string(&json).expect("json written");
    assert!(doc.contains("\"schema\":\"bci.bench.v1\""), "{doc}");
    assert!(doc.contains("\"experiment\":\"netrun\""), "{doc}");
    assert!(doc.contains("transcript bits"), "{doc}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn netrun_rejects_bad_point_specs() {
    for bad in ["64", "64x0", "0x4", "64xfour", "64x4,,"] {
        let out = bci(&["netrun", "--points", bad]);
        assert!(!out.status.success(), "--points {bad} should fail");
    }
}

#[test]
fn load_runs_the_mux_harness_and_writes_bench_json() {
    let dir = std::env::temp_dir().join(format!("bci-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json = dir.join("load.json");
    let json_path = json.to_str().expect("utf8 path");
    let out = bci(&[
        "load",
        "--sessions",
        "60",
        "--players",
        "3",
        "--n",
        "48",
        "--seed",
        "4",
        "--compare",
        "--json",
        json_path,
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("mux"), "{stdout}");
    assert!(stdout.contains("thread-per-conn"), "{stdout}");
    assert!(stdout.contains("match"), "{stdout}");
    assert!(!stdout.contains("MISMATCH"), "{stdout}");
    let doc = std::fs::read_to_string(&json).expect("json written");
    assert!(doc.contains("\"schema\":\"bci.bench.v1\""), "{doc}");
    assert!(doc.contains("\"experiment\":\"load\""), "{doc}");
    assert!(doc.contains("\"mux\""), "{doc}");
    assert!(doc.contains("\"thread-per-conn\""), "{doc}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_and_serve_reject_unusable_limits() {
    // Zero / absurd heartbeat miss limits and frame caps must be refused
    // up front (NetConfig::validate), not discovered mid-run.
    for bad in [
        vec![
            "load",
            "--sessions",
            "2",
            "--players",
            "2",
            "--miss-limit",
            "0",
        ],
        vec![
            "load",
            "--sessions",
            "2",
            "--players",
            "2",
            "--miss-limit",
            "100000",
        ],
        vec![
            "load",
            "--sessions",
            "2",
            "--players",
            "2",
            "--max-frame-len",
            "3",
        ],
        vec![
            "load",
            "--sessions",
            "2",
            "--players",
            "2",
            "--max-frame-len",
            "2000000000",
        ],
        vec![
            "load",
            "--sessions",
            "2",
            "--players",
            "2",
            "--inflight",
            "0",
        ],
        vec!["load", "--sessions", "0", "--players", "2"],
        vec![
            "serve",
            "--port",
            "0",
            "--players",
            "2",
            "--mux",
            "--miss-limit",
            "0",
        ],
        vec![
            "serve",
            "--port",
            "0",
            "--players",
            "2",
            "--mux",
            "--max-frame-len",
            "1",
        ],
        vec![
            "serve",
            "--port",
            "0",
            "--players",
            "2",
            "--mux",
            "--inflight",
            "0",
        ],
    ] {
        let out = bci(&bad);
        assert!(!out.status.success(), "{bad:?} should be rejected");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("error"), "{bad:?}: {stderr}");
    }
}

#[test]
fn load_coordinator_flag_is_validated() {
    let out = bci(&[
        "load",
        "--sessions",
        "2",
        "--players",
        "2",
        "--coordinator",
        "carrier-pigeon",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown coordinator"), "{stderr}");
}

#[test]
fn bad_invocations_fail_with_usage() {
    for args in [
        vec![],                                    // no command
        vec!["frobnicate"],                        // unknown command
        vec!["disj"],                              // missing required options
        vec!["disj", "--n", "banana", "--k", "4"], // unparsable value
        vec!["disj", "--n"],                       // dangling option
    ] {
        let out = bci(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("USAGE"), "{args:?}: {stderr}");
    }
}
