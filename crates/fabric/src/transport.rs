//! How a session's board writes are published and observed.
//!
//! A [`Transport`] executes one protocol session and decides *where* each
//! player's `message` computation runs:
//!
//! * [`InProcessTransport`] — the whole session runs on the calling worker
//!   thread, like [`bci_blackboard::protocol::run`] plus deadlines and
//!   fault emulation. Zero synchronization overhead; the baseline.
//! * [`ChannelTransport`] — each player runs on its own thread and a
//!   *sequencer* (the calling thread) owns the board. Turns round-trip
//!   through channels: the sequencer ships the current board and the
//!   session RNG to the speaking player, the player computes its message
//!   and ships bits and RNG back, and the sequencer appends the write.
//!   Serializing writes through the sequencer keeps the board append order
//!   — and, because the RNG itself makes the round trip, the randomness
//!   stream — identical to the serial executor, so transcripts are
//!   bit-for-bit reproducible across transports.
//! * `TcpTransport` (in the `bci-net` crate) — the same sequencer wiring
//!   over real TCP sockets: a coordinator owns the board and player
//!   clients exchange length-prefixed frames. Supporting it is why
//!   [`Transport::run_session`] requires `P::Input: Wire` and
//!   `P::Output: Wire`: inputs, messages, and outputs must have a
//!   canonical byte encoding to cross a socket. The in-process transports
//!   never serialize anything; the bound only pins down *encodability*.
//!
//! Both transports honor per-session deadlines and the fault kinds in
//! [`FaultKind`], and both contain failures:
//! a crashed or panicking player aborts *its* session with a structured
//! [`SessionOutcome`], never the worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use bci_blackboard::board::Board;
use bci_blackboard::engine::{Grant, Step, TurnEngine};
use bci_blackboard::protocol::Protocol;
use bci_encoding::bitio::BitVec;
use bci_encoding::wire::Wire;
use bci_telemetry::{Json, Recorder, SpanKind};
use rand_chacha::ChaCha8Rng;

use crate::session::{FaultKind, FaultSpec, SessionOutcome, SessionResult};

/// A recorder that is always off; the default for contexts built by hand.
pub static DISABLED_RECORDER: Recorder = Recorder::disabled();

/// Hard cap on how long a session may stall waiting for a player when no
/// deadline was configured. Keeps a dropped wakeup from hanging a worker
/// forever.
pub const DEFAULT_STALL_CAP: Duration = Duration::from_secs(60);

/// Per-session execution parameters handed to a transport.
#[derive(Debug, Clone)]
pub struct SessionContext<'a> {
    /// The session's id (used only for reporting).
    pub session_id: u64,
    /// Wall-clock budget for the whole session, if any.
    pub deadline: Option<Duration>,
    /// Faults to inject, already filtered down to this session.
    pub faults: &'a [FaultSpec],
    /// Telemetry sink for hop events. Use [`DISABLED_RECORDER`] when not
    /// tracing; the recorder observes only and never perturbs execution.
    pub recorder: &'a Recorder,
}

impl SessionContext<'_> {
    /// Emits one `hop` point event (board write) when event capture is on.
    /// Public so out-of-crate transports (the `bci-net` TCP backend) emit
    /// the same per-write event stream as the in-process transports.
    pub fn record_hop(&self, hop: usize, speaker: usize, msg_bits: usize, board: &Board) {
        if self.recorder.events_enabled() {
            self.recorder.point(
                SpanKind::Hop,
                self.session_id,
                vec![
                    ("hop", Json::UInt(hop as u64)),
                    ("speaker", Json::UInt(speaker as u64)),
                    ("msg_bits", Json::UInt(msg_bits as u64)),
                    ("board_bits", Json::UInt(board.total_bits() as u64)),
                ],
            );
        }
    }
    fn fault_for(&self, player: usize, kind_matches: impl Fn(&FaultKind) -> bool) -> bool {
        self.faults
            .iter()
            .any(|f| f.player == player && kind_matches(&f.kind))
    }

    fn slow_delay(&self, player: usize) -> Option<Duration> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::SlowPlayer(d) if f.player == player => Some(d),
            _ => None,
        })
    }
}

/// Executes one session of a protocol.
pub trait Transport: Sync {
    /// Runs `protocol` on `inputs` with the session RNG `rng`, honoring the
    /// deadline and faults in `ctx`. Never panics on injected faults: the
    /// failure mode is encoded in the returned
    /// [`SessionOutcome`].
    ///
    /// The [`Wire`] bounds exist for transports that cross a process
    /// boundary (the `bci-net` TCP backend ships inputs and outputs as
    /// bytes); in-process transports never invoke them.
    fn run_session<P>(
        &self,
        protocol: &P,
        inputs: &[P::Input],
        rng: ChaCha8Rng,
        ctx: &SessionContext<'_>,
    ) -> SessionResult<P::Output>
    where
        P: Protocol + Sync,
        P::Input: Sync + Wire,
        P::Output: Wire;
}

/// Drives one session's [`TurnEngine`] to completion, with `perform`
/// supplying the I/O half of the contract: given the granted turn and the
/// current board, produce the speaker's bits and the handed-back session
/// RNG, or a terminal [`SessionOutcome`] (crash, timeout) that ends the
/// session.
///
/// This is the single sequencer loop shared by both in-process
/// transports — and, structurally, by the TCP drivers in `bci-net` /
/// `bci-mux`: deadline checks, engine polling, violation → outcome
/// mapping, hop telemetry, and result sealing all live here, so every
/// fault path funnels through [`SessionResult::seal`].
fn drive_session<P, F>(
    protocol: &P,
    input_count: usize,
    rng: &ChaCha8Rng,
    ctx: &SessionContext<'_>,
    start: Instant,
    mut perform: F,
) -> SessionResult<P::Output>
where
    P: Protocol,
    F: FnMut(&Grant, &Board) -> Result<(BitVec, ChaCha8Rng), SessionOutcome>,
{
    let mut engine = match TurnEngine::with_rng(protocol, input_count, rng) {
        Ok(engine) => engine,
        Err(violation) => {
            return SessionResult::seal(violation.into(), None, Board::new(), start.elapsed())
        }
    };
    loop {
        if let Some(deadline) = ctx.deadline {
            if start.elapsed() >= deadline {
                return SessionResult::seal(
                    SessionOutcome::TimedOut,
                    None,
                    engine.into_board(),
                    start.elapsed(),
                );
            }
        }
        let grant = match engine.poll() {
            Ok(Step::Grant(grant)) => grant,
            Ok(Step::Halted) => break,
            Err(violation) => {
                return SessionResult::seal(
                    violation.into(),
                    None,
                    engine.into_board(),
                    start.elapsed(),
                )
            }
        };
        let (bits, rng_back) = match perform(&grant, engine.board()) {
            Ok(reply) => reply,
            Err(outcome) => {
                return SessionResult::seal(outcome, None, engine.into_board(), start.elapsed())
            }
        };
        let msg_bits = bits.len();
        if let Err(violation) = engine.apply(grant.speaker, bits, Some(&rng_back.state_bytes())) {
            return SessionResult::seal(
                violation.into(),
                None,
                engine.into_board(),
                start.elapsed(),
            );
        }
        ctx.record_hop(grant.turn, grant.speaker, msg_bits, engine.board());
    }
    let output = engine.output();
    SessionResult::seal(
        SessionOutcome::Completed,
        Some(output),
        engine.into_board(),
        start.elapsed(),
    )
}

/// Runs the whole session on the calling thread.
///
/// Faults are emulated: a crashed player aborts the session the moment it
/// is scheduled to speak; a dropped wakeup stalls the session (sleeping
/// out the remaining deadline) exactly as the channel transport would
/// observe it; a slow player sleeps before each message.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessTransport;

impl Transport for InProcessTransport {
    fn run_session<P>(
        &self,
        protocol: &P,
        inputs: &[P::Input],
        rng: ChaCha8Rng,
        ctx: &SessionContext<'_>,
    ) -> SessionResult<P::Output>
    where
        P: Protocol + Sync,
        P::Input: Sync + Wire,
        P::Output: Wire,
    {
        let start = Instant::now();
        drive_session(protocol, inputs.len(), &rng, ctx, start, |grant, board| {
            let speaker = grant.speaker;
            if ctx.fault_for(speaker, |k| matches!(k, FaultKind::CrashedPlayer)) {
                return Err(SessionOutcome::Aborted(format!("player {speaker} crashed")));
            }
            if ctx.fault_for(speaker, |k| matches!(k, FaultKind::DroppedWakeup)) {
                // The wakeup is lost: nothing happens until the deadline.
                let stall = ctx
                    .deadline
                    .map(|d| d.saturating_sub(start.elapsed()))
                    .unwrap_or(DEFAULT_STALL_CAP);
                std::thread::sleep(stall);
                return Err(SessionOutcome::TimedOut);
            }
            if let Some(delay) = ctx.slow_delay(speaker) {
                std::thread::sleep(delay);
            }
            let mut rng = grant.resume_rng();
            match catch_unwind(AssertUnwindSafe(|| {
                protocol.message(speaker, &inputs[speaker], board, &mut rng)
            })) {
                Ok(bits) => Ok((bits, rng)),
                Err(_) => Err(SessionOutcome::Aborted(format!(
                    "player {speaker} panicked"
                ))),
            }
        })
    }
}

/// A turn shipped from the sequencer to the speaking player.
struct TurnMsg {
    board: Board,
    rng: ChaCha8Rng,
}

/// The player's answer: the bits to write and the RNG handed back.
struct Reply {
    bits: BitVec,
    rng: ChaCha8Rng,
}

/// Runs each player on its own thread, writes serialized by a sequencer.
///
/// The calling thread acts as the sequencer: it owns the board, asks the
/// protocol whose turn it is, and round-trips `(board, rng)` through the
/// speaking player's channel. Player threads only ever see the board
/// snapshots the sequencer publishes, so the transcript order is exactly
/// the serial one, and since the session RNG travels with the turn, the
/// randomness stream is consumed in the same order too — the foundation of
/// the fabric's determinism guarantee.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelTransport;

impl Transport for ChannelTransport {
    fn run_session<P>(
        &self,
        protocol: &P,
        inputs: &[P::Input],
        rng: ChaCha8Rng,
        ctx: &SessionContext<'_>,
    ) -> SessionResult<P::Output>
    where
        P: Protocol + Sync,
        P::Input: Sync + Wire,
        P::Output: Wire,
    {
        let k = protocol.num_players();
        let start = Instant::now();

        std::thread::scope(|scope| {
            let mut turn_txs = Vec::with_capacity(k);
            let mut reply_rxs = Vec::with_capacity(k);
            for (player, input) in inputs.iter().enumerate() {
                let (turn_tx, turn_rx) = mpsc::channel::<TurnMsg>();
                let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
                turn_txs.push(turn_tx);
                reply_rxs.push(reply_rx);
                let crashed = ctx.fault_for(player, |f| matches!(f, FaultKind::CrashedPlayer));
                let mut drop_next =
                    ctx.fault_for(player, |f| matches!(f, FaultKind::DroppedWakeup));
                let slow = ctx.slow_delay(player);
                scope.spawn(move || {
                    while let Ok(TurnMsg { board, mut rng }) = turn_rx.recv() {
                        if crashed {
                            // Die without replying; the dropped reply
                            // channel tells the sequencer we hung up.
                            return;
                        }
                        if drop_next {
                            // The wakeup is lost: stay alive, never answer
                            // this turn.
                            drop_next = false;
                            continue;
                        }
                        if let Some(delay) = slow {
                            std::thread::sleep(delay);
                        }
                        let bits = match catch_unwind(AssertUnwindSafe(|| {
                            protocol.message(player, input, &board, &mut rng)
                        })) {
                            Ok(bits) => bits,
                            Err(_) => return, // hangup ⇒ sequencer aborts
                        };
                        if reply_tx.send(Reply { bits, rng }).is_err() {
                            return; // session ended while we worked
                        }
                    }
                });
            }

            drive_session(protocol, inputs.len(), &rng, ctx, start, |grant, board| {
                let speaker = grant.speaker;
                let turn = TurnMsg {
                    board: board.clone(),
                    // The engine parks the RNG between turns and lends it
                    // out with each grant, so the state the player resumes
                    // from is exactly the one the previous reply returned.
                    rng: grant.resume_rng(),
                };
                if turn_txs[speaker].send(turn).is_err() {
                    return Err(SessionOutcome::Aborted(format!("player {speaker} crashed")));
                }
                let wait = ctx
                    .deadline
                    .map(|d| d.saturating_sub(start.elapsed()))
                    .unwrap_or(DEFAULT_STALL_CAP);
                match reply_rxs[speaker].recv_timeout(wait) {
                    Ok(Reply { bits, rng }) => Ok((bits, rng)),
                    Err(mpsc::RecvTimeoutError::Timeout) => Err(SessionOutcome::TimedOut),
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        Err(SessionOutcome::Aborted(format!("player {speaker} crashed")))
                    }
                }
            })
            // `turn_txs` drop here: player loops see the hangup and exit,
            // and the scope joins them before returning.
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bci_blackboard::runner::derive_trial_rng;
    use bci_blackboard::PlayerId;
    use bci_protocols::and::SequentialAnd;
    use bci_protocols::disj::broadcast::BroadcastDisj;
    use bci_protocols::workload;
    use rand::{Rng, RngCore, SeedableRng};

    fn no_faults(id: u64) -> SessionContext<'static> {
        SessionContext {
            session_id: id,
            deadline: Some(Duration::from_secs(10)),
            faults: &[],
            recorder: &DISABLED_RECORDER,
        }
    }

    #[test]
    fn both_transports_match_the_serial_executor() {
        let proto = BroadcastDisj::new(120, 5);
        for trial in 0..10u64 {
            let mut sample_rng: ChaCha8Rng = derive_trial_rng(3, trial);
            let inputs = workload::random_sets(120, 5, 0.7, &mut sample_rng);

            let serial = {
                let mut rng = sample_rng.clone();
                bci_blackboard::protocol::run(&proto, &inputs, &mut rng)
            };
            let inproc = InProcessTransport.run_session(
                &proto,
                &inputs,
                sample_rng.clone(),
                &no_faults(trial),
            );
            let chan = ChannelTransport.run_session(
                &proto,
                &inputs,
                sample_rng.clone(),
                &no_faults(trial),
            );

            assert_eq!(inproc.outcome, SessionOutcome::Completed);
            assert_eq!(chan.outcome, SessionOutcome::Completed);
            assert_eq!(inproc.board, serial.board, "trial {trial}");
            assert_eq!(chan.board, serial.board, "trial {trial}");
            assert_eq!(inproc.output, Some(serial.output));
            assert_eq!(chan.output, Some(serial.output));
            assert_eq!(chan.bits_written, serial.bits_written);
        }
    }

    /// A protocol that consumes randomness in every message, to prove the
    /// RNG round trip preserves the stream exactly.
    struct NoisyEcho {
        k: usize,
    }

    impl Protocol for NoisyEcho {
        type Input = bool;
        type Output = usize;

        fn num_players(&self) -> usize {
            self.k
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            (board.messages().len() < 2 * self.k).then_some(board.messages().len() % self.k)
        }

        fn message(
            &self,
            _player: PlayerId,
            input: &bool,
            _board: &Board,
            rng: &mut dyn RngCore,
        ) -> BitVec {
            let coin = rng.random_bool(0.5);
            BitVec::from_bools(&[*input ^ coin, coin])
        }

        fn output(&self, board: &Board) -> usize {
            board
                .messages()
                .iter()
                .filter(|m| m.bits.get(0) == Some(true))
                .count()
        }
    }

    #[test]
    fn channel_transport_preserves_the_randomness_stream() {
        let proto = NoisyEcho { k: 4 };
        let inputs = vec![true, false, true, true];
        for seed in 0..20u64 {
            let serial = {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                bci_blackboard::protocol::run(&proto, &inputs, &mut rng)
            };
            let chan = ChannelTransport.run_session(
                &proto,
                &inputs,
                ChaCha8Rng::seed_from_u64(seed),
                &no_faults(seed),
            );
            assert_eq!(chan.board, serial.board, "seed {seed}");
            assert_eq!(chan.output, Some(serial.output));
        }
    }

    #[test]
    fn crashed_player_aborts_gracefully() {
        let faults = [FaultSpec {
            kind: FaultKind::CrashedPlayer,
            player: 2,
            sessions: crate::session::SessionSelector::All,
        }];
        let ctx = SessionContext {
            session_id: 0,
            deadline: Some(Duration::from_secs(5)),
            faults: &faults,
            recorder: &DISABLED_RECORDER,
        };
        let proto = SequentialAnd::new(4);
        let inputs = vec![true; 4];
        for result in [
            ChannelTransport.run_session(&proto, &inputs, ChaCha8Rng::seed_from_u64(0), &ctx),
            InProcessTransport.run_session(&proto, &inputs, ChaCha8Rng::seed_from_u64(0), &ctx),
        ] {
            match &result.outcome {
                SessionOutcome::Aborted(reason) => {
                    assert!(reason.contains("player 2"), "reason: {reason}")
                }
                other => panic!("expected abort, got {other:?}"),
            }
            assert!(result.output.is_none());
            // Players 0 and 1 got their writes in before the crash.
            assert_eq!(result.board.messages().len(), 2);
        }
    }

    #[test]
    fn dropped_wakeup_times_out_within_the_deadline() {
        let faults = [FaultSpec {
            kind: FaultKind::DroppedWakeup,
            player: 0,
            sessions: crate::session::SessionSelector::All,
        }];
        let deadline = Duration::from_millis(50);
        let ctx = SessionContext {
            session_id: 0,
            deadline: Some(deadline),
            faults: &faults,
            recorder: &DISABLED_RECORDER,
        };
        let proto = SequentialAnd::new(3);
        let inputs = vec![true; 3];
        let started = Instant::now();
        let result =
            ChannelTransport.run_session(&proto, &inputs, ChaCha8Rng::seed_from_u64(1), &ctx);
        assert_eq!(result.outcome, SessionOutcome::TimedOut);
        assert!(result.output.is_none());
        assert!(
            started.elapsed() < deadline + Duration::from_secs(2),
            "timeout honored promptly"
        );
    }

    #[test]
    fn slow_player_exceeds_a_tight_deadline() {
        // Player 1 naps longer than the whole session budget: the sequencer
        // gives up waiting for its reply at the deadline.
        let faults = [FaultSpec {
            kind: FaultKind::SlowPlayer(Duration::from_millis(80)),
            player: 1,
            sessions: crate::session::SessionSelector::All,
        }];
        let ctx = SessionContext {
            session_id: 0,
            deadline: Some(Duration::from_millis(30)),
            faults: &faults,
            recorder: &DISABLED_RECORDER,
        };
        let proto = SequentialAnd::new(4);
        let inputs = vec![true; 4];
        for result in [
            ChannelTransport.run_session(&proto, &inputs, ChaCha8Rng::seed_from_u64(2), &ctx),
            InProcessTransport.run_session(&proto, &inputs, ChaCha8Rng::seed_from_u64(2), &ctx),
        ] {
            assert_eq!(result.outcome, SessionOutcome::TimedOut);
            assert!(result.output.is_none());
        }
    }

    #[test]
    fn slow_player_completes_under_a_generous_deadline() {
        let faults = [FaultSpec {
            kind: FaultKind::SlowPlayer(Duration::from_millis(5)),
            player: 0,
            sessions: crate::session::SessionSelector::All,
        }];
        let ctx = SessionContext {
            session_id: 0,
            deadline: Some(Duration::from_secs(10)),
            faults: &faults,
            recorder: &DISABLED_RECORDER,
        };
        let proto = SequentialAnd::new(3);
        let inputs = vec![true; 3];
        let result =
            ChannelTransport.run_session(&proto, &inputs, ChaCha8Rng::seed_from_u64(3), &ctx);
        assert_eq!(result.outcome, SessionOutcome::Completed);
        assert_eq!(result.output, Some(true));
        assert!(result.latency >= Duration::from_millis(5));
    }

    /// A protocol whose player 1 panics when asked to speak.
    struct PanickyPlayer;

    impl Protocol for PanickyPlayer {
        type Input = ();
        type Output = ();

        fn num_players(&self) -> usize {
            2
        }

        fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
            (board.messages().len() < 2).then_some(board.messages().len())
        }

        fn message(
            &self,
            player: PlayerId,
            _input: &(),
            _board: &Board,
            _rng: &mut dyn RngCore,
        ) -> BitVec {
            assert!(player != 1, "player 1 always fails");
            BitVec::from_bools(&[true])
        }

        fn output(&self, _board: &Board) {}
    }

    #[test]
    fn player_panic_is_contained_as_abort() {
        let ctx = no_faults(0);
        for result in [
            ChannelTransport.run_session(
                &PanickyPlayer,
                &[(), ()],
                ChaCha8Rng::seed_from_u64(0),
                &ctx,
            ),
            InProcessTransport.run_session(
                &PanickyPlayer,
                &[(), ()],
                ChaCha8Rng::seed_from_u64(0),
                &ctx,
            ),
        ] {
            match &result.outcome {
                SessionOutcome::Aborted(reason) => {
                    assert!(reason.contains("player 1"), "reason: {reason}")
                }
                other => panic!("expected abort, got {other:?}"),
            }
        }
    }
}
