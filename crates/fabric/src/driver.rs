//! Parallel Monte-Carlo with serial-identical statistics.
//!
//! [`monte_carlo_fabric`] is the fabric's counterpart to
//! [`bci_blackboard::runner::monte_carlo_seeded`]. Both derive session
//! `i`'s RNG from `(master_seed, i)`, so each session's inputs and
//! transcript are identical regardless of which worker runs it or when.
//! To make the *statistics* identical too — Welford accumulation is not
//! associative in floating point — the driver replays the per-session
//! records in session-id order when assembling the [`RunReport`], instead
//! of using the per-worker shards (those still feed the
//! [`FabricMetrics`], where rounding is irrelevant).
//!
//! Sessions that time out or abort are excluded from the report's
//! communication and error statistics: a fault is an execution failure,
//! not a protocol error. They are accounted separately in
//! [`FabricReport::timed_out`] / [`FabricReport::aborted`].

use bci_blackboard::protocol::Protocol;
use bci_blackboard::runner::RunReport;
use bci_blackboard::stats::CommStats;
use bci_encoding::wire::Wire;
use rand::RngCore;

use crate::metrics::FabricMetrics;
use crate::scheduler::{run_sessions, SchedulerConfig, SessionRecord};
use crate::session::{FaultPlan, SessionOutcome};
use crate::transport::Transport;

/// The fabric driver's full product: the Monte-Carlo report over completed
/// sessions, failure accounting, pool telemetry, and per-session records.
#[derive(Debug)]
pub struct FabricReport<O> {
    /// Communication/error statistics over *completed* sessions,
    /// bit-identical to the serial seeded runner when no faults fire.
    pub report: RunReport,
    /// Sessions that hit their deadline (excluded from `report`).
    pub timed_out: u64,
    /// Sessions aborted by a crash/panic/runaway (excluded from `report`).
    pub aborted: u64,
    /// Latency/throughput/queue telemetry.
    pub metrics: FabricMetrics,
    /// Per-session records, sorted by session id.
    pub records: Vec<SessionRecord<O>>,
}

/// Runs `sessions` Monte-Carlo sessions of `protocol` on the fabric.
///
/// For a fault-free run, `report` equals the one returned by
/// `monte_carlo_seeded::<_, _, _, ChaCha8Rng>(protocol, sample_inputs,
/// reference, sessions, master_seed)` — same trial inputs, same
/// transcripts, same floating-point statistics.
///
/// # Panics
///
/// Panics on a zero-sized pool/queue (see
/// [`run_sessions`]).
#[allow(clippy::too_many_arguments)]
pub fn monte_carlo_fabric<T, P, S, F>(
    transport: &T,
    protocol: &P,
    sample_inputs: &S,
    reference: &F,
    sessions: u64,
    master_seed: u64,
    plan: &FaultPlan,
    config: &SchedulerConfig,
) -> FabricReport<P::Output>
where
    T: Transport,
    P: Protocol + Sync,
    P::Input: Sync + Wire,
    P::Output: PartialEq + Send + Wire,
    S: Fn(&mut dyn RngCore) -> Vec<P::Input> + Sync,
    F: Fn(&[P::Input]) -> P::Output + Sync,
{
    let run = run_sessions(
        transport,
        protocol,
        sample_inputs,
        reference,
        sessions,
        master_seed,
        plan,
        config,
    );
    let metrics = FabricMetrics::collect(&run, config.workers);

    // Ordered replay: accumulate in session-id order so the float stream
    // matches the serial runner exactly.
    let mut comm = CommStats::new();
    let mut errors = 0u64;
    let mut completed = 0u64;
    let mut timed_out = 0u64;
    let mut aborted = 0u64;
    for rec in &run.records {
        match rec.outcome {
            SessionOutcome::Completed => {
                completed += 1;
                comm.record(rec.bits_written as f64);
                if rec.correct == Some(false) {
                    errors += 1;
                }
            }
            SessionOutcome::TimedOut => timed_out += 1,
            SessionOutcome::Aborted(_) => aborted += 1,
        }
    }
    FabricReport {
        report: RunReport {
            comm,
            errors,
            trials: completed,
        },
        timed_out,
        aborted,
        metrics,
        records: run.records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{FaultKind, FaultSpec, SessionSelector};
    use crate::transport::{ChannelTransport, InProcessTransport};
    use bci_blackboard::runner::monte_carlo_seeded;
    use bci_protocols::disj::broadcast::BroadcastDisj;
    use bci_protocols::disj::disj_function;
    use bci_protocols::workload;
    use rand_chacha::ChaCha8Rng;
    use std::time::Duration;

    fn cfg(workers: usize) -> SchedulerConfig {
        SchedulerConfig {
            workers,
            batch_size: 16,
            queue_capacity: 4,
            deadline: Some(Duration::from_secs(10)),
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn fabric_report_is_bit_identical_to_the_serial_runner() {
        let proto = BroadcastDisj::new(96, 5);
        let sample = |rng: &mut dyn RngCore| workload::random_sets(96, 5, 0.75, rng);
        let reference = |inputs: &[_]| disj_function(inputs);
        let serial = monte_carlo_seeded::<_, _, _, ChaCha8Rng>(&proto, sample, reference, 300, 17);
        for workers in [1usize, 3, 6] {
            let fabric = monte_carlo_fabric(
                &InProcessTransport,
                &proto,
                &sample,
                &reference,
                300,
                17,
                &FaultPlan::new(),
                &cfg(workers),
            );
            assert_eq!(fabric.report.trials, serial.trials);
            assert_eq!(fabric.report.errors, serial.errors);
            assert_eq!(
                fabric.report.comm.mean().to_bits(),
                serial.comm.mean().to_bits(),
                "workers = {workers}: float-identical mean"
            );
            assert_eq!(
                fabric.report.comm.variance().to_bits(),
                serial.comm.variance().to_bits(),
                "workers = {workers}: float-identical variance"
            );
            assert_eq!(fabric.timed_out, 0);
            assert_eq!(fabric.aborted, 0);
        }
    }

    #[test]
    fn faulty_sessions_are_excluded_from_error_statistics() {
        let proto = BroadcastDisj::new(64, 4);
        let sample = |rng: &mut dyn RngCore| workload::random_sets(64, 4, 0.7, rng);
        let reference = |inputs: &[_]| disj_function(inputs);
        let plan = FaultPlan::new().with(FaultSpec {
            kind: FaultKind::CrashedPlayer,
            player: 1,
            sessions: SessionSelector::EveryNth(5),
        });
        let fabric = monte_carlo_fabric(
            &ChannelTransport,
            &proto,
            &sample,
            &reference,
            50,
            23,
            &plan,
            &cfg(4),
        );
        assert_eq!(fabric.aborted, 10, "sessions 0, 5, ..., 45 crash");
        assert_eq!(fabric.report.trials, 40);
        assert_eq!(fabric.report.errors, 0, "completed sessions are correct");
        assert_eq!(fabric.report.comm.count(), 40);
        assert_eq!(fabric.metrics.completed, 40);
        assert_eq!(fabric.metrics.aborted, 10);
    }

    #[test]
    fn metrics_throughput_and_latency_are_populated() {
        let proto = BroadcastDisj::new(32, 3);
        let fabric = monte_carlo_fabric(
            &InProcessTransport,
            &proto,
            &|rng: &mut dyn RngCore| workload::random_sets(32, 3, 0.5, rng),
            &|inputs: &[_]| disj_function(inputs),
            64,
            1,
            &FaultPlan::new(),
            &cfg(4),
        );
        let m = &fabric.metrics;
        assert_eq!(m.sessions, 64);
        assert!(m.sessions_per_sec() > 0.0);
        assert!(m.latency_p50() <= m.latency_p99());
        assert!(m.latency_p99() <= m.latency_max + Duration::from_micros(1));
        assert_eq!(m.bits.count(), 64);
        assert_eq!(m.latency.count(), 64);
        assert!(m.queue_depth.count() >= 1, "one sample per batch enqueued");
        assert!(m.max_queue_depth >= 1);
        assert_eq!(m.workers, 4);
    }

    #[test]
    fn recording_does_not_change_the_report_and_populates_telemetry() {
        let proto = BroadcastDisj::new(48, 4);
        let sample = |rng: &mut dyn RngCore| workload::random_sets(48, 4, 0.6, rng);
        let reference = |inputs: &[_]| disj_function(inputs);
        let quiet = monte_carlo_fabric(
            &InProcessTransport,
            &proto,
            &sample,
            &reference,
            80,
            29,
            &FaultPlan::new(),
            &cfg(3),
        );
        let recorder = bci_telemetry::Recorder::new();
        let mut traced_cfg = cfg(3);
        traced_cfg.recorder = recorder.clone();
        let traced = monte_carlo_fabric(
            &InProcessTransport,
            &proto,
            &sample,
            &reference,
            80,
            29,
            &FaultPlan::new(),
            &traced_cfg,
        );
        assert_eq!(
            quiet.report.comm.mean().to_bits(),
            traced.report.comm.mean().to_bits()
        );
        assert_eq!(
            quiet.report.comm.variance().to_bits(),
            traced.report.comm.variance().to_bits()
        );
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("fabric.sessions"), 80);
        assert_eq!(snap.counter("fabric.completed"), 80);
        assert_eq!(snap.hist("fabric.latency_us").map(|h| h.count()), Some(80));
        // Session spans: one start + one end event per session, at least.
        assert!(recorder.events().len() >= 160);
    }
}
