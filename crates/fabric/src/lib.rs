#![warn(missing_docs)]

//! A concurrent execution fabric for broadcast protocols.
//!
//! The rest of the workspace executes protocols *serially*:
//! [`bci_blackboard::protocol::run`] drives one session on one thread, and
//! [`monte_carlo`](bci_blackboard::runner::monte_carlo) loops it. This
//! crate scales that up to many concurrent sessions without giving up the
//! property experiments live and die by — **determinism**: for a given
//! master seed, the fabric produces the same per-session transcripts and
//! the same floating-point statistics as the serial runner, regardless of
//! worker count, transport, or scheduling order.
//!
//! The pieces:
//!
//! * [`transport`] — *where* player computations run.
//!   [`InProcessTransport`] executes a
//!   session on the calling worker;
//!   [`ChannelTransport`] gives every player
//!   its own thread and serializes board writes through a sequencer,
//!   round-tripping the session RNG with each turn so the randomness
//!   stream is consumed in serial order.
//! * [`session`] — structured outcomes
//!   ([`SessionOutcome`]), per-session deadlines,
//!   and injectable faults ([`FaultPlan`]): slow
//!   players, crashed players, dropped wakeups. Faulty sessions abort
//!   gracefully; they never take a worker down.
//! * [`pool`] — the generic deterministic [`JobPool`]: the bounded batch
//!   queue, producer backpressure, and in-order result collection, usable
//!   for any `Fn(seed, &point) -> T` job (experiment sweeps run on it).
//! * [`scheduler`] — the protocol-aware layer over the pool: one job per
//!   session, per-session fault injection and telemetry.
//! * [`driver`] — [`monte_carlo_fabric`], the
//!   parallel Monte-Carlo entry point whose
//!   [`RunReport`](bci_blackboard::runner::RunReport) is bit-identical to
//!   [`monte_carlo_seeded`](bci_blackboard::runner::monte_carlo_seeded)
//!   on fault-free runs.
//! * [`metrics`] — latency percentiles, throughput, bits/session, queue
//!   depth.
//!
//! # Example
//!
//! ```
//! use bci_fabric::driver::monte_carlo_fabric;
//! use bci_fabric::scheduler::SchedulerConfig;
//! use bci_fabric::session::FaultPlan;
//! use bci_fabric::transport::ChannelTransport;
//! use bci_protocols::disj::broadcast::BroadcastDisj;
//! use bci_protocols::disj::disj_function;
//! use bci_protocols::workload;
//! use rand::RngCore;
//!
//! let protocol = BroadcastDisj::new(64, 4);
//! let report = monte_carlo_fabric(
//!     &ChannelTransport,
//!     &protocol,
//!     &|rng: &mut dyn RngCore| workload::random_sets(64, 4, 0.7, rng),
//!     &|inputs: &[_]| disj_function(inputs),
//!     32,          // sessions
//!     1,           // master seed
//!     &FaultPlan::new(),
//!     &SchedulerConfig::default(),
//! );
//! assert_eq!(report.report.trials, 32);
//! assert_eq!(report.report.errors, 0);
//! ```

pub mod driver;
pub mod metrics;
pub mod pool;
pub mod scheduler;
pub mod session;
pub mod transport;

pub use driver::{monte_carlo_fabric, FabricReport};
pub use metrics::FabricMetrics;
pub use pool::{JobPool, PoolConfig, PoolRun};
pub use scheduler::{SchedulerConfig, SessionRecord};
pub use session::{FaultKind, FaultPlan, FaultSpec, SessionOutcome, SessionSelector};
pub use transport::{ChannelTransport, InProcessTransport, Transport, DISABLED_RECORDER};
