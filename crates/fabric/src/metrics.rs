//! Aggregate telemetry for a fabric run.

use std::time::Duration;

use bci_blackboard::stats::CommStats;

use crate::scheduler::{SchedulerRun, SessionRecord};
use crate::session::SessionOutcome;

/// Latency, throughput, and queue telemetry for one fabric run.
#[derive(Debug, Clone)]
pub struct FabricMetrics {
    /// Total sessions scheduled.
    pub sessions: u64,
    /// Sessions that completed normally.
    pub completed: u64,
    /// Sessions that hit their deadline.
    pub timed_out: u64,
    /// Sessions aborted (crash, panic, runaway).
    pub aborted: u64,
    /// Median session latency.
    pub latency_p50: Duration,
    /// 99th-percentile session latency.
    pub latency_p99: Duration,
    /// Worst session latency.
    pub latency_max: Duration,
    /// Bits-per-session statistics over completed sessions, pooled from
    /// the per-worker shards via
    /// [`CommStats::merge`](bci_blackboard::stats::CommStats).
    pub bits: CommStats,
    /// Highest queue depth (batches) observed.
    pub max_queue_depth: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Worker threads used.
    pub workers: usize,
}

impl FabricMetrics {
    /// Computes the metrics for a finished [`SchedulerRun`].
    pub fn collect<O>(run: &SchedulerRun<O>, workers: usize) -> Self {
        let mut completed = 0u64;
        let mut timed_out = 0u64;
        let mut aborted = 0u64;
        for rec in &run.records {
            match rec.outcome {
                SessionOutcome::Completed => completed += 1,
                SessionOutcome::TimedOut => timed_out += 1,
                SessionOutcome::Aborted(_) => aborted += 1,
            }
        }
        let mut latencies: Vec<Duration> = run.records.iter().map(|r| r.latency).collect();
        latencies.sort_unstable();
        let mut bits = CommStats::new();
        for shard in &run.shards {
            bits.merge(shard);
        }
        FabricMetrics {
            sessions: run.records.len() as u64,
            completed,
            timed_out,
            aborted,
            latency_p50: percentile(&latencies, 50.0),
            latency_p99: percentile(&latencies, 99.0),
            latency_max: latencies.last().copied().unwrap_or(Duration::ZERO),
            bits,
            max_queue_depth: run.max_queue_depth,
            elapsed: run.elapsed,
            workers,
        }
    }

    /// Sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.sessions as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of sessions that did not complete.
    pub fn failure_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            (self.timed_out + self.aborted) as f64 / self.sessions as f64
        }
    }
}

/// The `p`-th percentile (nearest-rank) of an ascending-sorted slice.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Convenience: counts outcomes in a record slice (used by tests and the
/// driver's report assembly).
pub fn outcome_counts<O>(records: &[SessionRecord<O>]) -> (u64, u64, u64) {
    let mut c = (0u64, 0u64, 0u64);
    for rec in records {
        match rec.outcome {
            SessionOutcome::Completed => c.0 += 1,
            SessionOutcome::TimedOut => c.1 += 1,
            SessionOutcome::Aborted(_) => c.2 += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        assert_eq!(percentile(&sorted, 1.0), ms(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 99.0), ms(7));
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let run: SchedulerRun<bool> = SchedulerRun {
            records: Vec::new(),
            shards: Vec::new(),
            max_queue_depth: 0,
            elapsed: Duration::ZERO,
        };
        let m = FabricMetrics::collect(&run, 4);
        assert_eq!(m.sessions, 0);
        assert_eq!(m.sessions_per_sec(), 0.0);
        assert_eq!(m.failure_rate(), 0.0);
    }
}
