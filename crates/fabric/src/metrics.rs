//! Aggregate telemetry for a fabric run.
//!
//! [`FabricMetrics`] condenses a [`SchedulerRun`] into outcome counts,
//! latency and queue-depth histograms (fixed bucket ladders from
//! [`bci_telemetry::hist`]), and pooled bits-per-session statistics.
//! Because every ingredient is mergeable — counts add, histograms add
//! bucket-wise, [`CommStats`] merges exactly — metrics from independent
//! runs combine via [`FabricMetrics::merge`] into the metrics of the
//! concatenated workload.

use std::time::Duration;

use bci_blackboard::stats::CommStats;
use bci_telemetry::hist::{Histogram, LATENCY_US_BOUNDS, QUEUE_DEPTH_BOUNDS};

use crate::scheduler::{SchedulerRun, SessionRecord};
use crate::session::SessionOutcome;

/// Latency, throughput, and queue telemetry for one (or, after
/// [`merge`](FabricMetrics::merge), several) fabric runs.
#[derive(Debug, Clone)]
pub struct FabricMetrics {
    /// Total sessions scheduled.
    pub sessions: u64,
    /// Sessions that completed normally.
    pub completed: u64,
    /// Sessions that hit their deadline.
    pub timed_out: u64,
    /// Sessions aborted (crash, panic, runaway).
    pub aborted: u64,
    /// Session-latency histogram in microseconds
    /// ([`LATENCY_US_BOUNDS`] ladder); percentiles come from
    /// [`latency_p50`](FabricMetrics::latency_p50) and friends.
    pub latency: Histogram,
    /// Worst session latency (exact, not bucketed).
    pub latency_max: Duration,
    /// Queue-depth histogram: one sample per enqueued batch
    /// ([`QUEUE_DEPTH_BOUNDS`] ladder).
    pub queue_depth: Histogram,
    /// Bits-per-session statistics over completed sessions, pooled from
    /// the per-worker shards via
    /// [`CommStats::merge`](bci_blackboard::stats::CommStats).
    pub bits: CommStats,
    /// Highest queue depth (batches) observed.
    pub max_queue_depth: usize,
    /// Wall-clock duration of the run (summed across merged runs).
    pub elapsed: Duration,
    /// Worker threads used (max across merged runs).
    pub workers: usize,
}

impl FabricMetrics {
    /// Computes the metrics for a finished [`SchedulerRun`].
    pub fn collect<O>(run: &SchedulerRun<O>, workers: usize) -> Self {
        let mut completed = 0u64;
        let mut timed_out = 0u64;
        let mut aborted = 0u64;
        let mut latency = Histogram::new(LATENCY_US_BOUNDS);
        let mut latency_max = Duration::ZERO;
        for rec in &run.records {
            match rec.outcome {
                SessionOutcome::Completed => completed += 1,
                SessionOutcome::TimedOut => timed_out += 1,
                SessionOutcome::Aborted(_) => aborted += 1,
            }
            latency.record(rec.latency.as_micros() as u64);
            latency_max = latency_max.max(rec.latency);
        }
        let mut bits = CommStats::new();
        for shard in &run.shards {
            bits.merge(shard);
        }
        FabricMetrics {
            sessions: run.records.len() as u64,
            completed,
            timed_out,
            aborted,
            latency,
            latency_max,
            queue_depth: run.queue_depth_hist.clone(),
            bits,
            max_queue_depth: run.max_queue_depth,
            elapsed: run.elapsed,
            workers,
        }
    }

    /// An all-zero metrics value, the identity element of
    /// [`merge`](FabricMetrics::merge).
    pub fn empty() -> Self {
        FabricMetrics {
            sessions: 0,
            completed: 0,
            timed_out: 0,
            aborted: 0,
            latency: Histogram::new(LATENCY_US_BOUNDS),
            latency_max: Duration::ZERO,
            queue_depth: Histogram::new(QUEUE_DEPTH_BOUNDS),
            bits: CommStats::new(),
            max_queue_depth: 0,
            elapsed: Duration::ZERO,
            workers: 0,
        }
    }

    /// Folds `other` into `self`, producing the metrics of the combined
    /// workload: counts and histograms add, `bits` merges exactly,
    /// `latency_max`/`max_queue_depth`/`workers` take the max, and
    /// `elapsed` sums (total wall-clock across the merged runs).
    pub fn merge(&mut self, other: &FabricMetrics) {
        self.sessions += other.sessions;
        self.completed += other.completed;
        self.timed_out += other.timed_out;
        self.aborted += other.aborted;
        self.latency.merge(&other.latency);
        self.latency_max = self.latency_max.max(other.latency_max);
        self.queue_depth.merge(&other.queue_depth);
        self.bits.merge(&other.bits);
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.elapsed += other.elapsed;
        self.workers = self.workers.max(other.workers);
    }

    /// Median session latency (bucket-resolved, exact max for outliers).
    pub fn latency_p50(&self) -> Duration {
        Duration::from_micros(self.latency.percentile(50.0))
    }

    /// 95th-percentile session latency.
    pub fn latency_p95(&self) -> Duration {
        Duration::from_micros(self.latency.percentile(95.0))
    }

    /// 99th-percentile session latency.
    pub fn latency_p99(&self) -> Duration {
        Duration::from_micros(self.latency.percentile(99.0))
    }

    /// Sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.sessions as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of sessions that did not complete.
    pub fn failure_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            (self.timed_out + self.aborted) as f64 / self.sessions as f64
        }
    }

    /// Exports the metrics as a [`bci_telemetry::Snapshot`], the same
    /// shape the live admin channel serves — so a fabric run can be
    /// rendered with `Snapshot::to_json` / `to_prometheus`, or merged
    /// with snapshots scraped off a coordinator.
    pub fn to_snapshot(&self) -> bci_telemetry::Snapshot {
        let mut counters = std::collections::BTreeMap::new();
        counters.insert("fabric.sessions".to_owned(), self.sessions);
        counters.insert("fabric.sessions_completed".to_owned(), self.completed);
        counters.insert("fabric.sessions_timed_out".to_owned(), self.timed_out);
        counters.insert("fabric.sessions_aborted".to_owned(), self.aborted);
        let mut gauges = std::collections::BTreeMap::new();
        gauges.insert("fabric.workers".to_owned(), self.workers as u64);
        gauges.insert(
            "fabric.max_queue_depth".to_owned(),
            self.max_queue_depth as u64,
        );
        gauges.insert(
            "fabric.latency_max_us".to_owned(),
            self.latency_max.as_micros() as u64,
        );
        let mut hists = std::collections::BTreeMap::new();
        hists.insert("fabric.session_latency_us".to_owned(), self.latency.clone());
        hists.insert("fabric.queue_depth".to_owned(), self.queue_depth.clone());
        bci_telemetry::Snapshot {
            uptime_us: self.elapsed.as_micros() as u64,
            counters,
            gauges,
            hists,
        }
    }
}

/// The `p`-th percentile (nearest-rank) of an ascending-sorted slice.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Convenience: counts outcomes in a record slice (used by tests and the
/// driver's report assembly).
pub fn outcome_counts<O>(records: &[SessionRecord<O>]) -> (u64, u64, u64) {
    let mut c = (0u64, 0u64, 0u64);
    for rec in records {
        match rec.outcome {
            SessionOutcome::Completed => c.0 += 1,
            SessionOutcome::TimedOut => c.1 += 1,
            SessionOutcome::Aborted(_) => c.2 += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        assert_eq!(percentile(&sorted, 1.0), ms(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 99.0), ms(7));
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let run: SchedulerRun<bool> = SchedulerRun {
            records: Vec::new(),
            shards: Vec::new(),
            max_queue_depth: 0,
            queue_depth_hist: Histogram::new(QUEUE_DEPTH_BOUNDS),
            elapsed: Duration::ZERO,
        };
        let m = FabricMetrics::collect(&run, 4);
        assert_eq!(m.sessions, 0);
        assert_eq!(m.sessions_per_sec(), 0.0);
        assert_eq!(m.failure_rate(), 0.0);
        assert_eq!(m.latency_p50(), Duration::ZERO);
        assert_eq!(m.latency_p99(), Duration::ZERO);
    }

    #[test]
    fn merge_combines_counts_histograms_and_extremes() {
        let mut a = FabricMetrics::empty();
        a.sessions = 10;
        a.completed = 9;
        a.timed_out = 1;
        a.latency.record(100);
        a.latency_max = Duration::from_micros(100);
        a.queue_depth.record(2);
        a.bits.record(32.0);
        a.max_queue_depth = 2;
        a.elapsed = ms(5);
        a.workers = 2;

        let mut b = FabricMetrics::empty();
        b.sessions = 4;
        b.completed = 3;
        b.aborted = 1;
        b.latency.record(900);
        b.latency_max = Duration::from_micros(900);
        b.queue_depth.record(7);
        b.bits.record(64.0);
        b.max_queue_depth = 7;
        b.elapsed = ms(3);
        b.workers = 8;

        a.merge(&b);
        assert_eq!(a.sessions, 14);
        assert_eq!(a.completed, 12);
        assert_eq!(a.timed_out, 1);
        assert_eq!(a.aborted, 1);
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency_max, Duration::from_micros(900));
        assert_eq!(a.queue_depth.count(), 2);
        assert_eq!(a.bits.count(), 2);
        assert_eq!(a.max_queue_depth, 7);
        assert_eq!(a.elapsed, ms(8));
        assert_eq!(a.workers, 8);
        assert!((a.failure_rate() - 2.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity_on_counts() {
        let mut a = FabricMetrics::empty();
        a.sessions = 3;
        a.completed = 3;
        a.latency.record(50);
        a.merge(&FabricMetrics::empty());
        assert_eq!(a.sessions, 3);
        assert_eq!(a.latency.count(), 1);
        assert_eq!(a.workers, 0);
    }

    #[test]
    fn latency_percentiles_come_from_the_histogram() {
        let mut m = FabricMetrics::empty();
        for _ in 0..99 {
            m.latency.record(80); // -> bucket le=100
        }
        m.latency.record(9_000); // -> bucket le=10_000
        m.latency_max = Duration::from_micros(9_000);
        // 99 samples land in the `le = 100` bucket; percentiles
        // interpolate inside [min=80, bound=100] by rank, and the
        // straggler only shows at p100.
        assert_eq!(m.latency_p50(), Duration::from_micros(90));
        assert_eq!(m.latency_p95(), Duration::from_micros(99));
        assert_eq!(m.latency_p99(), Duration::from_micros(100));
        assert_eq!(
            Duration::from_micros(m.latency.percentile(100.0)),
            m.latency_max
        );
    }

    #[test]
    fn snapshot_export_carries_outcomes_and_histograms() {
        let mut m = FabricMetrics::empty();
        m.sessions = 5;
        m.completed = 4;
        m.timed_out = 1;
        m.latency.record(250);
        m.queue_depth.record(3);
        m.elapsed = ms(2);
        let snap = m.to_snapshot();
        assert_eq!(snap.counter("fabric.sessions"), 5);
        assert_eq!(snap.counter("fabric.sessions_completed"), 4);
        assert_eq!(snap.counter("fabric.sessions_timed_out"), 1);
        assert_eq!(snap.counter("fabric.sessions_aborted"), 0);
        assert_eq!(snap.uptime_us, 2_000);
        assert_eq!(snap.hist("fabric.session_latency_us").unwrap().count(), 1);
        assert_eq!(snap.hist("fabric.queue_depth").unwrap().count(), 1);
    }
}
