//! Session-level vocabulary: outcomes, deadlines, and injectable faults.
//!
//! A *session* is one protocol execution scheduled on the fabric: inputs
//! are sampled from the session's derived RNG, the protocol runs under a
//! [`Transport`](crate::transport::Transport), and the session ends in a
//! structured [`SessionOutcome`] — it never panics the worker that ran it.

use std::time::Duration;

use bci_blackboard::board::Board;
use bci_blackboard::engine::ProtocolViolation;
use bci_blackboard::PlayerId;

/// How one session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The protocol ran to completion (within the deadline, if any).
    Completed,
    /// The deadline elapsed before the protocol halted. The partial board
    /// is preserved; no output was produced.
    TimedOut,
    /// The session was cut short — a crashed player, a runaway protocol, or
    /// a player panic — with a human-readable reason.
    Aborted(String),
}

impl SessionOutcome {
    /// `true` iff the session completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed)
    }

    /// A stable snake_case label, used as a telemetry attribute and in
    /// counter names (`fabric.completed` etc.).
    pub fn label(&self) -> &'static str {
        match self {
            SessionOutcome::Completed => "completed",
            SessionOutcome::TimedOut => "timed_out",
            SessionOutcome::Aborted(_) => "aborted",
        }
    }

    /// The stable wire code for this outcome (`0`/`1`/`2` = completed /
    /// timed out / aborted), shared by the v1 `Outcome` frame and the mux
    /// session records.
    pub fn kind_code(&self) -> u8 {
        match self {
            SessionOutcome::Completed => 0,
            SessionOutcome::TimedOut => 1,
            SessionOutcome::Aborted(_) => 2,
        }
    }

    /// The abort reason shipped next to [`kind_code`](Self::kind_code) on
    /// the wire — empty unless the session aborted.
    pub fn reason(&self) -> &str {
        match self {
            SessionOutcome::Aborted(reason) => reason,
            _ => "",
        }
    }

    /// Rebuilds an outcome from its wire `(kind, reason)` pair. Unknown
    /// kind codes conservatively decode as [`Aborted`](Self::Aborted).
    pub fn from_kind_code(kind: u8, reason: &str) -> Self {
        match kind {
            0 => SessionOutcome::Completed,
            1 => SessionOutcome::TimedOut,
            _ => SessionOutcome::Aborted(reason.to_string()),
        }
    }
}

/// Every driver maps an engine-detected [`ProtocolViolation`] onto the
/// same [`SessionOutcome::Aborted`] reason — the violation's canonical
/// `Display` string — so transcripts of a misbehaving protocol carry
/// identical diagnostics no matter which transport ran it.
impl From<ProtocolViolation> for SessionOutcome {
    fn from(violation: ProtocolViolation) -> Self {
        SessionOutcome::Aborted(violation.to_string())
    }
}

/// Everything a transport reports about one finished session.
#[derive(Debug, Clone)]
pub struct SessionResult<O> {
    /// Structured termination status.
    pub outcome: SessionOutcome,
    /// The protocol output — `Some` iff the outcome is
    /// [`Completed`](SessionOutcome::Completed).
    pub output: Option<O>,
    /// The board at termination (partial for timed-out/aborted sessions).
    pub board: Board,
    /// Bits on the board at termination.
    pub bits_written: usize,
    /// Wall-clock duration of the session.
    pub latency: Duration,
}

impl<O> SessionResult<O> {
    /// Seals a finished (or failed) session into its result, deriving
    /// `bits_written` from the board. The single finish path shared by
    /// every driver — in-process, channel, TCP v1, and mux.
    pub fn seal(
        outcome: SessionOutcome,
        output: Option<O>,
        board: Board,
        latency: Duration,
    ) -> Self {
        let bits_written = board.total_bits();
        SessionResult {
            outcome,
            output,
            board,
            bits_written,
            latency,
        }
    }
}

/// Which sessions a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionSelector {
    /// Every session.
    All,
    /// Exactly the session with this id.
    One(u64),
    /// Sessions whose id is divisible by `n` (`n = 0` matches none).
    EveryNth(u64),
}

impl SessionSelector {
    /// Does this selector match `session_id`?
    pub fn matches(&self, session_id: u64) -> bool {
        match *self {
            SessionSelector::All => true,
            SessionSelector::One(id) => session_id == id,
            SessionSelector::EveryNth(n) => n != 0 && session_id.is_multiple_of(n),
        }
    }
}

/// The failure mode injected into a player.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The player sleeps this long before every message it writes. Sessions
    /// exceed their deadline if the accumulated delay is large enough.
    SlowPlayer(Duration),
    /// The player dies the first time it is asked to speak, without
    /// replying. Transports detect the hangup and abort the session.
    CrashedPlayer,
    /// The player's first turn notification is lost: the player stays
    /// alive but never sees the request, so the session stalls until its
    /// deadline.
    DroppedWakeup,
}

/// One injected fault: a kind, the player it afflicts, and the sessions it
/// applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// The afflicted player.
    pub player: PlayerId,
    /// Which sessions are affected.
    pub sessions: SessionSelector,
}

/// A set of faults to inject across a fabric run.
///
/// # Example
///
/// ```
/// use bci_fabric::session::{FaultKind, FaultPlan, FaultSpec, SessionSelector};
///
/// let plan = FaultPlan::new()
///     .with(FaultSpec {
///         kind: FaultKind::CrashedPlayer,
///         player: 2,
///         sessions: SessionSelector::EveryNth(10),
///     });
/// assert_eq!(plan.for_session(20).len(), 1);
/// assert!(plan.for_session(7).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// All faults, regardless of selector.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The faults that apply to `session_id`.
    pub fn for_session(&self, session_id: u64) -> Vec<FaultSpec> {
        self.specs
            .iter()
            .filter(|s| s.sessions.matches(session_id))
            .copied()
            .collect()
    }

    /// `true` if no session is ever affected.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match_as_documented() {
        assert!(SessionSelector::All.matches(0));
        assert!(SessionSelector::All.matches(u64::MAX));
        assert!(SessionSelector::One(5).matches(5));
        assert!(!SessionSelector::One(5).matches(6));
        assert!(SessionSelector::EveryNth(4).matches(0));
        assert!(SessionSelector::EveryNth(4).matches(8));
        assert!(!SessionSelector::EveryNth(4).matches(9));
        assert!(!SessionSelector::EveryNth(0).matches(0), "n = 0 is inert");
    }

    #[test]
    fn plan_filters_by_session() {
        let plan = FaultPlan::new()
            .with(FaultSpec {
                kind: FaultKind::CrashedPlayer,
                player: 0,
                sessions: SessionSelector::One(3),
            })
            .with(FaultSpec {
                kind: FaultKind::DroppedWakeup,
                player: 1,
                sessions: SessionSelector::All,
            });
        assert_eq!(plan.for_session(3).len(), 2);
        assert_eq!(plan.for_session(4).len(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn outcome_completed_predicate() {
        assert!(SessionOutcome::Completed.is_completed());
        assert!(!SessionOutcome::TimedOut.is_completed());
        assert!(!SessionOutcome::Aborted("x".into()).is_completed());
    }
}
