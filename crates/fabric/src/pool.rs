//! A generic deterministic job pool — the fabric's worker/queue machinery,
//! decoupled from protocol sessions.
//!
//! [`JobPool`] runs `Fn(seed, &point) -> T` jobs over a slice of sweep
//! points on a fixed worker pool, with the same bounded-queue backpressure
//! the [session scheduler](crate::scheduler) uses: the producer enumerates
//! index batches into a [`std::sync::mpsc::sync_channel`] and blocks when
//! workers fall behind. Determinism does not depend on the schedule —
//! job `i`'s seed is derived from `(master_seed, i)` via
//! [`bci_blackboard::runner::derive_trial_seed`], and
//! outputs are returned **in point order**, so the result vector is
//! byte-identical to a serial `points.iter().map(...)` loop for any worker
//! count.
//!
//! The session scheduler is itself a client: `run_sessions` submits one
//! job per session and folds per-worker [`CommStats`] shards through the
//! pool's worker-local accumulators (see [`JobPool::run_with`]). Experiment
//! sweeps (`bci-bench`'s `report_for`, `bci experiments run`) are the other
//! client: one job per grid point.
//!
//! [`CommStats`]: bci_blackboard::stats::CommStats

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bci_blackboard::runner::derive_trial_seed;
use bci_telemetry::hist::{Histogram, LATENCY_US_BOUNDS, QUEUE_DEPTH_BOUNDS};
use bci_telemetry::{Json, Recorder, SpanKind};

/// Job-pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Jobs per queue entry. Batching amortizes queue synchronization over
    /// several jobs when individual jobs are very short.
    pub batch_size: usize,
    /// Maximum batches queued ahead of the workers. The producer blocks
    /// when the queue is full (backpressure).
    pub queue_capacity: usize,
    /// Prefix for the pool's counter/histogram names (`{prefix}.queue_depth`,
    /// `{prefix}.backpressure_stalls`, `{prefix}.stall_us`, `{prefix}.job_us`).
    /// The session scheduler passes `"fabric"` to keep its historical metric
    /// names; standalone pools default to `"pool"`.
    pub metric_prefix: &'static str,
    /// Emit a [`SpanKind::Job`] span (plus a `{prefix}.job_us` histogram
    /// sample) per job. Clients that already emit their own per-job spans —
    /// the session scheduler emits [`SpanKind::Session`] — turn this off so
    /// the event stream is not doubled.
    pub job_spans: bool,
    /// Telemetry sink. The default ([`Recorder::disabled`]) records nothing
    /// and costs one branch per instrumentation site; recording on or off,
    /// pool outputs are byte-identical.
    pub recorder: Recorder,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            batch_size: 32,
            queue_capacity: 8,
            metric_prefix: "pool",
            job_spans: true,
            recorder: Recorder::disabled(),
        }
    }
}

/// Everything a pool run produces: ordered outputs plus pool telemetry.
#[derive(Debug)]
pub struct PoolRun<T, A = ()> {
    /// One output per point, **in point order** (serial order), regardless
    /// of worker count or scheduling.
    pub outputs: Vec<T>,
    /// One worker-local accumulator per worker (see [`JobPool::run_with`]).
    pub shards: Vec<A>,
    /// Highest queue depth (batches) observed during the run. The gauge
    /// counts a batch from just before the producer enqueues it until just
    /// after a worker dequeues it, so it can transiently exceed the queue
    /// capacity by up to `workers + 1`.
    pub max_queue_depth: usize,
    /// Queue-depth histogram: one sample per enqueued batch, at enqueue
    /// time.
    pub queue_depth_hist: Histogram,
    /// Per-job wall-clock histogram (microseconds).
    pub job_latency_hist: Histogram,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

/// A fixed-size deterministic worker pool for `Fn(seed, &point) -> T` jobs.
///
/// # Example
///
/// ```
/// use bci_fabric::pool::{JobPool, PoolConfig};
///
/// let pool = JobPool::new(PoolConfig { workers: 3, ..PoolConfig::default() });
/// let points: Vec<u64> = (0..100).collect();
/// let run = pool.run(&points, 42, &|seed, &p| p * 2 + seed % 2);
/// // Outputs are in point order, independent of which worker ran what.
/// assert_eq!(run.outputs.len(), 100);
/// assert_eq!(run.outputs[7] / 2, 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JobPool {
    config: PoolConfig,
}

impl JobPool {
    /// Creates a pool with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `batch_size`, or `queue_capacity` is zero.
    pub fn new(config: PoolConfig) -> JobPool {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.batch_size > 0, "batches hold at least one job");
        assert!(config.queue_capacity > 0, "queue needs capacity");
        JobPool { config }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Runs one job per point; job `i` receives
    /// `derive_trial_seed(master_seed, i)`.
    pub fn run<P, T, J>(&self, points: &[P], master_seed: u64, job: &J) -> PoolRun<T>
    where
        P: Sync,
        T: Send,
        J: Fn(u64, &P) -> T + Sync,
    {
        self.run_with(points, master_seed, &|| (), &|seed, point, _| {
            job(seed, point)
        })
    }

    /// Runs points whose work splits into independently-seeded *chunks* —
    /// the intra-point parallelism lane for Monte-Carlo sweeps whose
    /// critical path is one heavy grid point.
    ///
    /// `chunks(i, &point)` names the number of sub-jobs for point `i`
    /// (must be ≥ 1 and must not depend on the worker count);
    /// `job(point_seed, &point, chunk)` runs one sub-job, where
    /// `point_seed = derive_trial_seed(master_seed, i)` is the *point's*
    /// seed — the job derives its own per-trial seeds from it, so chunk
    /// outputs are independent of how trials are grouped;
    /// `merge(i, &point, parts)` folds the chunk outputs (always in chunk
    /// order) into the point output on the caller's thread.
    ///
    /// Because chunking is part of the call rather than the schedule, the
    /// merged outputs are byte-identical for any worker count; with one
    /// chunk everywhere this degenerates to [`run`](JobPool::run).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` returns 0 for any point.
    pub fn run_chunked<P, T, C, J, M>(
        &self,
        points: &[P],
        master_seed: u64,
        chunks: &C,
        job: &J,
        merge: &M,
    ) -> PoolRun<T>
    where
        P: Sync,
        T: Send,
        C: Fn(usize, &P) -> usize,
        J: Fn(u64, &P, usize) -> T + Sync,
        M: Fn(usize, &P, Vec<T>) -> T,
    {
        // Flatten to (point, chunk) sub-jobs; the flat list is what the
        // queue schedules, so a 40-trial point occupies many workers at
        // once instead of bounding the whole run.
        let counts: Vec<usize> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let c = chunks(i, p);
                assert!(c > 0, "point {i} must have at least one chunk");
                c
            })
            .collect();
        let subjobs: Vec<(usize, usize)> = counts
            .iter()
            .enumerate()
            .flat_map(|(i, &c)| (0..c).map(move |chunk| (i, chunk)))
            .collect();
        let run = self.run(&subjobs, master_seed, &|_, &(i, chunk)| {
            job(derive_trial_seed(master_seed, i as u64), &points[i], chunk)
        });
        let PoolRun {
            outputs,
            shards,
            max_queue_depth,
            queue_depth_hist,
            job_latency_hist,
            elapsed,
        } = run;
        // Sub-job outputs come back in sub-job order (= point-major), so
        // each point's chunk outputs are a contiguous run.
        let mut outputs = outputs.into_iter();
        let merged = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| merge(i, &points[i], outputs.by_ref().take(c).collect()))
            .collect();
        PoolRun {
            outputs: merged,
            shards,
            max_queue_depth,
            queue_depth_hist,
            job_latency_hist,
            elapsed,
        }
    }

    /// Like [`run`](JobPool::run), but threads a worker-local accumulator
    /// through every job a worker executes. `init` builds one accumulator
    /// per worker; the per-worker final values come back as
    /// [`PoolRun::shards`] (in worker-spawn order). This is how the session
    /// scheduler keeps per-worker [`CommStats`] shards without cross-worker
    /// locking.
    ///
    /// [`CommStats`]: bci_blackboard::stats::CommStats
    pub fn run_with<P, T, A, I, J>(
        &self,
        points: &[P],
        master_seed: u64,
        init: &I,
        job: &J,
    ) -> PoolRun<T, A>
    where
        P: Sync,
        T: Send,
        A: Send,
        I: Fn() -> A + Sync,
        J: Fn(u64, &P, &mut A) -> T + Sync,
    {
        let config = &self.config;
        let start = Instant::now();
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Range<usize>>(config.queue_capacity);
        let batch_rx = Mutex::new(batch_rx);
        let (result_tx, result_rx) = mpsc::channel::<(usize, Duration, T)>();
        let queue_depth = AtomicUsize::new(0);
        let max_queue_depth = AtomicUsize::new(0);

        let mut slots: Vec<Option<T>> = Vec::with_capacity(points.len());
        slots.resize_with(points.len(), || None);
        let mut shards: Vec<A> = Vec::with_capacity(config.workers);
        let mut queue_depth_hist = Histogram::new(QUEUE_DEPTH_BOUNDS);
        let mut job_latency_hist = Histogram::new(LATENCY_US_BOUNDS);

        let recorder = &config.recorder;
        let prefix = config.metric_prefix;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(config.workers);
            for _ in 0..config.workers {
                let result_tx = result_tx.clone();
                let batch_rx = &batch_rx;
                let queue_depth = &queue_depth;
                handles.push(scope.spawn(move || {
                    let mut acc = init();
                    loop {
                        // Take the receiver lock only long enough to pop one
                        // batch; the batch itself is processed lock-free.
                        // Poisoning requires a sibling worker to panic while
                        // holding the lock, which `recv()` cannot do — and a
                        // panicking job propagates through `join` below
                        // anyway, so unwrapping here adds no failure mode.
                        let batch = match batch_rx.lock().expect("queue lock").recv() {
                            Ok(batch) => batch,
                            Err(_) => break, // producer done and queue drained
                        };
                        queue_depth.fetch_sub(1, Ordering::Relaxed);
                        for index in batch {
                            let seed = derive_trial_seed(master_seed, index as u64);
                            let spans = config.job_spans && recorder.enabled();
                            let token = spans
                                .then(|| recorder.span_start(SpanKind::Job, index as u64, vec![]));
                            let began = Instant::now();
                            let output = job(seed, &points[index], &mut acc);
                            let latency = began.elapsed();
                            if let Some(token) = token {
                                recorder.hist_record(
                                    metric_name(prefix, "job_us"),
                                    latency.as_micros() as u64,
                                    LATENCY_US_BOUNDS,
                                );
                                recorder.span_end(
                                    SpanKind::Job,
                                    index as u64,
                                    token,
                                    vec![("latency_us", Json::UInt(latency.as_micros() as u64))],
                                );
                            }
                            if result_tx.send((index, latency, output)).is_err() {
                                return acc; // collector went away
                            }
                        }
                    }
                    acc
                }));
            }
            drop(result_tx); // the collector detects completion by hangup

            // Producer: enumerate index batches, blocking on the bounded
            // queue when the workers fall behind.
            let mut next = 0usize;
            let mut batch_index = 0u64;
            while next < points.len() {
                let end = (next + config.batch_size).min(points.len());
                let batch = next..end;
                next = end;
                let depth = queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                max_queue_depth.fetch_max(depth, Ordering::Relaxed);
                queue_depth_hist.record(depth as u64);
                if recorder.enabled() {
                    recorder.hist_record(
                        metric_name(prefix, "queue_depth"),
                        depth as u64,
                        QUEUE_DEPTH_BOUNDS,
                    );
                    if recorder.events_enabled() {
                        recorder.point(
                            SpanKind::Batch,
                            batch_index,
                            vec![
                                ("first", Json::UInt(batch.start as u64)),
                                ("len", Json::UInt(batch.len() as u64)),
                                ("depth", Json::UInt(depth as u64)),
                            ],
                        );
                    }
                }
                batch_index += 1;
                // Distinguish an immediate hand-off from a backpressure
                // stall: try first, and only if the queue is full count the
                // stall and fall back to the blocking send.
                match batch_tx.try_send(batch) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(batch)) => {
                        let stalled = Instant::now();
                        let failed = batch_tx.send(batch).is_err();
                        if recorder.enabled() {
                            recorder.counter_add(metric_name(prefix, "backpressure_stalls"), 1);
                            recorder.hist_record(
                                metric_name(prefix, "stall_us"),
                                stalled.elapsed().as_micros() as u64,
                                LATENCY_US_BOUNDS,
                            );
                        }
                        if failed {
                            break; // all workers died (only possible via panic)
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        break; // all workers died (only possible via panic)
                    }
                }
            }
            drop(batch_tx); // workers drain the queue and exit

            for (index, latency, output) in result_rx.iter() {
                job_latency_hist.record(latency.as_micros() as u64);
                slots[index] = Some(output);
            }
            for handle in handles {
                // Deliberate: a panicking job must fail the whole run, not
                // silently drop its output, so the worker's panic payload is
                // re-raised on the caller's thread here.
                shards.push(handle.join().expect("worker panicked"));
            }
        });

        let outputs = slots
            .into_iter()
            .enumerate()
            // Invariant: the producer enqueued every index exactly once and
            // all workers joined cleanly above, so every slot is filled; an
            // empty slot means the pool itself lost a result.
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no output")))
            .collect();
        PoolRun {
            outputs,
            shards,
            max_queue_depth: max_queue_depth.load(Ordering::Relaxed),
            queue_depth_hist,
            job_latency_hist,
            elapsed: start.elapsed(),
        }
    }
}

/// Interns `{prefix}.{suffix}` as a `&'static str`.
///
/// The recorder keys counters and histograms by `&'static str` so the hot
/// path never hashes owned strings. Pool metric names are composed at run
/// time from the configurable prefix, so they are leaked — once per
/// distinct `(prefix, suffix)` pair per process, which is bounded by the
/// handful of prefixes clients use ("fabric", "pool", "experiments").
fn metric_name(prefix: &'static str, suffix: &'static str) -> &'static str {
    use std::collections::HashMap;
    use std::sync::OnceLock;
    static NAMES: OnceLock<Mutex<HashMap<(&'static str, &'static str), &'static str>>> =
        OnceLock::new();
    let map = NAMES.get_or_init(|| Mutex::new(HashMap::new()));
    // Poisoning would need a formatting/allocation panic inside the critical
    // section below; there is no recovery that keeps metric names coherent,
    // so propagating the panic is the right behavior.
    let mut map = map.lock().expect("metric-name lock");
    map.entry((prefix, suffix))
        .or_insert_with(|| Box::leak(format!("{prefix}.{suffix}").into_boxed_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize) -> JobPool {
        JobPool::new(PoolConfig {
            workers,
            batch_size: 4,
            queue_capacity: 3,
            ..PoolConfig::default()
        })
    }

    #[test]
    fn outputs_are_in_point_order_for_any_worker_count() {
        let points: Vec<u32> = (0..101).collect();
        let serial: Vec<u64> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| derive_trial_seed(9, i as u64) ^ u64::from(p))
            .collect();
        for workers in [1usize, 2, 5, 8] {
            let run = pool(workers).run(&points, 9, &|seed, &p| seed ^ u64::from(p));
            assert_eq!(run.outputs, serial, "workers = {workers}");
            assert_eq!(run.shards.len(), workers);
        }
    }

    #[test]
    fn seeds_follow_the_trial_derivation() {
        let points = [(); 5];
        let run = pool(2).run(&points, 77, &|seed, _| seed);
        for (i, &seed) in run.outputs.iter().enumerate() {
            assert_eq!(seed, derive_trial_seed(77, i as u64));
        }
    }

    #[test]
    fn chunked_outputs_merge_in_order_for_any_worker_count() {
        // Each point's output is the list of (chunk, per-trial seed) pairs
        // its chunks produced, so the test detects both reordered chunks
        // and wrong seed derivation.
        let points: Vec<u64> = (0..9).map(|i| 3 + (i % 4)).collect(); // trials per point
        let job = |point_seed: u64, &_trials: &u64, chunk: usize| {
            vec![(chunk, derive_trial_seed(point_seed, chunk as u64))]
        };
        let merge = |_: usize, _: &u64, parts: Vec<Vec<(usize, u64)>>| {
            parts.into_iter().flatten().collect::<Vec<_>>()
        };
        let reference: Vec<Vec<(usize, u64)>> = points
            .iter()
            .enumerate()
            .map(|(i, &trials)| {
                let point_seed = derive_trial_seed(5, i as u64);
                (0..trials as usize)
                    .map(|c| (c, derive_trial_seed(point_seed, c as u64)))
                    .collect()
            })
            .collect();
        for workers in [1usize, 2, 4, 7] {
            let run =
                pool(workers).run_chunked(&points, 5, &|_, &trials| trials as usize, &job, &merge);
            assert_eq!(run.outputs, reference, "workers = {workers}");
        }
    }

    #[test]
    fn chunked_with_one_chunk_everywhere_degenerates_to_run() {
        let points: Vec<u32> = (0..37).collect();
        let plain = pool(3).run(&points, 8, &|seed, &p| seed ^ u64::from(p));
        let chunked = pool(3).run_chunked(
            &points,
            8,
            &|_, _| 1,
            &|seed, &p, _| seed ^ u64::from(p),
            &|_, _, mut parts: Vec<u64>| parts.pop().expect("one chunk"),
        );
        assert_eq!(plain.outputs, chunked.outputs);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn chunked_rejects_zero_chunks() {
        pool(2).run_chunked(&[1u8], 0, &|_, _| 0, &|_, _, _| 0u8, &|_, _, _| 0u8);
    }

    #[test]
    fn accumulators_partition_the_work() {
        let points: Vec<usize> = (0..200).collect();
        let run = pool(3).run_with(&points, 0, &|| 0usize, &|_, _, acc| *acc += 1);
        assert_eq!(run.shards.iter().sum::<usize>(), 200);
        assert_eq!(run.outputs.len(), 200);
    }

    #[test]
    fn empty_grid_is_fine() {
        let run = pool(4).run(&[] as &[u8], 1, &|_, _| 0u8);
        assert!(run.outputs.is_empty());
        assert_eq!(run.max_queue_depth, 0);
    }

    #[test]
    fn queue_depth_is_bounded_and_latency_recorded() {
        let points: Vec<u8> = vec![0; 64];
        let p = JobPool::new(PoolConfig {
            workers: 2,
            batch_size: 2,
            queue_capacity: 3,
            ..PoolConfig::default()
        });
        let run = p.run(&points, 0, &|_, _| {
            std::thread::sleep(Duration::from_micros(200))
        });
        assert!(run.max_queue_depth >= 1);
        assert!(
            run.max_queue_depth <= 3 + 2 + 1,
            "depth {} exceeds capacity + workers + 1",
            run.max_queue_depth
        );
        assert_eq!(run.job_latency_hist.count(), 64);
        assert!(run.elapsed > Duration::ZERO);
    }

    #[test]
    fn job_spans_and_metrics_are_emitted_when_enabled() {
        let recorder = Recorder::new();
        let p = JobPool::new(PoolConfig {
            workers: 2,
            recorder: recorder.clone(),
            ..PoolConfig::default()
        });
        let points: Vec<u8> = vec![0; 10];
        p.run(&points, 0, &|_, _| ());
        let snap = recorder.snapshot();
        assert_eq!(snap.hist("pool.job_us").map(|h| h.count()), Some(10));
        // One start + one end event per job, plus batch points.
        assert!(recorder.events().len() >= 20);
    }

    #[test]
    fn job_spans_can_be_disabled() {
        let recorder = Recorder::new();
        let p = JobPool::new(PoolConfig {
            workers: 2,
            job_spans: false,
            recorder: recorder.clone(),
            ..PoolConfig::default()
        });
        let points: Vec<u8> = vec![0; 10];
        p.run(&points, 0, &|_, _| ());
        let snap = recorder.snapshot();
        assert!(snap.hist("pool.job_us").is_none());
        assert!(recorder.events().iter().all(|e| e.span != SpanKind::Job));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        JobPool::new(PoolConfig {
            workers: 0,
            ..PoolConfig::default()
        });
    }
}
