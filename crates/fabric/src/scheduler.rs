//! Sharding many sessions across a fixed worker pool.
//!
//! The scheduler is a thin protocol-aware layer over the generic
//! [`crate::pool::JobPool`]: it submits one job per session id,
//! and the pool supplies the bounded batch queue, producer backpressure,
//! worker threads, and in-order result collection. Each job derives the
//! session RNG from the pool-provided seed, samples inputs, runs the
//! session through the shared [`Transport`], and emits the per-session
//! telemetry (spans, outcome counters, latency/bits histograms). Per-worker
//! [`CommStats`] shards ride the pool's worker-local accumulators, so
//! pooled statistics are recovered by merging without any cross-worker
//! locking during the run.
//!
//! Determinism does not depend on the schedule: session `i`'s RNG is
//! derived from `(master_seed, i)` via
//! [`derive_trial_seed`](bci_blackboard::runner::derive_trial_seed), so
//! whichever worker runs it — and in whatever order — the transcript is
//! the one the serial runner would produce. The pool returns records in
//! session-id order, which also makes downstream statistics
//! order-independent.

use std::time::Duration;

use bci_blackboard::board::Board;
use bci_blackboard::protocol::Protocol;
use bci_blackboard::stats::CommStats;
use bci_encoding::wire::Wire;
use bci_telemetry::hist::{Histogram, BITS_BOUNDS, LATENCY_US_BOUNDS};
use bci_telemetry::{Json, Recorder, SpanKind};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::pool::{JobPool, PoolConfig};
use crate::session::{FaultPlan, SessionOutcome};
use crate::transport::{SessionContext, Transport};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Sessions per queue entry. Batching amortizes queue synchronization
    /// over several sessions when individual sessions are very short.
    pub batch_size: usize,
    /// Maximum batches queued ahead of the workers. The producer blocks
    /// when the queue is full (backpressure).
    pub queue_capacity: usize,
    /// Wall-clock budget per session, if any.
    pub deadline: Option<Duration>,
    /// Keep each session's final board in its record. Costs memory
    /// proportional to total transcript size; enable for tests and
    /// replay, disable for large sweeps.
    pub keep_transcripts: bool,
    /// Telemetry sink for the run: session spans, outcome counters,
    /// latency/bits/queue-depth histograms, backpressure stalls. The
    /// default ([`Recorder::disabled`]) records nothing and costs one
    /// branch per instrumentation site. The recorder only observes — with
    /// recording on or off, per-session transcripts and the downstream
    /// [`RunReport`](bci_blackboard::runner::RunReport) are bit-identical.
    pub recorder: Recorder,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            batch_size: 32,
            queue_capacity: 8,
            deadline: Some(Duration::from_secs(5)),
            keep_transcripts: false,
            recorder: Recorder::disabled(),
        }
    }
}

/// Everything recorded about one scheduled session.
#[derive(Debug, Clone)]
pub struct SessionRecord<O> {
    /// The session's id (also its RNG-derivation index).
    pub session_id: u64,
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// The output, iff completed.
    pub output: Option<O>,
    /// Whether the output matched the reference function (iff completed).
    pub correct: Option<bool>,
    /// Bits on the board at termination.
    pub bits_written: usize,
    /// Wall-clock duration of the session.
    pub latency: Duration,
    /// The final board, if `keep_transcripts` was set.
    pub board: Option<Board>,
}

/// The scheduler's raw product: per-session records plus pool telemetry.
#[derive(Debug)]
pub struct SchedulerRun<O> {
    /// One record per session, sorted by session id.
    pub records: Vec<SessionRecord<O>>,
    /// Per-worker communication statistics over the sessions that worker
    /// completed. Merging the shards (see
    /// [`CommStats::merge`](bci_blackboard::stats::CommStats)) recovers
    /// the pooled statistics without any cross-worker locking during the
    /// run.
    pub shards: Vec<CommStats>,
    /// Highest queue depth (batches) observed during the run. The gauge
    /// counts a batch from just before the producer enqueues it until just
    /// after a worker dequeues it, so it can transiently exceed the queue
    /// capacity by up to `workers + 1` (one batch per mid-pop worker plus
    /// the batch a blocked producer is holding).
    pub max_queue_depth: usize,
    /// Queue-depth histogram: one sample per enqueued batch, taken at
    /// enqueue time. Feeds the `queue p50/p95/p99` columns of
    /// [`FabricMetrics`](crate::metrics::FabricMetrics).
    pub queue_depth_hist: Histogram,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

/// Runs `sessions` sessions of `protocol` across the worker pool.
///
/// Session `i` draws its inputs and protocol randomness from the RNG
/// derived from `(master_seed, i)`; `reference` supplies the expected
/// output for correctness accounting. Faults in `plan` are injected into
/// their selected sessions.
///
/// # Panics
///
/// Panics if `config.workers`, `config.batch_size`, or
/// `config.queue_capacity` is zero.
#[allow(clippy::too_many_arguments)]
pub fn run_sessions<T, P, S, F>(
    transport: &T,
    protocol: &P,
    sample_inputs: &S,
    reference: &F,
    sessions: u64,
    master_seed: u64,
    plan: &FaultPlan,
    config: &SchedulerConfig,
) -> SchedulerRun<P::Output>
where
    T: Transport,
    P: Protocol + Sync,
    P::Input: Sync + Wire,
    P::Output: PartialEq + Send + Wire,
    S: Fn(&mut dyn RngCore) -> Vec<P::Input> + Sync,
    F: Fn(&[P::Input]) -> P::Output + Sync,
{
    let pool = JobPool::new(PoolConfig {
        workers: config.workers,
        batch_size: config.batch_size,
        queue_capacity: config.queue_capacity,
        // Historical metric names: the scheduler predates the generic pool.
        metric_prefix: "fabric",
        // The job closure emits its own Session spans; pool-level Job spans
        // would double every session in the event stream.
        job_spans: false,
        recorder: config.recorder.clone(),
    });
    let recorder = &config.recorder;
    let session_ids: Vec<u64> = (0..sessions).collect();
    let run = pool.run_with(
        &session_ids,
        master_seed,
        &CommStats::new,
        &|seed, &session_id, shard: &mut CommStats| {
            let token = recorder.span_start(SpanKind::Session, session_id, vec![]);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let inputs = sample_inputs(&mut rng);
            let expected = reference(&inputs);
            let faults = plan.for_session(session_id);
            let ctx = SessionContext {
                session_id,
                deadline: config.deadline,
                faults: &faults,
                recorder,
            };
            let result = transport.run_session(protocol, &inputs, rng, &ctx);
            if result.outcome.is_completed() {
                shard.record(result.bits_written as f64);
            }
            if recorder.enabled() {
                recorder.counter_add("fabric.sessions", 1);
                recorder.counter_add(
                    match result.outcome {
                        SessionOutcome::Completed => "fabric.completed",
                        SessionOutcome::TimedOut => "fabric.timed_out",
                        SessionOutcome::Aborted(_) => "fabric.aborted",
                    },
                    1,
                );
                recorder.hist_record(
                    "fabric.latency_us",
                    result.latency.as_micros() as u64,
                    LATENCY_US_BOUNDS,
                );
                recorder.hist_record(
                    "fabric.bits_per_session",
                    result.bits_written as u64,
                    BITS_BOUNDS,
                );
                recorder.span_end(
                    SpanKind::Session,
                    session_id,
                    token,
                    vec![
                        ("outcome", Json::str(result.outcome.label())),
                        ("bits", Json::UInt(result.bits_written as u64)),
                    ],
                );
            }
            let correct = result.output.as_ref().map(|o| *o == expected);
            SessionRecord {
                session_id,
                outcome: result.outcome,
                output: result.output,
                correct,
                bits_written: result.bits_written,
                latency: result.latency,
                board: config.keep_transcripts.then_some(result.board),
            }
        },
    );
    SchedulerRun {
        records: run.outputs,
        shards: run.shards,
        max_queue_depth: run.max_queue_depth,
        queue_depth_hist: run.queue_depth_hist,
        elapsed: run.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{FaultKind, FaultSpec, SessionSelector};
    use crate::transport::{ChannelTransport, InProcessTransport};
    use bci_protocols::disj::broadcast::BroadcastDisj;
    use bci_protocols::disj::disj_function;
    use bci_protocols::workload;
    use rand::Rng;

    fn config(workers: usize) -> SchedulerConfig {
        SchedulerConfig {
            workers,
            batch_size: 8,
            queue_capacity: 4,
            deadline: Some(Duration::from_secs(10)),
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn all_sessions_run_exactly_once_and_in_order() {
        let proto = BroadcastDisj::new(64, 4);
        let run = run_sessions(
            &InProcessTransport,
            &proto,
            &|rng: &mut dyn RngCore| workload::random_sets(64, 4, 0.7, rng),
            &|inputs: &[_]| disj_function(inputs),
            100,
            7,
            &FaultPlan::new(),
            &config(4),
        );
        assert_eq!(run.records.len(), 100);
        for (i, rec) in run.records.iter().enumerate() {
            assert_eq!(rec.session_id, i as u64, "sorted by id");
            assert_eq!(rec.outcome, SessionOutcome::Completed);
            assert_eq!(rec.correct, Some(true));
        }
        // Every worker shard saw some sessions; pooled count matches.
        let total: u64 = run.shards.iter().map(CommStats::count).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let proto = BroadcastDisj::new(48, 3);
        let sample = |rng: &mut dyn RngCore| workload::random_sets(48, 3, 0.6, rng);
        let runs: Vec<_> = [1usize, 2, 7]
            .iter()
            .map(|&w| {
                run_sessions(
                    &InProcessTransport,
                    &proto,
                    &sample,
                    &|inputs: &[_]| disj_function(inputs),
                    60,
                    11,
                    &FaultPlan::new(),
                    &config(w),
                )
            })
            .collect();
        for run in &runs[1..] {
            for (a, b) in runs[0].records.iter().zip(&run.records) {
                assert_eq!(a.session_id, b.session_id);
                assert_eq!(a.bits_written, b.bits_written);
                assert_eq!(a.output, b.output);
            }
        }
    }

    #[test]
    fn sharded_stats_merge_to_the_pooled_stream() {
        let proto = BroadcastDisj::new(80, 4);
        let run = run_sessions(
            &InProcessTransport,
            &proto,
            &|rng: &mut dyn RngCore| workload::random_sets(80, 4, 0.5, rng),
            &|inputs: &[_]| disj_function(inputs),
            200,
            13,
            &FaultPlan::new(),
            &config(4),
        );
        let mut merged = CommStats::new();
        for shard in &run.shards {
            merged.merge(shard);
        }
        // Reference: one serial accumulation in session order.
        let mut serial = CommStats::new();
        for rec in &run.records {
            serial.record(rec.bits_written as f64);
        }
        assert_eq!(merged.count(), serial.count());
        assert!((merged.mean() - serial.mean()).abs() < 1e-9);
        assert!((merged.variance() - serial.variance()).abs() < 1e-6);
        assert_eq!(merged.min(), serial.min());
        assert_eq!(merged.max(), serial.max());
    }

    #[test]
    fn transcripts_are_kept_on_request() {
        let proto = BroadcastDisj::new(32, 3);
        let mut cfg = config(2);
        cfg.keep_transcripts = true;
        let run = run_sessions(
            &ChannelTransport,
            &proto,
            &|rng: &mut dyn RngCore| workload::random_sets(32, 3, 0.5, rng),
            &|inputs: &[_]| disj_function(inputs),
            10,
            3,
            &FaultPlan::new(),
            &cfg,
        );
        assert!(run.records.iter().all(|r| r.board.is_some()));
        let no_keep = run_sessions(
            &ChannelTransport,
            &proto,
            &|rng: &mut dyn RngCore| workload::random_sets(32, 3, 0.5, rng),
            &|inputs: &[_]| disj_function(inputs),
            10,
            3,
            &FaultPlan::new(),
            &config(2),
        );
        assert!(no_keep.records.iter().all(|r| r.board.is_none()));
    }

    #[test]
    fn queue_depth_is_bounded_by_capacity() {
        // Slow sessions force the producer to fill the queue; the gauge
        // must never exceed capacity + the batch the producer is blocked on.
        let proto = BroadcastDisj::new(16, 2);
        let plan = FaultPlan::new().with(FaultSpec {
            kind: FaultKind::SlowPlayer(Duration::from_millis(2)),
            player: 0,
            sessions: SessionSelector::All,
        });
        let cfg = SchedulerConfig {
            workers: 2,
            batch_size: 2,
            queue_capacity: 3,
            deadline: Some(Duration::from_secs(10)),
            ..SchedulerConfig::default()
        };
        let run = run_sessions(
            &InProcessTransport,
            &proto,
            &|rng: &mut dyn RngCore| workload::random_sets(16, 2, 0.5, rng),
            &|inputs: &[_]| disj_function(inputs),
            40,
            5,
            &plan,
            &cfg,
        );
        assert_eq!(run.records.len(), 40);
        assert!(
            run.max_queue_depth <= cfg.queue_capacity + cfg.workers + 1,
            "depth {} exceeds bound",
            run.max_queue_depth
        );
        assert!(run.max_queue_depth >= 1);
    }

    #[test]
    fn mixed_bool_random_range_inputs_are_reproducible() {
        // Sanity: sample_inputs sees the same rng stream as the serial
        // runner would; bits consumed by random_range do not desync.
        let proto = BroadcastDisj::new(40, 4);
        let sample = |rng: &mut dyn RngCore| {
            let density = rng.random_range(0.3..0.9);
            workload::random_sets(40, 4, density, rng)
        };
        let a = run_sessions(
            &InProcessTransport,
            &proto,
            &sample,
            &|inputs: &[_]| disj_function(inputs),
            30,
            21,
            &FaultPlan::new(),
            &config(3),
        );
        let b = run_sessions(
            &ChannelTransport,
            &proto,
            &sample,
            &|inputs: &[_]| disj_function(inputs),
            30,
            21,
            &FaultPlan::new(),
            &config(5),
        );
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.bits_written, y.bits_written);
            assert_eq!(x.output, y.output);
        }
    }
}
