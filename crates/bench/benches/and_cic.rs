//! Criterion bench: exact conditional-information-cost computation (E2's
//! runtime companion) — tree construction plus the factorized `O(k²·leaves)`
//! CIC evaluation.

use bci_lowerbound::cic::cic_hard;
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::and_trees::sequential_and;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cic(c: &mut Criterion) {
    let mut group = c.benchmark_group("and_cic");
    group.sample_size(10);
    for &k in &[16usize, 64, 256] {
        let tree = sequential_and(k);
        let mu = HardDist::new(k);
        group.bench_with_input(BenchmarkId::new("cic_hard", k), &k, |b, _| {
            b.iter(|| black_box(cic_hard(&tree, &mu)))
        });
        group.bench_with_input(BenchmarkId::new("build_tree", k), &k, |b, &k| {
            b.iter(|| black_box(sequential_and(k).leaves().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cic);
criterion_main!(benches);
