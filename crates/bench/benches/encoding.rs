//! Criterion bench: the encoding substrate — Elias codes, exact binomials,
//! and subset rank/unrank.

use bci_encoding::binomial::binomial;
use bci_encoding::bitio::{BitReader, BitWriter};
use bci_encoding::combinadic::SubsetCodec;
use bci_encoding::elias;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_elias(c: &mut Criterion) {
    c.bench_function("elias_gamma_roundtrip_1k_values", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for v in 1..=1000u64 {
                elias::gamma_encode(v, &mut w);
            }
            let bits = w.into_bits();
            let mut r = BitReader::new(&bits);
            let mut sum = 0u64;
            while let Some(v) = elias::gamma_decode(&mut r) {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_exact");
    for &(n, k) in &[(1000u64, 50u64), (10000, 100)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("C({n},{k})")),
            &(n, k),
            |b, &(n, k)| b.iter(|| black_box(binomial(n, k).bit_length())),
        );
    }
    group.finish();
}

fn bench_unrank(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_unrank");
    group.sample_size(20);
    let codec = SubsetCodec::new(2048, 128);
    let subset: Vec<u64> = (0..128u64).map(|i| i * 16 + 3).collect();
    let rank = codec.rank(&subset);
    group.bench_function("z2048_b128", |b| {
        b.iter(|| black_box(codec.unrank(&rank).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_elias, bench_binomial, bench_unrank);
criterion_main!(benches);
