//! Criterion bench — ablations A1 and A2 from `DESIGN.md`:
//!
//! * **A1**: factorized exact information cost (`O(#leaves·k)`) vs
//!   brute-force `2^k` enumeration. The design choice that makes the
//!   lower-bound sweeps feasible.
//! * **A2**: the exact combinadic batch codec vs per-element naive encoding
//!   inside the Theorem 2 protocol — the `log k` vs `log n` separation in
//!   running-time form (naive is cheaper to *encode* but sends more bits;
//!   this bench quantifies the CPU price of the optimal code).

use bci_encoding::bitio::BitWriter;
use bci_encoding::combinadic::SubsetCodec;
use bci_protocols::and_trees::sequential_and;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_a1_ic(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_ic_factorized_vs_bruteforce");
    for &k in &[8usize, 12, 14] {
        let tree = sequential_and(k);
        let priors = vec![1.0 - 1.0 / k as f64; k];
        group.bench_with_input(BenchmarkId::new("factorized", k), &k, |b, _| {
            b.iter(|| black_box(tree.information_cost_product(&priors)))
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", k), &k, |b, _| {
            b.iter(|| black_box(tree.information_cost_bruteforce(&priors)))
        });
    }
    group.finish();
}

fn bench_a2_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_subset_codec");
    group.sample_size(20);
    for &(z, bsz) in &[(1024u64, 64u64), (4096, 64), (4096, 512)] {
        let subset: Vec<u64> = (0..bsz).map(|i| i * (z / bsz)).collect();
        group.bench_with_input(
            BenchmarkId::new("combinadic_encode", format!("z{z}_b{bsz}")),
            &subset,
            |b, subset| {
                let codec = SubsetCodec::new(z, bsz);
                b.iter(|| {
                    let mut w = BitWriter::new();
                    codec.encode(subset, &mut w);
                    black_box(w.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_encode", format!("z{z}_b{bsz}")),
            &subset,
            |b, subset| {
                let width = 64 - (z - 1).leading_zeros();
                b.iter(|| {
                    let mut w = BitWriter::new();
                    for &e in subset {
                        w.write_bits(e, width);
                    }
                    black_box(w.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_a1_ic, bench_a2_codec);
criterion_main!(benches);
