//! Criterion bench: the Lemma 7 protocol — literal exchange vs the cost
//! model (E6/E7's runtime companion).

use bci_compression::cost_model::sample_cost;
use bci_compression::sampling::{exchange, SamplerConfig};
use bci_core::experiments::e6_sampling::controlled_pair;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let config = SamplerConfig::default();
    for &u in &[64usize, 1024] {
        let (eta, nu) = controlled_pair(u, 0.5);
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::new("literal_exchange", u), &u, |b, _| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(exchange(&eta, &nu, &config, seed).bits)
            })
        });
    }
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for &s in &[4u64, 64] {
        group.bench_with_input(BenchmarkId::new("cost_model", s), &s, |b, &s| {
            b.iter(|| black_box(sample_cost(s, 4096.0, &mut rng).total()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
