//! Criterion bench: the two kernels behind the suite's critical path.
//!
//! * `tree_transcript`: dense all-leaves evaluation
//!   (`transcript_dist_given_input`) vs the sparse O(depth) walk
//!   (`transcript_support_given_input`) on `sequential_and(2048)` — the
//!   exact computation E13 folds over its support inputs.
//! * `hw_round`: one full Håstad–Wigderson run at `n = 2²⁴, s = 128` on
//!   the dense `BitSet` lane (`O(n)` per pruning round) vs the sparse
//!   lane (`O(s)` per round) — the exact computation behind E12's
//!   heaviest grid point.
//! * `cic_dense_vs_batched`: the `cic_hard` evaluation over all `k` prior
//!   slices of the hard distribution — per-slice
//!   `information_cost_product` vs the one-pass
//!   `information_cost_product_many` — the exact computation behind E2's
//!   heaviest points.
//! * `lemma7_single_vs_batched`: 200 sampler runs — per-seed `exchange` vs
//!   `exchange_many` with its shared smoothed-ν table — the exact
//!   computation behind every E6 point.

use bci_compression::sampling::{exchange, exchange_many, SamplerConfig};
use bci_encoding::bitset::{BitSet, SparseBitSet};
use bci_info::dist::Dist;
use bci_lowerbound::hard_dist::HardDist;
use bci_protocols::{and_trees::sequential_and, sparse};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_tree_transcript(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_transcript");
    group.sample_size(10);
    let k = 2048;
    let tree = sequential_and(k);
    let mut x = vec![true; k];
    x[k / 2] = false;
    group.bench_function("dense_all_leaves_k2048", |b| {
        b.iter(|| black_box(tree.transcript_dist_given_input(&x)))
    });
    group.bench_function("sparse_walk_k2048", |b| {
        b.iter(|| black_box(tree.transcript_support_given_input(&x)))
    });
    group.finish();
}

fn bench_hw_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_round");
    group.sample_size(10);
    let (n, s) = (1usize << 24, 128usize);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut xs = SparseBitSet::new(n);
    let mut ys = SparseBitSet::new(n);
    while xs.len() < s {
        xs.insert(rng.random_range(0..n));
    }
    while ys.len() < s {
        let e = rng.random_range(0..n);
        if !xs.contains(e) {
            ys.insert(e);
        }
    }
    let xd = BitSet::from_elements(n, xs.iter());
    let yd = BitSet::from_elements(n, ys.iter());
    group.bench_function("dense_n2e24_s128", |b| {
        b.iter(|| black_box(sparse::run(&xd, &yd, &mut rng).bits))
    });
    group.bench_function("sparse_n2e24_s128", |b| {
        b.iter(|| black_box(sparse::run_sparse(&xs, &ys, &mut rng).bits))
    });
    group.finish();
}

fn bench_cic(c: &mut Criterion) {
    let mut group = c.benchmark_group("cic_dense_vs_batched");
    group.sample_size(10);
    for k in [128usize, 512] {
        let tree = sequential_and(k);
        let mu = HardDist::new(k);
        let slices: Vec<Vec<f64>> = (0..k).map(|z| mu.priors_given_z(z)).collect();
        group.bench_function(format!("dense_k{k}"), |b| {
            b.iter(|| {
                let total: f64 = slices
                    .iter()
                    .map(|p| tree.information_cost_product(p))
                    .sum();
                black_box(total)
            })
        });
        group.bench_function(format!("batched_k{k}"), |b| {
            b.iter(|| {
                let costs = tree.information_cost_product_many(&slices);
                black_box(costs.iter().sum::<f64>())
            })
        });
    }
    group.finish();
}

fn bench_lemma7(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma7_single_vs_batched");
    group.sample_size(10);
    let universe = 4096;
    let mut probs = vec![(1.0 - 0.9) / (universe as f64 - 1.0); universe];
    probs[0] = 0.9;
    let eta = Dist::new(probs).expect("normalized");
    let nu = Dist::uniform(universe);
    let config = SamplerConfig::default();
    let seeds: Vec<u64> = (0..200u64).collect();
    group.bench_function("single_200_seeds", |b| {
        b.iter(|| {
            let total: u64 = seeds
                .iter()
                .map(|&s| exchange(&eta, &nu, &config, s).bits as u64)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("batched_200_seeds", |b| {
        b.iter(|| {
            let total: u64 = exchange_many(&eta, &nu, &config, &seeds)
                .iter()
                .map(|e| e.bits as u64)
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_transcript,
    bench_hw_round,
    bench_cic,
    bench_lemma7
);
criterion_main!(benches);
