//! Criterion bench: the two kernels behind the suite's critical path.
//!
//! * `tree_transcript`: dense all-leaves evaluation
//!   (`transcript_dist_given_input`) vs the sparse O(depth) walk
//!   (`transcript_support_given_input`) on `sequential_and(2048)` — the
//!   exact computation E13 folds over its support inputs.
//! * `hw_round`: one full Håstad–Wigderson run at `n = 2²⁴, s = 128` on
//!   the dense `BitSet` lane (`O(n)` per pruning round) vs the sparse
//!   lane (`O(s)` per round) — the exact computation behind E12's
//!   heaviest grid point.

use bci_encoding::bitset::{BitSet, SparseBitSet};
use bci_protocols::{and_trees::sequential_and, sparse};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_tree_transcript(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_transcript");
    group.sample_size(10);
    let k = 2048;
    let tree = sequential_and(k);
    let mut x = vec![true; k];
    x[k / 2] = false;
    group.bench_function("dense_all_leaves_k2048", |b| {
        b.iter(|| black_box(tree.transcript_dist_given_input(&x)))
    });
    group.bench_function("sparse_walk_k2048", |b| {
        b.iter(|| black_box(tree.transcript_support_given_input(&x)))
    });
    group.finish();
}

fn bench_hw_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_round");
    group.sample_size(10);
    let (n, s) = (1usize << 24, 128usize);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let mut xs = SparseBitSet::new(n);
    let mut ys = SparseBitSet::new(n);
    while xs.len() < s {
        xs.insert(rng.random_range(0..n));
    }
    while ys.len() < s {
        let e = rng.random_range(0..n);
        if !xs.contains(e) {
            ys.insert(e);
        }
    }
    let xd = BitSet::from_elements(n, xs.iter());
    let yd = BitSet::from_elements(n, ys.iter());
    group.bench_function("dense_n2e24_s128", |b| {
        b.iter(|| black_box(sparse::run(&xd, &yd, &mut rng).bits))
    });
    group.bench_function("sparse_n2e24_s128", |b| {
        b.iter(|| black_box(sparse::run_sparse(&xs, &ys, &mut rng).bits))
    });
    group.finish();
}

criterion_group!(benches, bench_tree_transcript, bench_hw_round);
criterion_main!(benches);
