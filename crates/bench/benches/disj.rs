//! Criterion bench: throughput of the two `DISJ_{n,k}` protocols (E1's
//! runtime companion) across the `(n, k)` grid.

use bci_protocols::disj::{batched, naive};
use bci_protocols::workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_disj(c: &mut Criterion) {
    let mut group = c.benchmark_group("disj");
    group.sample_size(10);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    for &(n, k) in &[(1024usize, 8usize), (4096, 8), (4096, 64)] {
        let inputs = workload::planted_zero_cover(n, k, 0.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_k{k}")),
            &inputs,
            |b, inputs| b.iter(|| black_box(naive::run(inputs).bits)),
        );
        group.bench_with_input(
            BenchmarkId::new("batched_exact", format!("n{n}_k{k}")),
            &inputs,
            |b, inputs| b.iter(|| black_box(batched::run(inputs).bits)),
        );
        group.bench_with_input(
            BenchmarkId::new("batched_costmodel", format!("n{n}_k{k}")),
            &inputs,
            |b, inputs| b.iter(|| black_box(batched::cost(inputs).bits)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_disj);
criterion_main!(benches);
