//! Criterion bench: extension modules — union protocols, the sparse
//! Håstad–Wigderson protocol, Huffman codes, the coordinate-wise DISJ
//! ablation (A4), and the alias sampler.

use bci_encoding::bitset::BitSet;
use bci_encoding::huffman::HuffmanCode;
use bci_info::dist::Dist;
use bci_info::sampling::AliasSampler;
use bci_protocols::disj::{batched, coordinatewise};
use bci_protocols::{sparse, union, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("union");
    group.sample_size(10);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let inputs = workload::random_sets(2048, 8, 0.5, &mut rng);
    group.bench_function("naive_n2048_k8", |b| {
        b.iter(|| black_box(union::naive::run(&inputs).bits))
    });
    group.bench_function("batched_n2048_k8", |b| {
        b.iter(|| black_box(union::batched::run(&inputs).bits))
    });
    group.finish();
}

/// A4: coordinate-wise AND vs batched disjointness — the protocol-level
/// realization of "why batching matters".
fn bench_a4_coordinatewise(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_disj_structure");
    group.sample_size(10);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let inputs = workload::planted_zero_cover(2048, 16, 0.0, &mut rng);
    group.bench_function("coordinatewise", |b| {
        b.iter(|| black_box(coordinatewise::run(&inputs).bits))
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(batched::run(&inputs).bits))
    });
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_hw");
    group.sample_size(10);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    for &s in &[64usize, 256] {
        let n = 1 << 18;
        let mut x = BitSet::new(n);
        let mut y = BitSet::new(n);
        while x.len() < s {
            x.insert(rng.random_range(0..n));
        }
        while y.len() < s {
            let e = rng.random_range(0..n);
            if !x.contains(e) {
                y.insert(e);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| black_box(sparse::run(&x, &y, &mut rng).bits))
        });
    }
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let mut group = c.benchmark_group("huffman");
    let probs: Vec<f64> = {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let w: Vec<f64> = (0..512).map(|_| rng.random::<f64>() + 0.01).collect();
        let total: f64 = w.iter().sum();
        w.into_iter().map(|x| x / total).collect()
    };
    group.bench_function("build_512_symbols", |b| {
        b.iter(|| black_box(HuffmanCode::from_probs(&probs).code_len(0)))
    });
    group.finish();
}

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let d = Dist::uniform(1024);
    let alias = AliasSampler::new(&d);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    group.bench_function("alias_sample_1024", |b| {
        b.iter(|| black_box(alias.sample(&mut rng)))
    });
    group.bench_function("inverse_cdf_sample_1024", |b| {
        b.iter(|| black_box(d.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_union,
    bench_a4_coordinatewise,
    bench_sparse,
    bench_huffman,
    bench_alias
);
criterion_main!(benches);
