//! Golden-output regression tests for the deterministic experiments.
//!
//! The ids snapshotted here compute exact quantities — no RNG anywhere in
//! their point computation — so their rendered reports must stay
//! byte-identical across refactors. This is the guard behind the suite's
//! fast paths (the sparse `ProtocolTree` walk feeding E13, the sparse
//! information-cost accumulation): an algorithmic change that shifts any
//! digit of any deterministic table fails here, not in review.
//!
//! Randomized experiments (seeded Monte-Carlo) are *reproducible* but
//! their numbers legitimately move whenever an implementation changes how
//! it consumes its RNG stream (E12 did exactly that when it moved to the
//! sparse lane with per-trial seeds), so for those we assert only shape:
//! at least one table, a row per grid point in the first table, and
//! consistent row widths.
//!
//! Regenerate snapshots after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bci-bench --test golden_tables
//! ```

use bci_bench::suite::report_by_id;
use bci_core::experiments::registry::find;
use std::path::PathBuf;

/// Experiments whose point computation is exact (no RNG): snapshotted.
const DETERMINISTIC: &[&str] = &[
    "e2", "e3", "e5", "e8", "e9", "e11", "e13", "e16", "e17", "e20",
];

/// Seeded Monte-Carlo experiments: shape-checked only.
const RANDOMIZED: &[&str] = &[
    "e1", "e4", "e6", "e7", "e10", "e12", "e14", "e15", "e18", "e19",
];

fn golden_path(id: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{id}.txt"))
}

#[test]
fn deterministic_reports_match_golden_snapshots() {
    let bless = std::env::var_os("UPDATE_GOLDEN").is_some();
    for id in DETERMINISTIC {
        let rendered = report_by_id(id, 1).expect("registered").render_text();
        let path = golden_path(id);
        if bless {
            std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
            std::fs::write(&path, &rendered).expect("write snapshot");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert!(
            rendered == expected,
            "{id}: rendered report differs from {}.\n\
             If the change is intentional, regenerate with UPDATE_GOLDEN=1.\n\
             --- expected ---\n{expected}\n--- got ---\n{rendered}",
            path.display()
        );
    }
}

#[test]
fn deterministic_snapshots_are_worker_count_independent() {
    // The snapshot test runs serial; the same bytes must come out of a
    // parallel pool (including any TrialSplit chunking).
    for id in ["e13", "e16"] {
        let serial = report_by_id(id, 1).expect("registered").render_text();
        let parallel = report_by_id(id, 3).expect("registered").render_text();
        assert_eq!(serial, parallel, "{id}");
    }
}

#[test]
fn randomized_reports_keep_their_shape() {
    for id in RANDOMIZED {
        let exp = find(id).expect("registered");
        let report = report_by_id(id, 1).expect("registered");
        assert!(!report.tables.is_empty(), "{id}: no tables");
        // A fixed number of rows per grid point (usually 1; e18 emits one
        // row per promise case, e7 splits its points across two tables),
        // so a silently dropped point still fails.
        let rows: usize = report.tables.iter().map(|t| t.rows.len()).sum();
        let points = exp.grid().len();
        assert!(
            rows >= points && rows.is_multiple_of(points),
            "{id}: first table has {rows} rows for {points} grid points"
        );
        for t in &report.tables {
            assert!(!t.columns.is_empty(), "{id}");
            for row in &t.rows {
                assert_eq!(row.len(), t.columns.len(), "{id}");
            }
        }
    }
}

#[test]
fn every_registry_id_is_classified() {
    // A new experiment must be placed in exactly one of the two lists, so
    // the golden suite can't silently skip it.
    let mut ids: Vec<&str> = DETERMINISTIC.iter().chain(RANDOMIZED).copied().collect();
    ids.sort_unstable();
    let mut registered: Vec<&str> = bci_bench::suite::suite_ids();
    registered.sort_unstable();
    assert_eq!(ids, registered);
}
