//! Drift tests: the experiment registry, the `table_*` binaries, and the
//! `table_all` suite must stay in sync. Adding E19 to the registry without
//! a `table_e19_*` binary (or vice versa) fails here.

use std::collections::BTreeMap;
use std::path::Path;

/// The experiment ids implied by the `src/bin/table_e*.rs` file names
/// (`table_e1_disj_upper.rs` → `e1`), with multiplicities.
fn bin_ids() -> BTreeMap<String, usize> {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut counts = BTreeMap::new();
    for entry in std::fs::read_dir(&bin_dir).expect("src/bin exists") {
        let name = entry.expect("readable dir entry").file_name();
        let name = name.to_str().expect("utf-8 file name");
        let Some(rest) = name.strip_prefix("table_e") else {
            continue;
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        assert!(
            !digits.is_empty() && rest[digits.len()..].starts_with('_'),
            "binary name '{name}' does not match table_e<N>_<slug>.rs"
        );
        *counts.entry(format!("e{digits}")).or_insert(0) += 1;
    }
    counts
}

#[test]
fn every_registry_id_has_exactly_one_table_binary() {
    let bins = bin_ids();
    let registry_ids = bci_bench::suite::suite_ids();
    for id in &registry_ids {
        assert_eq!(
            bins.get(*id),
            Some(&1),
            "registry id {id} needs exactly one table_e* binary; found {bins:?}"
        );
    }
    assert_eq!(
        bins.len(),
        registry_ids.len(),
        "stray table_e* binary without a registry entry: {bins:?}"
    );
}

#[test]
fn suite_output_lists_every_registry_id_exactly_once() {
    // `suite::all` maps the registry in order, so its emitted ids are
    // exactly `suite_ids()` — assert that list matches the registry and
    // holds no duplicates.
    let suite_ids = bci_bench::suite::suite_ids();
    let registry_ids: Vec<&str> = bci_core::experiments::registry::registry()
        .iter()
        .map(|e| e.id())
        .collect();
    assert_eq!(suite_ids, registry_ids);
    let mut seen = std::collections::BTreeSet::new();
    for id in &suite_ids {
        assert!(seen.insert(*id), "{id} appears twice in the suite output");
    }
}
