//! Prints the E11 table (extension: internal vs external information).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e11());
}
