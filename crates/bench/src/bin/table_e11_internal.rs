//! Prints the E11 table (extension: internal vs external information).

use bci_core::experiments::e11_internal as e11;

fn main() {
    println!("E11 — internal vs external information cost, two players");
    println!("(joint Pr[X=Y] = 1/2 + 2*rho; rho = 0 is the product case)\n");
    let rows = e11::run(&e11::default_rhos());
    print!("{}", e11::render(&rows));
}
