//! Prints the E11 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e11", 1).expect("e11 is registered"));
}
