//! Prints the TCP wire-overhead table: wire bytes vs transcript bits for
//! loopback deployments of DISJ across `(n, k)` points, with every TCP
//! transcript digest-checked against the in-process transport (the rows
//! assert bit-identical transcripts before printing).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::net_table::net());
}
