//! Prints the E16 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e16", 1).expect("e16 is registered"));
}
