//! Prints the E16 table (extension: the per-round information profile).

use bci_core::experiments::e16_profile as e16;

fn main() {
    println!("E16 — chain-rule information profile of sequential AND_k");
    println!("(exact, under the hard distribution; Section 6's decomposition)\n");
    for k in [16usize, 128] {
        let profile = e16::run(k);
        println!("{}", e16::render(&profile, 10));
    }
}
