//! Prints the E16 table (extension: the per-round information profile).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e16());
}
