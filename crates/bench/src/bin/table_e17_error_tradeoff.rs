//! Prints the E17 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e17", 1).expect("e17 is registered"));
}
