//! Prints the E17 table (extension: the error–information tradeoff).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e17());
}
