//! Prints the E17 table (extension: the error–information tradeoff).

use bci_core::experiments::e17_error_tradeoff as e17;

fn main() {
    println!("E17 — error vs information vs pointing for noisy AND_k");
    println!("(exact worst-case error, exact CIC, Lemma 5 pointing mass)\n");
    let k = 14;
    let rows = e17::run(k, &e17::default_epsilons());
    print!("{}", e17::render(k, &rows));
}
