//! Prints the E18 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e18", 1).expect("e18 is registered"));
}
