//! Prints the E18 table (extension: promise disjointness instances).

use bci_core::experiments::e18_promise as e18;

fn main() {
    println!("E18 — promise (unique-intersection vs pairwise-disjoint) instances");
    println!("(the streaming-hard promise from [1,2,17]; Theorem 2 protocol)\n");
    let rows = e18::run(&e18::default_grid(), 0xE18);
    print!("{}", e18::render(&rows));
}
