//! Prints the E18 table (extension: promise disjointness instances).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e18());
}
