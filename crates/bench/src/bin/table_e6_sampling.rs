//! Prints the E6 table (Lemma 7 / Figure 1: the sampling protocol).

use bci_core::experiments::e6_sampling as e6;

fn main() {
    println!("E6 — Lemma 7: literal one-round sampling protocol");
    println!("(mean bits vs D(eta||nu) + O(log D); 400 trials per point)\n");
    let rows = e6::run(&e6::default_grid(), 400, 0xE6);
    print!("{}", e6::render(&rows));
}
