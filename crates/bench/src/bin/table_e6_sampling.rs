//! Prints the E6 table (Lemma 7 / Figure 1: the sampling protocol).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e6());
}
