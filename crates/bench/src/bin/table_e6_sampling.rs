//! Prints the E6 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e6", 1).expect("e6 is registered"));
}
