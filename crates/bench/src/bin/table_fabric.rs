//! Prints the execution-fabric scaling table: sessions/sec and latency
//! percentiles for both transports across worker counts, on a fixed
//! `DISJ_{n,k}` Monte-Carlo workload. The bits/session column is identical
//! on every row — the fabric's determinism guarantee — and is printed so a
//! regression is visible at a glance.
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::fabric_table::fabric());
}
