//! Prints the execution-fabric scaling table: sessions/sec and latency
//! percentiles for both transports across worker counts, on a fixed
//! `DISJ_{n,k}` Monte-Carlo workload. The bits/session column is identical
//! on every row — the fabric's determinism guarantee — and is printed so a
//! regression is visible at a glance.

use std::time::Duration;

use bci_core::table::{f, Table};
use bci_fabric::driver::monte_carlo_fabric;
use bci_fabric::scheduler::SchedulerConfig;
use bci_fabric::session::FaultPlan;
use bci_fabric::transport::{ChannelTransport, InProcessTransport, Transport};
use bci_protocols::disj::broadcast::BroadcastDisj;
use bci_protocols::disj::disj_function;
use bci_protocols::workload;
use rand::RngCore;

const N: usize = 256;
const K: usize = 4;
const SESSIONS: u64 = 512;
const SEED: u64 = 0xFAB;

fn measure<T: Transport>(transport: &T, workers: usize) -> [String; 6] {
    let proto = BroadcastDisj::new(N, K);
    let config = SchedulerConfig {
        workers,
        batch_size: 32,
        queue_capacity: 8,
        deadline: Some(Duration::from_secs(30)),
        keep_transcripts: false,
    };
    let report = monte_carlo_fabric(
        transport,
        &proto,
        &|rng: &mut dyn RngCore| workload::random_sets(N, K, 0.7, rng),
        &|inputs: &[_]| disj_function(inputs),
        SESSIONS,
        SEED,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(report.report.trials, SESSIONS);
    let m = &report.metrics;
    [
        workers.to_string(),
        f(m.sessions_per_sec(), 1),
        format!("{:?}", m.latency_p50),
        format!("{:?}", m.latency_p99),
        f(m.bits.mean(), 2),
        m.max_queue_depth.to_string(),
    ]
}

fn main() {
    println!(
        "Fabric — DISJ_{{n={N}, k={K}}}, {SESSIONS} sessions per row, seed {SEED:#x}\n\
         (bits/session is identical on every row: scheduling never changes transcripts)\n"
    );
    for (name, rows) in [
        (
            "in-process transport",
            [1usize, 2, 4, 8].map(|w| measure(&InProcessTransport, w)),
        ),
        (
            "channel transport (one thread per player + sequencer)",
            [1usize, 2, 4, 8].map(|w| measure(&ChannelTransport, w)),
        ),
    ] {
        println!("{name}:");
        let mut t = Table::new([
            "workers",
            "sessions/sec",
            "p50",
            "p99",
            "bits/session",
            "max queue",
        ]);
        for row in rows {
            t.row(row);
        }
        println!("{}", t.render());
    }
}
