//! Prints the E13 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e13", 1).expect("e13 is registered"));
}
