//! Prints the E13 table (extension: the one-way Huffman baseline).

use bci_core::experiments::e13_huffman as e13;

fn main() {
    println!("E13 — one-way vs interactive compression of AND_k transcripts");
    println!("(Huffman recoding reaches H+1; no protocol can go below Omega(k))\n");
    let rows = e13::run(&e13::default_ks());
    print!("{}", e13::render(&rows));
}
