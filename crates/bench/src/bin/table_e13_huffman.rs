//! Prints the E13 table (extension: the one-way Huffman baseline).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e13());
}
