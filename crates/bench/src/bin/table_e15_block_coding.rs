//! Prints the E15 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e15", 1).expect("e15 is registered"));
}
