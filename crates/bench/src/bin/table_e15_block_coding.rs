//! Prints the E15 table (extension: Shannon block-coding of transcripts).

use bci_core::experiments::e15_block_coding as e15;

fn main() {
    println!("E15 — block coding transcript streams to the Shannon limit");
    println!("(arithmetic coder vs per-symbol Huffman vs H)\n");
    let params = e15::Params::default();
    let rows = e15::run(&params, &e15::default_ms());
    print!("{}", e15::render(&params, &rows));
}
