//! Prints the E15 table (extension: Shannon block-coding of transcripts).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e15());
}
