//! Prints the E5 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e5", 1).expect("e5 is registered"));
}
