//! Prints the E5 table (Section 6: the Ω(k/log k) IC-vs-CC gap).

use bci_core::experiments::e5_gap as e5;

fn main() {
    println!("E5 — Section 6: information vs communication for AND_k");
    println!(
        "(eps = {}, eps' = {}; gap should track k/log2 k)\n",
        e5::EPS,
        e5::EPS_PRIME
    );
    let rows = e5::run(&e5::default_ks());
    print!("{}", e5::render(&rows));
}
