//! Prints the E5 table (Section 6: the Ω(k/log k) IC-vs-CC gap).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e5());
}
