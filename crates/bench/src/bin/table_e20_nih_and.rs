//! Prints the E20 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e20", 1).expect("e20 is registered"));
}
