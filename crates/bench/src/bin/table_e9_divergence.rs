//! Prints the E9 table (Equations (3)–(4): the divergence bound chain).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e9());
}
