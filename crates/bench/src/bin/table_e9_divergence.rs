//! Prints the E9 table (Equations (3)–(4): the divergence bound chain).

use bci_core::experiments::e9_divergence as e9;

fn main() {
    println!("E9 — Eq. (3)-(4): exact KL vs p*log k - H(p) vs p*log k - 1");
    println!("(posterior Bern with Pr[0]=p against the 1/k prior)\n");
    let rows = e9::run(&e9::default_grid());
    print!("{}", e9::render(&rows));
}
