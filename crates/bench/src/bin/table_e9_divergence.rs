//! Prints the E9 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e9", 1).expect("e9 is registered"));
}
