//! Prints every experiment table in `EXPERIMENTS.md` order.

use bci_core::experiments::*;

fn main() {
    println!("=== E1 — Theorem 2: DISJ upper bound ===\n");
    let rows = e1_disj_upper::run(&e1_disj_upper::default_grid(), 0xE1);
    println!("{}", e1_disj_upper::render(&rows));

    println!("=== E2 — Theorem 1: CIC(AND_k) = Theta(log k) ===\n");
    let rows = e2_and_cic::run(&e2_and_cic::default_ks());
    println!("{}", e2_and_cic::render(&rows));

    println!("=== E3 — Lemma 5: good transcripts point ===\n");
    let rows = e3_pointing::run(&e3_pointing::default_grid());
    println!("{}", e3_pointing::render(&rows));

    println!("=== E4 — Lemma 6: Omega(k) ===\n");
    let p4 = e4_omega_k::Params::default();
    let rows = e4_omega_k::run(&p4, &e4_omega_k::default_fracs());
    println!("{}", e4_omega_k::render(&p4, &rows));

    println!("=== E5 — Section 6: Omega(k/log k) gap ===\n");
    let rows = e5_gap::run(&e5_gap::default_ks());
    println!("{}", e5_gap::render(&rows));

    println!("=== E6 — Lemma 7: sampling protocol ===\n");
    let rows = e6_sampling::run(&e6_sampling::default_grid(), 400, 0xE6);
    println!("{}", e6_sampling::render(&rows));

    println!("=== E7 — Theorem 3: amortized compression ===\n");
    let p7 = e7_amortized::Params::default();
    let rows = e7_amortized::run(&p7, &e7_amortized::default_ns());
    println!("{}", e7_amortized::render(&p7, &rows));

    println!("=== E8 — Lemma 1 / Theorem 4: direct sum ===\n");
    let rows = e8_direct_sum::run();
    println!("{}", e8_direct_sum::render(&rows));

    println!("=== E9 — Eq. (3)-(4): divergence bound ===\n");
    let rows = e9_divergence::run(&e9_divergence::default_grid());
    println!("{}", e9_divergence::render(&rows));

    println!("=== E10 — pointwise-OR / union (extension) ===\n");
    let rows = e10_union::run(&e10_union::default_grid(), 0xE10);
    println!("{}", e10_union::render(&rows));

    println!("=== E11 — internal vs external information (extension) ===\n");
    let rows = e11_internal::run(&e11_internal::default_rhos());
    println!("{}", e11_internal::render(&rows));

    println!("=== E12 — Hastad-Wigderson sparse disjointness (extension) ===\n");
    let rows = e12_sparse::run(&e12_sparse::default_grid(), 40, 0xE12);
    println!("{}", e12_sparse::render(&rows));

    println!("=== E13 — one-way Huffman baseline (extension) ===\n");
    let rows = e13_huffman::run(&e13_huffman::default_ks());
    println!("{}", e13_huffman::render(&rows));

    println!("=== E14 — the one-shot round tax (extension) ===\n");
    let rows = e14_one_shot::run(&e14_one_shot::default_ks(), 40, 0xE14);
    println!("{}", e14_one_shot::render(&rows));

    println!("=== E15 — Shannon block coding of transcripts (extension) ===\n");
    let p15 = e15_block_coding::Params::default();
    let rows = e15_block_coding::run(&p15, &e15_block_coding::default_ms());
    println!("{}", e15_block_coding::render(&p15, &rows));

    println!("=== E16 — per-round information profile (extension) ===\n");
    let profile = e16_profile::run(128);
    println!("{}", e16_profile::render(&profile, 10));

    println!("=== E17 — error vs information tradeoff (extension) ===\n");
    let rows = e17_error_tradeoff::run(14, &e17_error_tradeoff::default_epsilons());
    println!("{}", e17_error_tradeoff::render(14, &rows));

    println!("=== E18 — promise disjointness instances (extension) ===\n");
    let rows = e18_promise::run(&e18_promise::default_grid(), 0xE18);
    println!("{}", e18_promise::render(&rows));
}
