//! Prints every experiment table in `EXPERIMENTS.md` order.
//!
//! Accepts `--json <path>`; the JSON document aggregates every
//! per-experiment report into one combined suite report.

fn main() {
    bci_bench::report::emit_all(&bci_bench::suite::all());
}
