//! Prints every experiment table in `EXPERIMENTS.md` order.
//!
//! ```text
//! table_all [--workers N] [--experiment <id>] [--json <path>]
//! ```
//!
//! `--workers N` runs each experiment's grid points on an `N`-wide fabric
//! job pool; every point computes under the same derived seed regardless of
//! scheduling, so the output — text and JSON — is byte-identical for every
//! `N`. `--experiment e7` restricts the run to one registry id (emitting
//! the single-report document, exactly as the `table_e7_*` binary does).

use bci_bench::report::{emit_all_to, emit_to};
use bci_bench::suite;

const USAGE: &str = "usage: table_all [--workers N] [--experiment <id>] [--json <path>]";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut workers = 1usize;
    let mut experiment: Option<String> = None;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| die("--workers needs a count"));
                workers = match value.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => die(&format!("invalid worker count '{value}'")),
                };
            }
            "--experiment" => {
                experiment = Some(
                    args.next()
                        .unwrap_or_else(|| die("--experiment needs an id")),
                );
            }
            "--json" => {
                json = Some(args.next().unwrap_or_else(|| die("--json needs a path")));
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    match experiment {
        Some(id) => match suite::report_by_id(&id, workers) {
            Some(report) => emit_to(&report, json.as_deref()),
            None => die(&format!(
                "unknown experiment '{id}' (known: {})",
                suite::suite_ids().join(", ")
            )),
        },
        None => emit_all_to(&suite::all(workers), json.as_deref()),
    }
}
