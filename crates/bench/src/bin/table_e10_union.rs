//! Prints the E10 table (extension: pointwise-OR / set union).

use bci_core::experiments::e10_union as e10;

fn main() {
    println!("E10 — pointwise-OR (set union): naive vs batched member publishing");
    println!("(iid 50%-density sets; union ≈ [n])\n");
    let rows = e10::run(&e10::default_grid(), 0xE10);
    print!("{}", e10::render(&rows));
}
