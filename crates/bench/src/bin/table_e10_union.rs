//! Prints the E10 table (extension: pointwise-OR / set union).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e10());
}
