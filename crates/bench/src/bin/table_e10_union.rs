//! Prints the E10 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e10", 1).expect("e10 is registered"));
}
