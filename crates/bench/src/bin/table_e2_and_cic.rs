//! Prints the E2 table (Theorem 1: exact `CIC_μ(AND_k)` scaling).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e2());
}
