//! Prints the E2 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e2", 1).expect("e2 is registered"));
}
