//! Prints the E2 table (Theorem 1: exact `CIC_μ(AND_k)` scaling).

use bci_core::experiments::e2_and_cic as e2;

fn main() {
    println!("E2 — Theorem 1: exact CIC of the sequential AND_k witness");
    println!("(hard distribution; CIC/log2(k) flat <=> Theta(log k))\n");
    let rows = e2::run(&e2::default_ks());
    print!("{}", e2::render(&rows));
}
