//! Prints the E12 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e12", 1).expect("e12 is registered"));
}
