//! Prints the E12 table (extension: Håstad–Wigderson sparse disjointness).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e12());
}
