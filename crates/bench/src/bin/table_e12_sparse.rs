//! Prints the E12 table (extension: Håstad–Wigderson sparse disjointness).

use bci_core::experiments::e12_sparse as e12;

fn main() {
    println!("E12 — Hastad-Wigderson O(s) sparse set disjointness (2 players)");
    println!("(disjoint pairs; 40 trials per point)\n");
    let rows = e12::run(&e12::default_grid(), 40, 0xE12);
    print!("{}", e12::render(&rows));
}
