//! Prints the E8 table (Lemma 1 / Theorem 4: direct sum by enumeration).

use bci_core::experiments::e8_direct_sum as e8;

fn main() {
    println!("E8 — Lemma 1 / Theorem 4: information is additive across copies");
    println!("(full joint enumeration; no additivity assumption)\n");
    let rows = e8::run();
    print!("{}", e8::render(&rows));
}
