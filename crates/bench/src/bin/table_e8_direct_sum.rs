//! Prints the E8 table (Lemma 1 / Theorem 4: direct sum by enumeration).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e8());
}
