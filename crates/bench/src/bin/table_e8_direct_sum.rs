//! Prints the E8 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e8", 1).expect("e8 is registered"));
}
