//! Prints the E14 table (extension: the one-shot round tax).

use bci_core::experiments::e14_one_shot as e14;

fn main() {
    println!("E14 — single-shot round-by-round compression pays Theta(k), not IC");
    println!("(sequential AND_k; 40 trials per point)\n");
    let rows = e14::run(&e14::default_ks(), 40, 0xE14);
    print!("{}", e14::render(&rows));
}
