//! Prints the E14 table (extension: the one-shot round tax).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e14());
}
