//! Prints the E14 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e14", 1).expect("e14 is registered"));
}
