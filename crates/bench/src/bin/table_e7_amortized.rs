//! Prints the E7 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e7", 1).expect("e7 is registered"));
}
