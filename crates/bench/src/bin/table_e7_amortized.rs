//! Prints the E7 table (Theorem 3: amortized compression → IC).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e7());
}
