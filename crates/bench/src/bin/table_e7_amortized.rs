//! Prints the E7 table (Theorem 3: amortized compression → IC).

use bci_core::experiments::e7_amortized as e7;

fn main() {
    println!("E7 — Theorem 3: per-copy cost of the compressed n-fold protocol");
    println!("(sequential AND_k under the natural prior; converges to IC)\n");
    let params = e7::Params::default();
    let rows = e7::run(&params, &e7::default_ns());
    print!("{}", e7::render(&params, &rows));
}
