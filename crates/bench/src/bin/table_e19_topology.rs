//! Prints the E19 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e19", 1).expect("e19 is registered"));
}
