//! Prints the E1 table (Theorem 2: `DISJ_{n,k}` upper bound sweep).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e1());
}
