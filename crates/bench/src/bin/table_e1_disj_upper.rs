//! Prints the E1 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e1", 1).expect("e1 is registered"));
}
