//! Prints the E1 table (Theorem 2: `DISJ_{n,k}` upper bound sweep).

use bci_core::experiments::e1_disj_upper as e1;

fn main() {
    println!("E1 — Theorem 2: set disjointness communication, naive vs batched");
    println!("(hard disjoint instances: one zero holder per coordinate)\n");
    let rows = e1::run(&e1::default_grid(), 0xE1);
    print!("{}", e1::render(&rows));
}
