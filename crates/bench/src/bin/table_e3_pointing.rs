//! Prints the E3 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e3", 1).expect("e3 is registered"));
}
