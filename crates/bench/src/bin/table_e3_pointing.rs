//! Prints the E3 table (Lemma 5: good-transcript masses and pointing).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e3());
}
