//! Prints the E3 table (Lemma 5: good-transcript masses and pointing).

use bci_core::experiments::e3_pointing as e3;

fn main() {
    println!("E3 — Lemma 5: pi_2 masses of L, L', B0, B1 and the pointing mass");
    println!(
        "(noisy sequential AND with per-player flip delta/k; C = {}, alpha >= {}k)\n",
        e3::BIG_C,
        e3::ALPHA_FACTOR
    );
    let rows = e3::run(&e3::default_grid());
    print!("{}", e3::render(&rows));
}
