//! Prints the E4 table (thin registry lookup; see `EXPERIMENTS.md`).

fn main() {
    bci_bench::report::emit(&bci_bench::suite::report_by_id("e4", 1).expect("e4 is registered"));
}
