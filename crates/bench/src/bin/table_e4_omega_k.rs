//! Prints the E4 table (Lemma 6: the Ω(k) communication bound).

use bci_core::experiments::e4_omega_k as e4;

fn main() {
    println!("E4 — Lemma 6: error of truncated deterministic AND_k under mu'");
    println!("(error crosses eps exactly at the lemma's speaker threshold)\n");
    let params = e4::Params::default();
    let rows = e4::run(&params, &e4::default_fracs());
    print!("{}", e4::render(&params, &rows));
}
