//! Prints the E4 table (Lemma 6: the Ω(k) communication bound).
//!
//! Accepts `--json <path>` for a machine-readable report.

fn main() {
    bci_bench::report::emit(&bci_bench::suite::e4());
}
