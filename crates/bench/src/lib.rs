//! Benchmark harness for the broadcast-ic workspace.
//!
//! * `src/bin/table_e*.rs` — one binary per experiment in `EXPERIMENTS.md`;
//!   each prints the corresponding table (`cargo run -p bci-bench --release
//!   --bin table_e1_disj_upper`, etc.). `table_all` prints every table.
//!   Every binary accepts `--json <path>` and writes a schema-stable JSON
//!   report next to the text output (see [`report`]).
//! * [`suite`] — one [`report::Report`] constructor per experiment, shared
//!   by the binaries so the canonical parameters live in one place.
//! * `benches/*.rs` — criterion micro/meso-benchmarks: protocol throughput,
//!   exact information-cost computation, the sampling protocol, the
//!   factorized-vs-brute-force and exact-vs-approximate-codec ablations, and
//!   the encoding substrate.

#![warn(missing_docs)]

pub mod report;
pub mod suite;
