//! Benchmark harness for the broadcast-ic workspace.
//!
//! * `src/bin/table_e*.rs` — one binary per experiment in `EXPERIMENTS.md`;
//!   each prints the corresponding table (`cargo run -p bci-bench --release
//!   --bin table_e1_disj_upper`, etc.). `table_all` prints every table.
//! * `benches/*.rs` — criterion micro/meso-benchmarks: protocol throughput,
//!   exact information-cost computation, the sampling protocol, the
//!   factorized-vs-brute-force and exact-vs-approximate-codec ablations, and
//!   the encoding substrate.
