//! Benchmark harness for the broadcast-ic workspace.
//!
//! * `src/bin/table_e*.rs` — one binary per experiment in `EXPERIMENTS.md`;
//!   each is a thin registry lookup (`cargo run -p bci-bench --release
//!   --bin table_e1_disj_upper`, etc.). `table_all` prints every table and
//!   additionally accepts `--workers N` (run grid points on an `N`-wide
//!   fabric job pool; output is byte-identical for every `N`) and
//!   `--experiment <id>` (restrict to one experiment). Every binary accepts
//!   `--json <path>` and writes a schema-stable JSON report next to the
//!   text output (see [`report`]).
//! * [`suite`] — the generic [`suite::report_for`] bridge from the
//!   experiment registry in `bci-core` to [`report::Report`]; canonical
//!   parameters live on the registry entries themselves.
//! * [`fabric_table`] — the scheduler-scaling table behind `table_fabric`
//!   (not a paper experiment, so it is not in the registry).
//! * [`net_table`] — the TCP wire-overhead table behind `table_net`: wire
//!   bytes vs transcript bits for loopback `bci-net` deployments, with
//!   transcript digests checked against the in-process transport (also
//!   not a paper experiment).
//! * `benches/*.rs` — criterion micro/meso-benchmarks: protocol throughput,
//!   exact information-cost computation, the sampling protocol, the
//!   factorized-vs-brute-force and exact-vs-approximate-codec ablations, and
//!   the encoding substrate.

#![warn(missing_docs)]

pub mod fabric_table;
pub mod net_table;
pub mod report;
pub mod suite;
