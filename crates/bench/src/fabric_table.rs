//! The execution-fabric scaling table (the `table_fabric` binary).
//!
//! Not a paper experiment — this benchmarks the `bci-fabric` session
//! scheduler itself (sessions/sec, latency percentiles, queue depth) across
//! worker counts and transports, so it lives outside the experiment
//! registry and `table_all`.

use std::time::Duration;

use bci_core::table::{f, Table};
use bci_fabric::driver::monte_carlo_fabric;
use bci_fabric::scheduler::SchedulerConfig;
use bci_fabric::session::FaultPlan;
use bci_fabric::transport::{ChannelTransport, InProcessTransport, Transport};
use bci_protocols::disj::broadcast::BroadcastDisj;
use bci_protocols::disj::disj_function;
use bci_protocols::workload;
use bci_telemetry::Json;
use rand::RngCore;

use crate::report::Report;

const FABRIC_N: usize = 256;
const FABRIC_K: usize = 4;
const FABRIC_SESSIONS: u64 = 512;
const FABRIC_SEED: u64 = 0xFAB;

fn fabric_row<T: Transport>(transport: &T, workers: usize) -> [String; 7] {
    let proto = BroadcastDisj::new(FABRIC_N, FABRIC_K);
    let config = SchedulerConfig {
        workers,
        batch_size: 32,
        queue_capacity: 8,
        deadline: Some(Duration::from_secs(30)),
        ..SchedulerConfig::default()
    };
    let report = monte_carlo_fabric(
        transport,
        &proto,
        &|rng: &mut dyn RngCore| workload::random_sets(FABRIC_N, FABRIC_K, 0.7, rng),
        &|inputs: &[_]| disj_function(inputs),
        FABRIC_SESSIONS,
        FABRIC_SEED,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(report.report.trials, FABRIC_SESSIONS);
    let m = &report.metrics;
    [
        workers.to_string(),
        f(m.sessions_per_sec(), 1),
        format!("{:?}", m.latency_p50()),
        format!("{:?}", m.latency_p95()),
        format!("{:?}", m.latency_p99()),
        f(m.bits.mean(), 2),
        m.max_queue_depth.to_string(),
    ]
}

/// The execution-fabric scaling table: sessions/sec and latency percentiles
/// for both transports across worker counts, on a fixed `DISJ_{n,k}`
/// Monte-Carlo workload.
pub fn fabric() -> Report {
    let mut report = Report::new(
        "fabric",
        format!(
            "Fabric — DISJ_{{n={FABRIC_N}, k={FABRIC_K}}}, {FABRIC_SESSIONS} sessions per row, \
         seed {FABRIC_SEED:#x}"
        ),
    )
    .note("(bits/session is identical on every row: scheduling never changes transcripts)")
    .meta("n", Json::UInt(FABRIC_N as u64))
    .meta("k", Json::UInt(FABRIC_K as u64))
    .meta("sessions", Json::UInt(FABRIC_SESSIONS))
    .meta("seed", Json::UInt(FABRIC_SEED));
    for (name, rows) in [
        (
            "in-process transport:",
            [1usize, 2, 4, 8].map(|w| fabric_row(&InProcessTransport, w)),
        ),
        (
            "channel transport (one thread per player + sequencer):",
            [1usize, 2, 4, 8].map(|w| fabric_row(&ChannelTransport, w)),
        ),
    ] {
        let mut t = Table::new([
            "workers",
            "sessions/sec",
            "p50",
            "p95",
            "p99",
            "bits/session",
            "max queue",
        ]);
        for row in rows {
            t.row(row);
        }
        report.push_table(name, &t);
    }
    report
}
