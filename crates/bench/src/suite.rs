//! Registry-driven [`Report`] generation.
//!
//! Every experiment lives in `bci-core`'s
//! [`registry`](bci_core::experiments::registry): identity, notes,
//! parameter metadata, sweep grid, and per-point computation. This module
//! turns any registry entry into a [`Report`] with [`report_for`], running
//! the sweep on a [`JobPool`] — one job per grid point, each under its own
//! derived seed — so `table_all --workers N` produces byte-identical
//! reports for every `N`. The `table_*` binaries are thin
//! [`report_by_id`] lookups; there are no per-experiment constructors here.

use bci_core::experiments::registry::{find, registry, run_grid_pooled, Experiment, LabeledTable};
use bci_fabric::pool::{JobPool, PoolConfig};
use bci_telemetry::Recorder;

use crate::report::Report;

/// Builds the report for one experiment, running its default grid on a
/// `workers`-wide [`JobPool`].
///
/// Point `i` computes under `derive_trial_seed(exp.seed(), i)`; Monte-Carlo
/// experiments exposing the registry's `TrialSplit` hook additionally split
/// each point into fixed-size trial chunks so one heavy point spreads
/// across workers. Either way results are assembled in point (and trial)
/// order, so the report — text and JSON — is byte-identical for any worker
/// count, including the serial `workers = 1`.
pub fn report_for(exp: &dyn Experiment, workers: usize) -> Report {
    let pool = JobPool::new(PoolConfig {
        workers,
        // Grid points (and trial chunks) are few and individually heavy;
        // schedule one per queue entry so a slow point never strands cheap
        // ones behind it.
        batch_size: 1,
        queue_capacity: 8,
        metric_prefix: "experiments",
        job_spans: true,
        recorder: Recorder::disabled(),
    });
    let results = run_grid_pooled(exp, &pool, exp.seed());
    let tables = exp.tables(&results);
    report_from_tables(exp, &tables)
}

/// Assembles a [`Report`] from an experiment's identity plus already-built
/// tables (shared by [`report_for`] and the `bci experiments` CLI path).
pub fn report_from_tables(exp: &dyn Experiment, tables: &[LabeledTable]) -> Report {
    let mut report = Report::new(exp.id(), exp.title());
    for note in exp.notes() {
        report = report.note(note);
    }
    for (key, value) in exp.meta() {
        report = report.meta(key, value);
    }
    for (label, table) in tables {
        report.push_table(label.clone(), table);
    }
    report
}

/// Builds the report for a registry id (`"e7"`), or `None` if no experiment
/// has that id.
pub fn report_by_id(id: &str, workers: usize) -> Option<Report> {
    find(id).map(|exp| report_for(exp, workers))
}

/// The experiment ids [`all`] emits, in order (= registry order).
pub fn suite_ids() -> Vec<&'static str> {
    registry().iter().map(|e| e.id()).collect()
}

/// Every experiment report in `EXPERIMENTS.md` order (without the fabric
/// scaling table, which is not an experiment in the paper's sense — see
/// [`crate::fabric_table`]).
pub fn all(workers: usize) -> Vec<Report> {
    registry()
        .iter()
        .map(|exp| report_for(*exp, workers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA;

    #[test]
    fn cheap_reports_have_stable_identity_and_tables() {
        for (id, tables) in [("e2", 1), ("e8", 1), ("e16", 2), ("e17", 1)] {
            let report = report_by_id(id, 1).expect("registered");
            assert_eq!(report.experiment, id);
            assert!(!report.title.is_empty());
            assert_eq!(report.tables.len(), tables, "{}", report.experiment);
            for t in &report.tables {
                assert!(!t.columns.is_empty());
                assert!(!t.rows.is_empty());
                for row in &t.rows {
                    assert_eq!(row.len(), t.columns.len());
                }
            }
            let json = report.to_json().to_string();
            assert!(json.contains(SCHEMA), "{}", report.experiment);
        }
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        // e2 and e8 are cheap and exercise both the plain-table and the
        // per-point-result shapes; the full-suite equivalence is checked in
        // CI by diffing `table_all --workers 1` against `--workers 4`.
        for id in ["e2", "e8"] {
            let serial = report_by_id(id, 1).expect("registered");
            let parallel = report_by_id(id, 4).expect("registered");
            assert_eq!(serial.render_text(), parallel.render_text(), "{id}");
            assert_eq!(
                serial.to_json().to_string(),
                parallel.to_json().to_string(),
                "{id}"
            );
        }
    }

    #[test]
    fn unknown_ids_are_rejected() {
        assert!(report_by_id("e21", 1).is_none());
        assert!(report_by_id("fabric", 1).is_none());
    }
}
