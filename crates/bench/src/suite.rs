//! One [`Report`] constructor per experiment.
//!
//! Each `table_*` binary is a thin wrapper around the function here with the
//! same name, so the canonical parameters (seeds, trial counts, grids) live
//! in exactly one place and `table_all` is guaranteed to agree with the
//! individual binaries.

use std::time::Duration;

use bci_core::experiments::*;
use bci_core::table::{f, Table};
use bci_fabric::driver::monte_carlo_fabric;
use bci_fabric::scheduler::SchedulerConfig;
use bci_fabric::session::FaultPlan;
use bci_fabric::transport::{ChannelTransport, InProcessTransport, Transport};
use bci_protocols::disj::broadcast::BroadcastDisj;
use bci_protocols::disj::disj_function;
use bci_protocols::workload;
use bci_telemetry::Json;
use rand::RngCore;

use crate::report::Report;

/// E1 — Theorem 2: `DISJ_{n,k}` upper bound sweep.
pub fn e1() -> Report {
    let rows = e1_disj_upper::run(&e1_disj_upper::default_grid(), 0xE1);
    Report::new(
        "e1",
        "E1 — Theorem 2: set disjointness communication, naive vs batched",
    )
    .note("(hard disjoint instances: one zero holder per coordinate)")
    .meta("seed", Json::UInt(0xE1))
    .with_table("", &e1_disj_upper::table(&rows))
}

/// E2 — Theorem 1: exact `CIC_μ(AND_k)` scaling.
pub fn e2() -> Report {
    let rows = e2_and_cic::run(&e2_and_cic::default_ks());
    Report::new(
        "e2",
        "E2 — Theorem 1: exact CIC of the sequential AND_k witness",
    )
    .note("(hard distribution; CIC/log2(k) flat <=> Theta(log k))")
    .with_table("", &e2_and_cic::table(&rows))
}

/// E3 — Lemma 5: good-transcript masses and pointing.
pub fn e3() -> Report {
    let rows = e3_pointing::run(&e3_pointing::default_grid());
    Report::new(
        "e3",
        "E3 — Lemma 5: pi_2 masses of L, L', B0, B1 and the pointing mass",
    )
    .note(format!(
        "(noisy sequential AND with per-player flip delta/k; C = {}, alpha >= {}k)",
        e3_pointing::BIG_C,
        e3_pointing::ALPHA_FACTOR
    ))
    .with_table("", &e3_pointing::table(&rows))
}

/// E4 — Lemma 6: the Ω(k) communication bound.
pub fn e4() -> Report {
    let params = e4_omega_k::Params::default();
    let rows = e4_omega_k::run(&params, &e4_omega_k::default_fracs());
    Report::new(
        "e4",
        "E4 — Lemma 6: error of truncated deterministic AND_k under mu'",
    )
    .note("(error crosses eps exactly at the lemma's speaker threshold)")
    .meta("k", Json::UInt(params.k as u64))
    .with_table(e4_omega_k::preamble(&params), &e4_omega_k::table(&rows))
}

/// E5 — Section 6: the Ω(k/log k) IC-vs-CC gap.
pub fn e5() -> Report {
    let rows = e5_gap::run(&e5_gap::default_ks());
    Report::new(
        "e5",
        "E5 — Section 6: information vs communication for AND_k",
    )
    .note(format!(
        "(eps = {}, eps' = {}; gap should track k/log2 k)",
        e5_gap::EPS,
        e5_gap::EPS_PRIME
    ))
    .with_table("", &e5_gap::table(&rows))
}

/// E6 — Lemma 7 / Figure 1: the sampling protocol.
pub fn e6() -> Report {
    let rows = e6_sampling::run(&e6_sampling::default_grid(), 400, 0xE6);
    Report::new("e6", "E6 — Lemma 7: literal one-round sampling protocol")
        .note("(mean bits vs D(eta||nu) + O(log D); 400 trials per point)")
        .meta("trials", Json::UInt(400))
        .meta("seed", Json::UInt(0xE6))
        .with_table("", &e6_sampling::table(&rows))
}

/// E7 — Theorem 3: amortized compression → IC.
pub fn e7() -> Report {
    let params = e7_amortized::Params::default();
    let rows = e7_amortized::run(&params, &e7_amortized::default_ns());
    Report::new(
        "e7",
        "E7 — Theorem 3: per-copy cost of the compressed n-fold protocol",
    )
    .note("(sequential AND_k under the natural prior; converges to IC)")
    .meta("k", Json::UInt(params.k as u64))
    .meta("trials", Json::UInt(params.trials as u64))
    .meta("seed", Json::UInt(params.seed))
    .with_table(e7_amortized::preamble(&params), &e7_amortized::table(&rows))
}

/// E8 — Lemma 1 / Theorem 4: direct sum by enumeration.
pub fn e8() -> Report {
    let rows = e8_direct_sum::run();
    Report::new(
        "e8",
        "E8 — Lemma 1 / Theorem 4: information is additive across copies",
    )
    .note("(full joint enumeration; no additivity assumption)")
    .with_table("", &e8_direct_sum::table(&rows))
}

/// E9 — Equations (3)–(4): the divergence bound chain.
pub fn e9() -> Report {
    let rows = e9_divergence::run(&e9_divergence::default_grid());
    Report::new(
        "e9",
        "E9 — Eq. (3)-(4): exact KL vs p*log k - H(p) vs p*log k - 1",
    )
    .note("(posterior Bern with Pr[0]=p against the 1/k prior)")
    .with_table("", &e9_divergence::table(&rows))
}

/// E10 — extension: pointwise-OR / set union.
pub fn e10() -> Report {
    let rows = e10_union::run(&e10_union::default_grid(), 0xE10);
    Report::new(
        "e10",
        "E10 — pointwise-OR (set union): naive vs batched member publishing",
    )
    .note("(iid 50%-density sets; union ≈ [n])")
    .meta("seed", Json::UInt(0xE10))
    .with_table("", &e10_union::table(&rows))
}

/// E11 — extension: internal vs external information.
pub fn e11() -> Report {
    let rows = e11_internal::run(&e11_internal::default_rhos());
    Report::new(
        "e11",
        "E11 — internal vs external information cost, two players",
    )
    .note("(joint Pr[X=Y] = 1/2 + 2*rho; rho = 0 is the product case)")
    .with_table("", &e11_internal::table(&rows))
}

/// E12 — extension: Håstad–Wigderson sparse disjointness.
pub fn e12() -> Report {
    let rows = e12_sparse::run(&e12_sparse::default_grid(), 40, 0xE12);
    Report::new(
        "e12",
        "E12 — Hastad-Wigderson O(s) sparse set disjointness (2 players)",
    )
    .note("(disjoint pairs; 40 trials per point)")
    .meta("trials", Json::UInt(40))
    .meta("seed", Json::UInt(0xE12))
    .with_table("", &e12_sparse::table(&rows))
}

/// E13 — extension: the one-way Huffman baseline.
pub fn e13() -> Report {
    let rows = e13_huffman::run(&e13_huffman::default_ks());
    Report::new(
        "e13",
        "E13 — one-way vs interactive compression of AND_k transcripts",
    )
    .note("(Huffman recoding reaches H+1; no protocol can go below Omega(k))")
    .with_table("", &e13_huffman::table(&rows))
}

/// E14 — extension: the one-shot round tax.
pub fn e14() -> Report {
    let rows = e14_one_shot::run(&e14_one_shot::default_ks(), 40, 0xE14);
    Report::new(
        "e14",
        "E14 — single-shot round-by-round compression pays Theta(k), not IC",
    )
    .note("(sequential AND_k; 40 trials per point)")
    .meta("trials", Json::UInt(40))
    .meta("seed", Json::UInt(0xE14))
    .with_table("", &e14_one_shot::table(&rows))
}

/// E15 — extension: Shannon block-coding of transcripts.
pub fn e15() -> Report {
    let params = e15_block_coding::Params::default();
    let rows = e15_block_coding::run(&params, &e15_block_coding::default_ms());
    Report::new(
        "e15",
        "E15 — block coding transcript streams to the Shannon limit",
    )
    .note("(arithmetic coder vs per-symbol Huffman vs H)")
    .meta("k", Json::UInt(params.k as u64))
    .meta("trials", Json::UInt(params.trials as u64))
    .meta("seed", Json::UInt(params.seed))
    .with_table(
        e15_block_coding::preamble(&params),
        &e15_block_coding::table(&rows),
    )
}

/// E16 — extension: the per-round information profile (k = 16 and 128).
pub fn e16() -> Report {
    let mut report = Report::new(
        "e16",
        "E16 — chain-rule information profile of sequential AND_k",
    )
    .note("(exact, under the hard distribution; Section 6's decomposition)")
    .meta("max_rounds", Json::UInt(10));
    for k in [16usize, 128] {
        let profile = e16_profile::run(k);
        report.push_table(
            e16_profile::preamble(&profile, 10),
            &e16_profile::table(&profile, 10),
        );
    }
    report
}

/// E17 — extension: the error–information tradeoff.
pub fn e17() -> Report {
    let k = 14;
    let rows = e17_error_tradeoff::run(k, &e17_error_tradeoff::default_epsilons());
    Report::new(
        "e17",
        "E17 — error vs information vs pointing for noisy AND_k",
    )
    .note("(exact worst-case error, exact CIC, Lemma 5 pointing mass)")
    .meta("k", Json::UInt(k as u64))
    .with_table(format!("k = {k}"), &e17_error_tradeoff::table(&rows))
}

/// E18 — extension: promise disjointness instances.
pub fn e18() -> Report {
    let rows = e18_promise::run(&e18_promise::default_grid(), 0xE18);
    Report::new(
        "e18",
        "E18 — promise (unique-intersection vs pairwise-disjoint) instances",
    )
    .note("(the streaming-hard promise from [1,2,17]; Theorem 2 protocol)")
    .note(e18_promise::note())
    .meta("seed", Json::UInt(0xE18))
    .with_table("", &e18_promise::table(&rows))
}

const FABRIC_N: usize = 256;
const FABRIC_K: usize = 4;
const FABRIC_SESSIONS: u64 = 512;
const FABRIC_SEED: u64 = 0xFAB;

fn fabric_row<T: Transport>(transport: &T, workers: usize) -> [String; 7] {
    let proto = BroadcastDisj::new(FABRIC_N, FABRIC_K);
    let config = SchedulerConfig {
        workers,
        batch_size: 32,
        queue_capacity: 8,
        deadline: Some(Duration::from_secs(30)),
        ..SchedulerConfig::default()
    };
    let report = monte_carlo_fabric(
        transport,
        &proto,
        &|rng: &mut dyn RngCore| workload::random_sets(FABRIC_N, FABRIC_K, 0.7, rng),
        &|inputs: &[_]| disj_function(inputs),
        FABRIC_SESSIONS,
        FABRIC_SEED,
        &FaultPlan::new(),
        &config,
    );
    assert_eq!(report.report.trials, FABRIC_SESSIONS);
    let m = &report.metrics;
    [
        workers.to_string(),
        f(m.sessions_per_sec(), 1),
        format!("{:?}", m.latency_p50()),
        format!("{:?}", m.latency_p95()),
        format!("{:?}", m.latency_p99()),
        f(m.bits.mean(), 2),
        m.max_queue_depth.to_string(),
    ]
}

/// The execution-fabric scaling table: sessions/sec and latency percentiles
/// for both transports across worker counts, on a fixed `DISJ_{n,k}`
/// Monte-Carlo workload.
pub fn fabric() -> Report {
    let mut report = Report::new(
        "fabric",
        format!(
            "Fabric — DISJ_{{n={FABRIC_N}, k={FABRIC_K}}}, {FABRIC_SESSIONS} sessions per row, \
         seed {FABRIC_SEED:#x}"
        ),
    )
    .note("(bits/session is identical on every row: scheduling never changes transcripts)")
    .meta("n", Json::UInt(FABRIC_N as u64))
    .meta("k", Json::UInt(FABRIC_K as u64))
    .meta("sessions", Json::UInt(FABRIC_SESSIONS))
    .meta("seed", Json::UInt(FABRIC_SEED));
    for (name, rows) in [
        (
            "in-process transport:",
            [1usize, 2, 4, 8].map(|w| fabric_row(&InProcessTransport, w)),
        ),
        (
            "channel transport (one thread per player + sequencer):",
            [1usize, 2, 4, 8].map(|w| fabric_row(&ChannelTransport, w)),
        ),
    ] {
        let mut t = Table::new([
            "workers",
            "sessions/sec",
            "p50",
            "p95",
            "p99",
            "bits/session",
            "max queue",
        ]);
        for row in rows {
            t.row(row);
        }
        report.push_table(name, &t);
    }
    report
}

/// Every experiment report in `EXPERIMENTS.md` order (without the fabric
/// scaling table, which is not an experiment in the paper's sense).
pub fn all() -> Vec<Report> {
    vec![
        e1(),
        e2(),
        e3(),
        e4(),
        e5(),
        e6(),
        e7(),
        e8(),
        e9(),
        e10(),
        e11(),
        e12(),
        e13(),
        e14(),
        e15(),
        e16(),
        e17(),
        e18(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA;

    #[test]
    fn cheap_reports_have_stable_identity_and_tables() {
        for (report, tables) in [(e2(), 1), (e8(), 1), (e16(), 2), (e17(), 1)] {
            assert!(!report.title.is_empty());
            assert_eq!(report.tables.len(), tables, "{}", report.experiment);
            for t in &report.tables {
                assert!(!t.columns.is_empty());
                assert!(!t.rows.is_empty());
                for row in &t.rows {
                    assert_eq!(row.len(), t.columns.len());
                }
            }
            let json = report.to_json().to_string();
            assert!(json.contains(SCHEMA), "{}", report.experiment);
        }
    }
}
