//! The TCP wire-overhead table (the `table_net` binary).
//!
//! Not a paper experiment — this benchmarks the `bci-net` loopback
//! deployment: for each `(n, k)` point it runs DISJ sessions over real
//! TCP sockets and over the in-process transport from identical seeds,
//! digest-compares the transcripts (they must be bit-identical), and
//! reports how many wire bits the framing, RNG shipping, and broadcast
//! fan-out cost per transcript bit.

use bci_core::table::{f, Table};
use bci_net::overhead::{overhead_sweep, OverheadPoint};
use bci_net::NetConfig;
use bci_telemetry::Json;

use crate::report::Report;

/// The `(n, k)` sweep points.
pub const NET_POINTS: [(usize, usize); 4] = [(64, 4), (256, 4), (256, 8), (1024, 4)];

/// Sessions per point.
pub const NET_SESSIONS: usize = 3;

/// Master seed of the sweep.
pub const NET_SEED: u64 = 0x7C9;

fn row(p: &OverheadPoint) -> [String; 8] {
    [
        p.n.to_string(),
        p.k.to_string(),
        p.sessions.to_string(),
        p.wire.bytes_total().to_string(),
        (p.wire.frames_tx + p.wire.frames_rx).to_string(),
        p.wire.transcript_bits.to_string(),
        f(p.wire.overhead_ratio(), 2),
        if p.digests_match() {
            "match".to_owned()
        } else {
            "MISMATCH".to_owned()
        },
    ]
}

/// The TCP wire-overhead table: wire bytes vs transcript bits across
/// `(n, k)` points, with a transcript-digest check against the in-process
/// transport on every row.
///
/// # Panics
///
/// Panics if any point's TCP transcript digest diverges from the
/// in-process transport — that would mean the determinism contract broke.
pub fn net() -> Report {
    let results = overhead_sweep(&NET_POINTS, NET_SESSIONS, NET_SEED, &NetConfig::default());
    let mut t = Table::new([
        "n",
        "k",
        "sessions",
        "wire bytes",
        "frames",
        "transcript bits",
        "overhead x",
        "digest",
    ]);
    for p in &results {
        assert!(
            p.digests_match(),
            "TCP transcript diverged from in-process at n={}, k={}",
            p.n,
            p.k
        );
        t.row(row(p));
    }
    Report::new(
        "net",
        format!(
            "Net — TCP wire overhead, DISJ, {NET_SESSIONS} sessions per point, seed {NET_SEED:#x}"
        ),
    )
    .note(
        "(every session runs over loopback TCP and in-process from the same seed; \
         the digest column compares the transcripts byte for byte)",
    )
    .note("(overhead x = wire bits per transcript bit: framing + RNG shipping + k-fold fan-out)")
    .meta("sessions", Json::UInt(NET_SESSIONS as u64))
    .meta("seed", Json::UInt(NET_SEED))
    .with_table("", &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_table_digests_match_and_shape_is_stable() {
        let report = net();
        assert_eq!(report.experiment, "net");
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), NET_POINTS.len());
        assert_eq!(table.columns.len(), 8);
        for row in &table.rows {
            assert_eq!(row.last().unwrap().to_string(), "\"match\"");
        }
    }
}
