//! Schema-stable, machine-readable bench reports.
//!
//! Every `table_*` binary builds a [`Report`] — title, note lines, parameter
//! metadata, and one or more labeled tables — then hands it to [`emit`],
//! which prints the familiar text rendering to stdout and, when the binary
//! was invoked with `--json <path>`, also writes the same content as a JSON
//! document with schema id [`SCHEMA`]. `table_all` aggregates every report
//! into one combined document with schema id [`SUITE_SCHEMA`]; it parses a
//! richer command line (`--workers`, `--experiment`) itself and hands the
//! already-parsed path to [`emit_all_to`].
//!
//! Reports deliberately contain no timing or host-specific fields, so the
//! same sweep always serializes to the same bytes — CI diffs the
//! `--workers 4` suite output against `--workers 1` with a plain byte
//! comparison.
//!
//! The JSON shape (stable; validated in CI):
//!
//! ```json
//! {
//!   "schema": "bci.bench.v1",
//!   "experiment": "e1",
//!   "title": "E1 — Theorem 2: ...",
//!   "notes": ["(hard disjoint instances: ...)"],
//!   "meta": {"seed": 225},
//!   "tables": [
//!     {"label": "", "columns": ["n", "k", "..."], "rows": [[4096, 16, "..."]]}
//!   ]
//! }
//! ```
//!
//! Numeric-looking cells are emitted as JSON numbers verbatim (no re-parsing
//! or rounding); everything else stays a string.

use bci_core::table::Table;
use bci_telemetry::{obj, Json};

/// Schema identifier of a single-experiment report document.
pub const SCHEMA: &str = "bci.bench.v1";

/// Schema identifier of the combined (`table_all`) report document.
pub const SUITE_SCHEMA: &str = "bci.bench.suite.v1";

/// One experiment's full output: identity, context lines, parameters, and
/// its rendered tables.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short stable id: `"e1"` … `"e18"`, `"fabric"`.
    pub experiment: String,
    /// The headline the binary prints first.
    pub title: String,
    /// Free-form context lines printed under the title.
    pub notes: Vec<String>,
    /// Parameter metadata (seeds, trial counts, …), insertion-ordered.
    pub meta: Vec<(String, Json)>,
    /// The labeled tables.
    pub tables: Vec<ReportTable>,
}

/// A single table inside a [`Report`].
#[derive(Debug, Clone)]
pub struct ReportTable {
    /// Preamble line printed above the table; empty when there is none.
    pub label: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; numeric-looking cells become JSON numbers.
    pub rows: Vec<Vec<Json>>,
}

impl Report {
    /// Starts an empty report for `experiment` with the given `title`.
    pub fn new(experiment: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            experiment: experiment.into(),
            title: title.into(),
            notes: Vec::new(),
            meta: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Appends a context line (builder-style).
    pub fn note(mut self, line: impl Into<String>) -> Report {
        self.notes.push(line.into());
        self
    }

    /// Appends a metadata entry (builder-style).
    pub fn meta(mut self, key: impl Into<String>, value: Json) -> Report {
        self.meta.push((key.into(), value));
        self
    }

    /// Appends a rendered [`Table`] under `label` (empty label = no
    /// preamble line).
    pub fn push_table(&mut self, label: impl Into<String>, table: &Table) {
        self.tables.push(ReportTable {
            label: label.into(),
            columns: table.headers().to_vec(),
            rows: table
                .rows()
                .iter()
                .map(|row| row.iter().map(|cell| Json::cell(cell)).collect())
                .collect(),
        });
    }

    /// Same as [`push_table`](Report::push_table), builder-style.
    pub fn with_table(mut self, label: impl Into<String>, table: &Table) -> Report {
        self.push_table(label, table);
        self
    }

    /// The human-readable rendering: title, notes, then each table behind
    /// its label.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        for table in &self.tables {
            out.push('\n');
            if !table.label.is_empty() {
                out.push_str(&table.label);
                out.push('\n');
            }
            let mut t = Table::new(table.columns.iter().map(String::as_str));
            for row in &table.rows {
                t.row(row.iter().map(render_cell));
            }
            out.push_str(&t.render());
        }
        out
    }

    /// The machine-readable rendering (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Json {
        obj([
            ("schema", Json::str(SCHEMA)),
            ("experiment", Json::str(&self.experiment)),
            ("title", Json::str(&self.title)),
            (
                "notes",
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
            ("meta", Json::Obj(self.meta.clone())),
            (
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|t| {
                            obj([
                                ("label", Json::str(&t.label)),
                                (
                                    "columns",
                                    Json::Arr(t.columns.iter().map(Json::str).collect()),
                                ),
                                (
                                    "rows",
                                    Json::Arr(
                                        t.rows.iter().map(|r| Json::Arr(r.clone())).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn render_cell(cell: &Json) -> String {
    match cell {
        Json::Str(s) => s.clone(),
        Json::Raw(s) => s.clone(),
        other => other.to_string(),
    }
}

/// The combined document for a suite of reports (schema [`SUITE_SCHEMA`]).
pub fn suite_json(reports: &[Report]) -> Json {
    obj([
        ("schema", Json::str(SUITE_SCHEMA)),
        ("count", Json::UInt(reports.len() as u64)),
        (
            "reports",
            Json::Arr(reports.iter().map(Report::to_json).collect()),
        ),
    ])
}

/// Parses `--json <path>` from the process arguments. Any other argument is
/// rejected so a typo fails loudly instead of silently printing text only.
pub fn json_arg() -> Result<Option<String>, String> {
    parse_json_arg(std::env::args().skip(1))
}

fn parse_json_arg(args: impl IntoIterator<Item = String>) -> Result<Option<String>, String> {
    let mut path = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                path = Some(it.next().ok_or("--json needs a path")?);
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}' (expected --json <path>)"
                ))
            }
        }
    }
    Ok(path)
}

/// Prints `report` as text and, with `--json <path>`, writes the JSON
/// document to `path`. Exits the process with an error message on a bad
/// command line or an unwritable path.
pub fn emit(report: &Report) {
    emit_to(report, json_arg_or_exit().as_deref());
}

/// Like [`emit`], but with an already-parsed JSON path instead of reading
/// the process arguments (for callers with their own command line).
pub fn emit_to(report: &Report, json_path: Option<&str>) {
    write_doc(&report.render_text(), &report.to_json(), json_path);
}

/// Prints every report as text (separated by `=== <id> ===` headers) and,
/// with `--json <path>`, writes the combined suite document to `path`.
pub fn emit_all(reports: &[Report]) {
    emit_all_to(reports, json_arg_or_exit().as_deref());
}

/// Like [`emit_all`], but with an already-parsed JSON path instead of
/// reading the process arguments (for callers with their own command line).
pub fn emit_all_to(reports: &[Report], json_path: Option<&str>) {
    let mut text = String::new();
    for report in reports {
        text.push_str(&format!("=== {} ===\n\n", report.experiment.to_uppercase()));
        text.push_str(&report.render_text());
        text.push('\n');
    }
    write_doc(&text, &suite_json(reports), json_path);
}

fn json_arg_or_exit() -> Option<String> {
    match json_arg() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn write_doc(text: &str, json: &Json, path: Option<&str>) {
    print!("{text}");
    if let Some(path) = path {
        let mut doc = json.to_string();
        doc.push('\n');
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write JSON report to '{path}': {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut t = Table::new(["n", "bits"]);
        t.row(["4096".to_owned(), "12.5".to_owned()]);
        t.row(["8192".to_owned(), "n/a".to_owned()]);
        Report::new("e1", "E1 — sample")
            .note("(a context line)")
            .meta("seed", Json::UInt(225))
            .with_table("", &t)
    }

    #[test]
    fn json_document_is_schema_stable() {
        let json = sample().to_json().to_string();
        assert_eq!(
            json,
            "{\"schema\":\"bci.bench.v1\",\"experiment\":\"e1\",\"title\":\"E1 — sample\",\
             \"notes\":[\"(a context line)\"],\"meta\":{\"seed\":225},\
             \"tables\":[{\"label\":\"\",\"columns\":[\"n\",\"bits\"],\
             \"rows\":[[4096,12.5],[8192,\"n/a\"]]}]}"
        );
    }

    #[test]
    fn text_rendering_matches_the_classic_layout() {
        let text = sample().render_text();
        assert!(text.starts_with("E1 — sample\n(a context line)\n\n"));
        assert!(text.contains("4096"));
        assert!(text.contains("n/a"));
    }

    #[test]
    fn labels_appear_above_their_table() {
        let mut t = Table::new(["x"]);
        t.row(["1".to_owned()]);
        let r = Report::new("e4", "t").with_table("k = 16", &t);
        assert!(r.render_text().contains("\nk = 16\n"));
    }

    #[test]
    fn suite_document_wraps_reports() {
        let json = suite_json(&[sample(), sample()]).to_string();
        assert!(json.starts_with("{\"schema\":\"bci.bench.suite.v1\",\"count\":2,"));
        assert_eq!(json.matches("\"bci.bench.v1\"").count(), 2);
    }

    #[test]
    fn json_arg_parsing() {
        let ok = parse_json_arg(["--json".to_owned(), "out.json".to_owned()]).unwrap();
        assert_eq!(ok.as_deref(), Some("out.json"));
        assert_eq!(parse_json_arg([]).unwrap(), None);
        assert!(parse_json_arg(["--json".to_owned()]).is_err());
        assert!(parse_json_arg(["--bogus".to_owned()]).is_err());
    }
}
