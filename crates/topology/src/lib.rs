//! Communication-model abstraction for the broadcast-IC workspace.
//!
//! The paper studies the *shared blackboard* (broadcast) model, where
//! every bit a player writes is seen by all `k` players. Its headline
//! separations are stated against the *message-passing* world:
//! set-disjointness costs `Θ(nk)` bits in the coordinator/message-passing
//! model (Braverman–Ellen–Oshman–Pitassi–Vaikuntanathan) but only
//! `Θ(n log k + k)` on the blackboard, and Gronemeier's number-in-hand
//! bounds calibrate multiparty AND. This crate makes that comparison
//! executable:
//!
//! * [`Link`] / [`Topology`] — who may carry a message and who sees it
//!   ([`model`]);
//! * [`RoutedProtocol`] + [`RoutedEngine`] — a sans-io turn engine with
//!   the blackboard engine's exact grant/parking/replay discipline, plus
//!   per-link transcripts, per-player visibility, and per-link cost
//!   accounting ([`routed`]);
//! * [`Embedded`] / [`FromBlackboard`] — adapters so routed protocols run
//!   on all existing blackboard drivers and vice versa ([`embed`]).
//!
//! # Example
//!
//! ```
//! use bci_encoding::bitio::BitVec;
//! use bci_topology::{run_routed, Link, PlayerView, RoutedBoard, RoutedProtocol, Topology};
//! use rand::{RngCore, SeedableRng};
//! use rand_chacha::ChaCha8Rng;
//!
//! /// Player 1 sends one bit to player 0.
//! struct OneHop;
//!
//! impl RoutedProtocol for OneHop {
//!     type Input = bool;
//!     type Output = bool;
//!
//!     fn topology(&self) -> Topology {
//!         Topology::PointToPoint
//!     }
//!     fn num_players(&self) -> usize {
//!         2
//!     }
//!     fn next_turn(&self, board: &RoutedBoard) -> Option<(usize, Link)> {
//!         board
//!             .messages()
//!             .is_empty()
//!             .then_some((1, Link::Directed { from: 1, to: 0 }))
//!     }
//!     fn message(
//!         &self,
//!         _speaker: usize,
//!         input: &bool,
//!         _view: &PlayerView<'_>,
//!         _rng: &mut dyn RngCore,
//!     ) -> BitVec {
//!         BitVec::from_bools(&[*input])
//!     }
//!     fn output(&self, board: &RoutedBoard) -> bool {
//!         board.messages()[0].bits.get(0).unwrap()
//!     }
//! }
//!
//! let exec = run_routed(&OneHop, &[false, true], &ChaCha8Rng::seed_from_u64(0));
//! assert!(exec.output);
//! assert_eq!(exec.stats.directed_bits, 1);
//! ```

#![warn(missing_docs)]

pub mod embed;
pub mod model;
pub mod routed;

pub use embed::{Embedded, FromBlackboard};
pub use model::{Link, Topology};
pub use routed::{
    run_routed, PlayerView, RoutedBoard, RoutedEngine, RoutedExecution, RoutedGrant,
    RoutedProtocol, RoutedStep, RoutedViolation, SentMessage, TopologyCommStats,
};
