//! The communication models: who may carry a message, and who sees it.
//!
//! The paper's shared-blackboard model is one point in a space of
//! communication topologies. PAPERS.md names the natural siblings —
//! Braverman–Ellen–Oshman–Pitassi–Vaikuntanathan's *message passing*
//! model (a coordinator star) and Gronemeier's number-in-hand bounds —
//! where DISJ costs `Θ(nk)` instead of the broadcast `Θ(n log k + k)`.
//! This module captures the difference in two tiny types:
//!
//! * [`Link`] — the channel one message travels on: the shared broadcast
//!   board, or a directed player-to-player edge.
//! * [`Topology`] — which links exist: [`Topology::Blackboard`] (broadcast
//!   only), [`Topology::CoordinatorStar`] (every edge touches the hub), or
//!   [`Topology::PointToPoint`] (any directed edge).
//!
//! Visibility is a property of the *link*, not the topology: a broadcast
//! message is visible to every player, a directed message only to its two
//! endpoints. The topology just restricts which links a protocol may use,
//! enforced by the routed engine (`crate::routed`).

use bci_blackboard::PlayerId;
use std::fmt;

/// The channel one message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Link {
    /// The shared blackboard: everyone reads the message for free.
    Broadcast,
    /// A directed edge: only `from` and `to` ever see the message.
    Directed {
        /// The sending endpoint (must be the speaker).
        from: PlayerId,
        /// The receiving endpoint.
        to: PlayerId,
    },
}

impl Link {
    /// Whether `player` sees a message sent on this link.
    pub fn visible_to(&self, player: PlayerId) -> bool {
        match *self {
            Link::Broadcast => true,
            Link::Directed { from, to } => player == from || player == to,
        }
    }

    /// Both endpoints in range and, for directed links, distinct.
    pub fn well_formed(&self, players: usize) -> bool {
        match *self {
            Link::Broadcast => true,
            Link::Directed { from, to } => from < players && to < players && from != to,
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Link::Broadcast => write!(f, "broadcast"),
            Link::Directed { from, to } => write!(f, "{from}->{to}"),
        }
    }
}

/// A communication topology: the set of links protocols may write on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// The paper's model: one shared board, every message broadcast.
    Blackboard,
    /// The BEOPV message-passing model: `k` players plus a designated
    /// hub (coordinator); every message travels on an edge touching the
    /// hub. The hub is one of the `k` players (it holds an input too).
    CoordinatorStar {
        /// The coordinator player.
        hub: PlayerId,
    },
    /// Unrestricted message passing: any directed player-to-player edge.
    PointToPoint,
}

impl Topology {
    /// The CLI-facing name (`--topology <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Blackboard => "blackboard",
            Topology::CoordinatorStar { .. } => "star",
            Topology::PointToPoint => "p2p",
        }
    }

    /// Parses a CLI-facing name. `"star"` places the hub at player 0.
    pub fn parse(name: &str) -> Option<Topology> {
        match name {
            "blackboard" => Some(Topology::Blackboard),
            "star" => Some(Topology::CoordinatorStar { hub: 0 }),
            "p2p" => Some(Topology::PointToPoint),
            _ => None,
        }
    }

    /// Whether a (well-formed) link exists under this topology.
    pub fn allows(&self, link: &Link) -> bool {
        match (self, link) {
            (Topology::Blackboard, Link::Broadcast) => true,
            (Topology::Blackboard, Link::Directed { .. }) => false,
            (Topology::CoordinatorStar { hub }, Link::Directed { from, to }) => {
                from == hub || to == hub
            }
            (Topology::PointToPoint, Link::Directed { .. }) => true,
            // Message-passing models have no shared board.
            (Topology::CoordinatorStar { .. } | Topology::PointToPoint, Link::Broadcast) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_follows_the_link() {
        assert!(Link::Broadcast.visible_to(7));
        let edge = Link::Directed { from: 1, to: 3 };
        assert!(edge.visible_to(1));
        assert!(edge.visible_to(3));
        assert!(!edge.visible_to(0));
        assert!(!edge.visible_to(2));
    }

    #[test]
    fn well_formedness_rejects_loops_and_out_of_range_endpoints() {
        assert!(Link::Broadcast.well_formed(1));
        assert!(Link::Directed { from: 0, to: 3 }.well_formed(4));
        assert!(!Link::Directed { from: 0, to: 4 }.well_formed(4));
        assert!(!Link::Directed { from: 5, to: 0 }.well_formed(4));
        assert!(!Link::Directed { from: 2, to: 2 }.well_formed(4));
    }

    #[test]
    fn topologies_admit_exactly_their_links() {
        let bb = Topology::Blackboard;
        let star = Topology::CoordinatorStar { hub: 0 };
        let p2p = Topology::PointToPoint;
        let up = Link::Directed { from: 2, to: 0 };
        let down = Link::Directed { from: 0, to: 2 };
        let side = Link::Directed { from: 1, to: 2 };

        assert!(bb.allows(&Link::Broadcast));
        assert!(!bb.allows(&up));

        assert!(!star.allows(&Link::Broadcast));
        assert!(star.allows(&up));
        assert!(star.allows(&down));
        assert!(!star.allows(&side));

        assert!(!p2p.allows(&Link::Broadcast));
        assert!(p2p.allows(&up));
        assert!(p2p.allows(&side));
    }

    #[test]
    fn names_round_trip_through_parse() {
        for t in [
            Topology::Blackboard,
            Topology::CoordinatorStar { hub: 0 },
            Topology::PointToPoint,
        ] {
            assert_eq!(Topology::parse(t.name()), Some(t));
        }
        assert_eq!(Topology::parse("mesh"), None);
    }

    #[test]
    fn links_render_compactly() {
        assert_eq!(Link::Broadcast.to_string(), "broadcast");
        assert_eq!(Link::Directed { from: 2, to: 0 }.to_string(), "2->0");
    }
}
