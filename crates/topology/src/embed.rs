//! Adapters between the routed and blackboard protocol worlds.
//!
//! [`Embedded`] simulates a routed protocol *on the blackboard*: every
//! message is broadcast with a small self-describing link header, so all
//! five existing execution drivers (serial runner, turn engine, fabric
//! in-process/channel transports, TCP loopback, mux daemon) can run a
//! star or point-to-point protocol without knowing anything about
//! topologies. The embedding preserves the RNG stream exactly — headers
//! cost bits, never random draws — so a routed protocol produces the
//! same link payloads whether driven natively by
//! [`run_routed`](crate::routed::run_routed) or through a blackboard
//! driver (the driver-equivalence tests in `bci-mux` pin this).
//!
//! Note the model caveat: broadcasting the headers makes every link
//! *publicly attributed* (who→who is visible to all), which matches the
//! routed engine's public schedule metadata, but the message *payloads*
//! also become publicly readable. The embedding is therefore a
//! simulation harness for cost accounting and driver transport — not a
//! privacy-preserving implementation of message passing.
//!
//! [`FromBlackboard`] goes the other way: any blackboard protocol is a
//! routed protocol over [`Topology::Blackboard`] whose every link is
//! broadcast. It exists for API completeness (one engine can drive
//! both) and is exercised on small protocols.

use bci_blackboard::board::Board;
use bci_blackboard::protocol::Protocol;
use bci_blackboard::PlayerId;
use bci_encoding::bitio::BitVec;
use rand::RngCore;

use crate::model::{Link, Topology};
use crate::routed::{PlayerView, RoutedBoard, RoutedProtocol, SentMessage};

/// Bits needed to address one of `players` endpoints.
pub(crate) fn addr_bits(players: usize) -> usize {
    if players <= 1 {
        0
    } else {
        (usize::BITS - (players - 1).leading_zeros()) as usize
    }
}

/// A routed protocol embedded in the blackboard model.
///
/// Each blackboard message carries a header — one kind bit (`0` =
/// broadcast link, `1` = directed link) and, for directed links,
/// `⌈log₂ k⌉` bits of destination, LSB-first — followed by the routed
/// payload. The sender is the blackboard speaker, so `from` needs no
/// bits. See the [module docs](self) for what the embedding preserves.
#[derive(Debug, Clone)]
pub struct Embedded<P: RoutedProtocol> {
    inner: P,
}

impl<P: RoutedProtocol> Embedded<P> {
    /// Wraps `inner` for execution on blackboard drivers.
    pub fn new(inner: P) -> Self {
        Embedded { inner }
    }

    /// The wrapped routed protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Header overhead per directed message under this embedding.
    pub fn header_bits(&self) -> usize {
        1 + addr_bits(self.inner.num_players())
    }

    /// Reconstructs the routed transcript from a blackboard transcript
    /// produced by this embedding.
    ///
    /// # Panics
    ///
    /// Panics if a message is too short for its header — a board this
    /// protocol did not produce.
    pub fn decode_board(&self, board: &Board) -> RoutedBoard {
        let width = addr_bits(self.inner.num_players());
        let mut routed = RoutedBoard::new();
        for m in board.messages() {
            let kind = m
                .bits
                .get(0)
                .expect("embedded message missing its kind bit");
            let (link, skip) = if kind {
                let mut to = 0usize;
                for i in 0..width {
                    if m.bits
                        .get(1 + i)
                        .expect("embedded message missing destination bits")
                    {
                        to |= 1 << i;
                    }
                }
                (
                    Link::Directed {
                        from: m.speaker,
                        to,
                    },
                    1 + width,
                )
            } else {
                (Link::Broadcast, 1)
            };
            let mut payload = BitVec::with_capacity(m.bits.len() - skip);
            for i in skip..m.bits.len() {
                payload.push(m.bits.get(i).expect("in range"));
            }
            routed.write(m.speaker, link, payload);
        }
        routed
    }
}

impl<P: RoutedProtocol> Protocol for Embedded<P> {
    type Input = P::Input;
    type Output = P::Output;

    fn num_players(&self) -> usize {
        self.inner.num_players()
    }

    fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
        let routed = self.decode_board(board);
        self.inner.next_turn(&routed).map(|(speaker, _)| speaker)
    }

    fn message(
        &self,
        player: PlayerId,
        input: &Self::Input,
        board: &Board,
        rng: &mut dyn RngCore,
    ) -> BitVec {
        let routed = self.decode_board(board);
        let (speaker, link) = self
            .inner
            .next_turn(&routed)
            .expect("message requested after the routed protocol halted");
        assert_eq!(
            speaker, player,
            "blackboard grant disagrees with the routed schedule"
        );
        let topology = self.inner.topology();
        assert!(
            link.well_formed(self.inner.num_players()) && topology.allows(&link),
            "routed protocol granted link {link} forbidden under the {} topology",
            topology.name()
        );
        if let Link::Directed { from, .. } = link {
            assert_eq!(from, speaker, "directed link must originate at the speaker");
        }
        let payload = self.inner.message(player, input, &routed.view(player), rng);
        let width = addr_bits(self.inner.num_players());
        let mut bits = BitVec::with_capacity(1 + width + payload.len());
        match link {
            Link::Broadcast => bits.push(false),
            Link::Directed { to, .. } => {
                bits.push(true);
                for i in 0..width {
                    bits.push(to >> i & 1 == 1);
                }
            }
        }
        bits.extend_from(&payload);
        bits
    }

    fn output(&self, board: &Board) -> Self::Output {
        self.inner.output(&self.decode_board(board))
    }
}

/// A blackboard protocol viewed as a routed protocol over
/// [`Topology::Blackboard`]: every turn is a broadcast link.
#[derive(Debug, Clone)]
pub struct FromBlackboard<P: Protocol> {
    inner: P,
}

impl<P: Protocol> FromBlackboard<P> {
    /// Wraps `inner` for execution on the routed engine.
    pub fn new(inner: P) -> Self {
        FromBlackboard { inner }
    }

    /// The wrapped blackboard protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn as_board(messages: &[SentMessage]) -> Board {
        let mut board = Board::new();
        for m in messages {
            board.write(m.speaker, m.bits.clone());
        }
        board
    }
}

impl<P: Protocol> RoutedProtocol for FromBlackboard<P> {
    type Input = P::Input;
    type Output = P::Output;

    fn topology(&self) -> Topology {
        Topology::Blackboard
    }

    fn num_players(&self) -> usize {
        self.inner.num_players()
    }

    fn next_turn(&self, board: &RoutedBoard) -> Option<(PlayerId, Link)> {
        let bb = Self::as_board(board.messages());
        self.inner
            .next_speaker(&bb)
            .map(|speaker| (speaker, Link::Broadcast))
    }

    fn message(
        &self,
        speaker: PlayerId,
        input: &Self::Input,
        view: &PlayerView<'_>,
        rng: &mut dyn RngCore,
    ) -> BitVec {
        // Broadcast links are visible to everyone, so the view is the
        // full transcript.
        let mut bb = Board::new();
        for m in view.messages() {
            bb.write(m.speaker, m.bits.clone());
        }
        self.inner.message(speaker, input, &bb, rng)
    }

    fn output(&self, board: &RoutedBoard) -> Self::Output {
        self.inner.output(&Self::as_board(board.messages()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routed::run_routed;
    use bci_blackboard::protocol::run;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn addr_bits_is_ceil_log2() {
        assert_eq!(addr_bits(1), 0);
        assert_eq!(addr_bits(2), 1);
        assert_eq!(addr_bits(3), 2);
        assert_eq!(addr_bits(4), 2);
        assert_eq!(addr_bits(5), 3);
        assert_eq!(addr_bits(16), 4);
        assert_eq!(addr_bits(17), 5);
    }

    /// Player 1 sends a random 3-bit string to the hub; the hub echoes
    /// it back.
    struct Relay;

    impl RoutedProtocol for Relay {
        type Input = ();
        type Output = Vec<bool>;

        fn topology(&self) -> Topology {
            Topology::CoordinatorStar { hub: 0 }
        }

        fn num_players(&self) -> usize {
            3
        }

        fn next_turn(&self, board: &RoutedBoard) -> Option<(PlayerId, Link)> {
            match board.messages().len() {
                0 => Some((1, Link::Directed { from: 1, to: 0 })),
                1 => Some((0, Link::Directed { from: 0, to: 2 })),
                _ => None,
            }
        }

        fn message(
            &self,
            speaker: PlayerId,
            _input: &(),
            view: &PlayerView<'_>,
            rng: &mut dyn RngCore,
        ) -> BitVec {
            if speaker == 1 {
                let r = rng.next_u32();
                BitVec::from_bools(&[r & 1 == 1, r & 2 == 2, r & 4 == 4])
            } else {
                view.messages()[0].bits.clone()
            }
        }

        fn output(&self, board: &RoutedBoard) -> Vec<bool> {
            board.messages().last().unwrap().bits.iter().collect()
        }
    }

    #[test]
    fn embedding_round_trips_the_routed_transcript() {
        let rng = ChaCha8Rng::seed_from_u64(9);
        let native = run_routed(&Relay, &[(), (), ()], &rng);

        let embedded = Embedded::new(Relay);
        let mut driver_rng = ChaCha8Rng::seed_from_u64(9);
        let exec = run(&embedded, &[(), (), ()], &mut driver_rng);

        // Decoding the blackboard transcript recovers the routed one,
        // byte for byte — the RNG stream is untouched by the headers.
        let decoded = embedded.decode_board(&exec.board);
        assert_eq!(decoded, native.board);
        assert_eq!(decoded.to_bytes(), native.board.to_bytes());
        assert_eq!(exec.output, native.output);

        // The blackboard cost is the routed cost plus one header per
        // directed message.
        assert_eq!(
            exec.bits_written,
            native.board.total_bits() + 2 * embedded.header_bits()
        );
    }

    #[test]
    fn from_blackboard_matches_the_native_run() {
        /// Two players each broadcast two random bits; output is the OR.
        struct Or2;
        impl Protocol for Or2 {
            type Input = ();
            type Output = bool;
            fn num_players(&self) -> usize {
                2
            }
            fn next_speaker(&self, board: &Board) -> Option<PlayerId> {
                (board.messages().len() < 2).then_some(board.messages().len())
            }
            fn message(&self, _p: PlayerId, _i: &(), _b: &Board, rng: &mut dyn RngCore) -> BitVec {
                let r = rng.next_u32();
                BitVec::from_bools(&[r & 1 == 1, r & 2 == 2])
            }
            fn output(&self, board: &Board) -> bool {
                board.messages().iter().any(|m| m.bits.iter().any(|b| b))
            }
        }

        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let native = run(&Or2, &[(), ()], &mut rng);

        let routed = FromBlackboard::new(Or2);
        let exec = run_routed(&routed, &[(), ()], &ChaCha8Rng::seed_from_u64(4));
        assert_eq!(exec.output, native.output);
        assert_eq!(exec.stats.total_bits, native.bits_written);
        assert_eq!(exec.stats.broadcast_bits, native.bits_written);
        assert_eq!(exec.stats.directed_bits, 0);
        // Transcripts agree message by message.
        for (r, b) in exec.board.messages().iter().zip(native.board.messages()) {
            assert_eq!(r.speaker, b.speaker);
            assert_eq!(r.link, Link::Broadcast);
            assert_eq!(r.bits, b.bits);
        }
    }
}
